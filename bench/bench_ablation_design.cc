// Design-choice ablations beyond the paper's Figure 3 — one sweep per
// design decision DESIGN.md calls out:
//   * action group size (how many pool tuples one action bundles),
//   * pool size (the action-space reduction of Section 4.2),
//   * the per-query coverage quota in pool selection (our addition on top
//     of plain variational subsampling),
//   * number of parallel actor-learners,
//   * the diversity regularizer of Section 5.1.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Design ablations",
              "Score impact of the pipeline's design choices (IMDB)");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  auto run_with = [&](core::AsqpConfig config) {
    AsqpRun run = RunAsqp(bundle, train, test, config);
    return std::pair<double, double>(run.eval.score, run.setup_seconds);
  };
  const auto record_point = [&](const std::string& knob,
                                const std::string& value, double score,
                                double setup_seconds) {
    BenchRecord record;
    record.name = "ablation/imdb/" + knob + "_" + value;
    record.params.emplace_back(knob, value);
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = score;
    record.wall_seconds = setup_seconds;
    writer.Add(std::move(record));
  };

  std::printf("action group size (tuples bundled per action):\n");
  PrintRow({"group", "score", "setup(s)"}, {8, 10, 10});
  for (size_t group : {1u, 2u, 4u, 8u}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.action_group_size = group;
    auto [score, time] = run_with(config);
    PrintRow({std::to_string(group), Fmt(score), Fmt(time, 1)}, {8, 10, 10});
    record_point("action_group_size", std::to_string(group), score, time);
  }

  std::printf("\npool target (action-space size before grouping):\n");
  PrintRow({"pool", "score", "setup(s)"}, {8, 10, 10});
  for (size_t pool : {400u, 800u, 1500u, 3000u}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.pool_target = pool;
    auto [score, time] = run_with(config);
    PrintRow({std::to_string(pool), Fmt(score), Fmt(time, 1)}, {8, 10, 10});
    record_point("pool_target", std::to_string(pool), score, time);
  }

  std::printf("\nper-query coverage quota in pool selection:\n");
  PrintRow({"quota", "score", "setup(s)"}, {8, 10, 10});
  for (bool quota : {true, false}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.reserve_query_quota = quota;
    auto [score, time] = run_with(config);
    PrintRow({quota ? "on" : "off", Fmt(score), Fmt(time, 1)}, {8, 10, 10});
    record_point("reserve_query_quota", quota ? "on" : "off", score, time);
  }

  std::printf("\nparallel actor-learners (rollout workers):\n");
  PrintRow({"workers", "score", "setup(s)"}, {8, 10, 10});
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.num_workers = workers;
    auto [score, time] = run_with(config);
    PrintRow({std::to_string(workers), Fmt(score), Fmt(time, 1)},
             {8, 10, 10});
    record_point("num_workers", std::to_string(workers), score, time);
  }

  std::printf("\ndiversity regularizer coefficient (Section 5.1):\n");
  PrintRow({"coef", "score", "setup(s)"}, {8, 10, 10});
  for (double coef : {0.0, 0.01, 0.05, 0.2}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.diversity_coef = coef;
    auto [score, time] = run_with(config);
    PrintRow({Fmt(coef, 2), Fmt(score), Fmt(time, 1)}, {8, 10, 10});
    record_point("diversity_coef", Fmt(coef, 2), score, time);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
