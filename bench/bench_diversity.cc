// Section 6.2 "Diversity Comparison": average pairwise Jaccard distance of
// query answers (LIMIT 100) — full database vs the approximation sets of
// ASQP-RL and every baseline. Expected shape (paper): the database itself
// ~0.58; ASQP-RL close behind (~0.52) and well above every baseline except
// RAN, which is diverse but scores poorly on quality.
#include <cstdio>

#include "baselines/selector.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "metric/diversity.h"
#include "sql/binder.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

double AvgDiversity(const storage::Database& db,
                    const metric::Workload& workload,
                    const storage::ApproximationSet* subset) {
  exec::QueryEngine engine;
  storage::DatabaseView view =
      subset == nullptr ? storage::DatabaseView(&db)
                        : storage::DatabaseView(&db, subset);
  double total = 0.0;
  size_t counted = 0;
  for (const auto& wq : workload.queries()) {
    sql::SelectStatement stmt = wq.stmt.Clone();
    stmt.limit = 100;  // the paper evaluates answers with LIMIT 100
    auto bound = sql::Bind(stmt, db);
    if (!bound.ok()) continue;
    auto rs = engine.Execute(bound.value(), view);
    if (!rs.ok() || rs.value().num_rows() < 2) continue;
    total += metric::ResultDiversity(rs.value());
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Diversity (Section 6.2)",
              "Average pairwise Jaccard distance of query answers (IMDB)");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  const auto record_source = [&](const std::string& source,
                                 double diversity) {
    BenchRecord record;
    record.name = "diversity/imdb/" + source;
    record.params.emplace_back("source", source);
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = diversity;
    writer.Add(std::move(record));
  };

  PrintRow({"source", "diversity"}, {12, 10});
  {
    const double diversity = AvgDiversity(*bundle.db, test, nullptr);
    PrintRow({"database", Fmt(diversity)}, {12, 10});
    record_source("database", diversity);
  }

  {
    AsqpRun run = RunAsqp(bundle, train, test, MakeAsqpConfig(setup, false));
    if (run.model != nullptr) {
      const double diversity =
          AvgDiversity(*bundle.db, test, &run.model->approximation_set());
      PrintRow({"ASQP-RL", Fmt(diversity)}, {12, 10});
      record_source("ASQP-RL", diversity);
    }
  }
  for (const auto& selector : baselines::AllBaselines()) {
    baselines::SelectorContext context;
    context.db = bundle.db.get();
    context.workload = &train;
    context.k = setup.k;
    context.frame_size = setup.frame_size;
    context.seed = setup.seed;
    context.deadline = util::Deadline::AfterSeconds(setup.baseline_deadline_s);
    auto set = selector->Select(context);
    if (!set.ok()) continue;
    const double diversity = AvgDiversity(*bundle.db, test, &set.value());
    PrintRow({selector->name(), Fmt(diversity)}, {12, 10});
    record_source(selector->name(), diversity);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
