// Figure 10 (a/b): effect of the executed training-set size on quality
// and on setup time. Expected shape (paper): quality decays gently as
// fewer representatives are executed while setup time falls sharply —
// the trade-off ASQP-Light and the adaptive configuration exploit.
#include <cstdio>

#include "common/bench_common.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main() {
  PrintHeader("Figure 10",
              "Quality (a) and training time (b) vs executed training size");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  PrintRow({"train-frac", "score", "setup(s)"}, {12, 10, 10});
  for (double fraction : {1.0, 0.75, 0.5, 0.25}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.representative_fraction = fraction;
    AsqpRun run = RunAsqp(bundle, train, test, config);
    PrintRow({Fmt(fraction, 2), Fmt(run.eval.score), Fmt(run.setup_seconds, 1)},
             {12, 10, 10});
  }

  std::printf("\nadaptive configuration (Section 4.5) at time budgets:\n");
  PrintRow({"budget", "score", "setup(s)"}, {12, 10, 10});
  for (double budget : {1.0, 0.6, 0.2}) {
    core::AsqpConfig config = core::AsqpConfig::FromTimeBudget(budget);
    config.k = setup.k;
    config.frame_size = setup.frame_size;
    config.trainer.num_workers = 2;
    config.seed = setup.seed;
    AsqpRun run = RunAsqp(bundle, train, test, config);
    PrintRow({Fmt(budget, 2), Fmt(run.eval.score), Fmt(run.setup_seconds, 1)},
             {12, 10, 10});
  }
  return 0;
}
