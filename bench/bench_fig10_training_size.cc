// Figure 10 (a/b): effect of the executed training-set size on quality
// and on setup time. Expected shape (paper): quality decays gently as
// fewer representatives are executed while setup time falls sharply —
// the trade-off ASQP-Light and the adaptive configuration exploit.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 10",
              "Quality (a) and training time (b) vs executed training size");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  const auto record_point = [&](const std::string& name,
                                const std::string& key,
                                const std::string& value, double score,
                                double setup_seconds) {
    BenchRecord record;
    record.name = "fig10/imdb/" + name;
    record.params.emplace_back(key, value);
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = score;
    record.wall_seconds = setup_seconds;
    writer.Add(std::move(record));
  };

  PrintRow({"train-frac", "score", "setup(s)"}, {12, 10, 10});
  for (double fraction : {1.0, 0.75, 0.5, 0.25}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.representative_fraction = fraction;
    AsqpRun run = RunAsqp(bundle, train, test, config);
    PrintRow({Fmt(fraction, 2), Fmt(run.eval.score), Fmt(run.setup_seconds, 1)},
             {12, 10, 10});
    record_point("train_frac_" + Fmt(fraction, 2), "train_frac",
                 Fmt(fraction, 2), run.eval.score, run.setup_seconds);
  }

  std::printf("\nadaptive configuration (Section 4.5) at time budgets:\n");
  PrintRow({"budget", "score", "setup(s)"}, {12, 10, 10});
  for (double budget : {1.0, 0.6, 0.2}) {
    core::AsqpConfig config = core::AsqpConfig::FromTimeBudget(budget);
    config.k = setup.k;
    config.frame_size = setup.frame_size;
    config.trainer.num_workers = 2;
    config.seed = setup.seed;
    AsqpRun run = RunAsqp(bundle, train, test, config);
    PrintRow({Fmt(budget, 2), Fmt(run.eval.score), Fmt(run.setup_seconds, 1)},
             {12, 10, 10});
    record_point("budget_" + Fmt(budget, 2), "time_budget", Fmt(budget, 2),
                 run.eval.score, run.setup_seconds);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
