// Figure 11: RL hyper-parameter sweeps — entropy coefficient, learning
// rate, and KL coefficient. Expected shape (paper): the entropy
// coefficient is the most sensitive knob (a small positive value is
// crucial; too much exploration hurts); a mid-range learning rate wins;
// the KL coefficient is comparatively flat.
#include <cstdio>

#include "common/bench_common.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main() {
  PrintHeader("Figure 11",
              "Hyper-parameter sweeps: entropy coef, learning rate, KL coef");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  auto run_with = [&](const core::AsqpConfig& config) {
    return RunAsqp(bundle, train, test, config).eval.score;
  };

  std::printf("entropy coefficient sweep:\n");
  PrintRow({"entropy", "score"}, {10, 10});
  for (double entropy : {0.0, 0.001, 0.0015, 0.01, 0.015, 0.02}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.entropy_coef = entropy;
    PrintRow({Fmt(entropy, 4), Fmt(run_with(config))}, {10, 10});
  }

  std::printf("\nlearning rate sweep:\n");
  PrintRow({"lr", "score"}, {10, 10});
  for (double lr : {5e-5, 5e-4, 5e-3, 5e-2}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.learning_rate = lr;
    PrintRow({Fmt(lr, 5), Fmt(run_with(config))}, {10, 10});
  }

  std::printf("\nKL coefficient sweep:\n");
  PrintRow({"kl", "score"}, {10, 10});
  for (double kl : {0.2, 0.3, 0.5, 0.7, 0.9}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.kl_coef = kl;
    PrintRow({Fmt(kl, 2), Fmt(run_with(config))}, {10, 10});
  }
  return 0;
}
