// Figure 11: RL hyper-parameter sweeps — entropy coefficient, learning
// rate, and KL coefficient. Expected shape (paper): the entropy
// coefficient is the most sensitive knob (a small positive value is
// crucial; too much exploration hurts); a mid-range learning rate wins;
// the KL coefficient is comparatively flat.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 11",
              "Hyper-parameter sweeps: entropy coef, learning rate, KL coef");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  auto run_with = [&](const core::AsqpConfig& config) {
    return RunAsqp(bundle, train, test, config).eval.score;
  };
  const auto record_point = [&](const std::string& knob,
                                const std::string& value, double score) {
    BenchRecord record;
    record.name = "fig11/imdb/" + knob + "_" + value;
    record.params.emplace_back(knob, value);
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = score;
    writer.Add(std::move(record));
  };

  std::printf("entropy coefficient sweep:\n");
  PrintRow({"entropy", "score"}, {10, 10});
  for (double entropy : {0.0, 0.001, 0.0015, 0.01, 0.015, 0.02}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.entropy_coef = entropy;
    const double score = run_with(config);
    PrintRow({Fmt(entropy, 4), Fmt(score)}, {10, 10});
    record_point("entropy", Fmt(entropy, 4), score);
  }

  std::printf("\nlearning rate sweep:\n");
  PrintRow({"lr", "score"}, {10, 10});
  for (double lr : {5e-5, 5e-4, 5e-3, 5e-2}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.learning_rate = lr;
    const double score = run_with(config);
    PrintRow({Fmt(lr, 5), Fmt(score)}, {10, 10});
    record_point("lr", Fmt(lr, 5), score);
  }

  std::printf("\nKL coefficient sweep:\n");
  PrintRow({"kl", "score"}, {10, 10});
  for (double kl : {0.2, 0.3, 0.5, 0.7, 0.9}) {
    core::AsqpConfig config = MakeAsqpConfig(setup, false);
    config.trainer.kl_coef = kl;
    const double score = run_with(config);
    PrintRow({Fmt(kl, 2), Fmt(score)}, {10, 10});
    record_point("kl", Fmt(kl, 2), score);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
