// Figure 12 (Section 6.4): aggregate-query relative error by operator
// category — {SUM, AVG, CNT} x {grouped, ungrouped} — for ASQP-RL's
// approximation set (answers scaled by the per-table sampling fraction),
// the gAQP-style VAE (queries on generated data, scaled), and the
// DeepDB-style SPN (model-based estimates). Expected shape (paper): no
// method dominates every operator; ASQP-RL wins about half the categories
// and is competitive elsewhere, despite never being optimized for
// aggregates.
#include <cstdio>
#include <map>

#include "aqp/spn.h"
#include "aqp/vae.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "metric/relative_error.h"
#include "sql/binder.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

std::string CategoryOf(const sql::SelectStatement& stmt) {
  std::string op = "CNT";
  for (const auto& item : stmt.items) {
    if (item.agg == sql::AggFunc::kSum) op = "SUM";
    if (item.agg == sql::AggFunc::kAvg) op = "AVG";
  }
  return stmt.group_by.empty() ? op : "G+" + op;
}

/// Scale a subset-executed aggregate result (standard AQP scale-up):
/// COUNT and SUM columns multiply by `inverse_fraction`; AVG stays.
exec::ResultSet ScaleAggregates(const exec::ResultSet& rs,
                                const sql::SelectStatement& stmt,
                                double inverse_fraction) {
  exec::ResultSet out(rs.column_names());
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    std::vector<storage::Value> row = rs.row(r);
    for (size_t c = 0; c < stmt.items.size() && c < row.size(); ++c) {
      const sql::AggFunc agg = stmt.items[c].agg;
      if ((agg == sql::AggFunc::kCount || agg == sql::AggFunc::kSum) &&
          row[c].is_numeric()) {
        if (row[c].type() == storage::ValueType::kInt64) {
          row[c] = storage::Value(static_cast<int64_t>(
              std::llround(row[c].ToNumeric() * inverse_fraction)));
        } else {
          row[c] = storage::Value(row[c].ToNumeric() * inverse_fraction);
        }
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

/// Hybrid calibration for the ASQP approximation set: the set is biased
/// toward workload-relevant tuples, so raw 1/fraction scaling distorts
/// totals. A small *uniform* pilot sample (whose sampling fraction is
/// exact) calibrates each aggregate column's total; the approximation set
/// supplies the per-group composition. The per-column factor is
///   pilot_total / pilot_fraction / subset_total,
/// applied to CNT and SUM cells (AVG is ratio-invariant).
exec::ResultSet CalibrateWithPilot(const exec::ResultSet& subset_rs,
                                   const exec::ResultSet& pilot_rs,
                                   const sql::SelectStatement& stmt,
                                   double pilot_fraction,
                                   double fallback_inverse_fraction) {
  std::vector<double> factors(stmt.items.size(),
                              fallback_inverse_fraction);
  for (size_t c = 0; c < stmt.items.size(); ++c) {
    const sql::AggFunc agg = stmt.items[c].agg;
    if (agg != sql::AggFunc::kCount && agg != sql::AggFunc::kSum) continue;
    double subset_total = 0.0;
    for (size_t r = 0; r < subset_rs.num_rows(); ++r) {
      if (c < subset_rs.row(r).size()) {
        subset_total += subset_rs.row(r)[c].ToNumeric();
      }
    }
    double pilot_total = 0.0;
    for (size_t r = 0; r < pilot_rs.num_rows(); ++r) {
      if (c < pilot_rs.row(r).size()) {
        pilot_total += pilot_rs.row(r)[c].ToNumeric();
      }
    }
    if (subset_total > 0.0 && pilot_fraction > 0.0) {
      factors[c] = pilot_total / pilot_fraction / subset_total;
    }
  }

  exec::ResultSet out(subset_rs.column_names());
  for (size_t r = 0; r < subset_rs.num_rows(); ++r) {
    std::vector<storage::Value> row = subset_rs.row(r);
    for (size_t c = 0; c < stmt.items.size() && c < row.size(); ++c) {
      const sql::AggFunc agg = stmt.items[c].agg;
      if ((agg == sql::AggFunc::kCount || agg == sql::AggFunc::kSum) &&
          row[c].is_numeric()) {
        if (row[c].type() == storage::ValueType::kInt64) {
          row[c] = storage::Value(static_cast<int64_t>(
              std::llround(row[c].ToNumeric() * factors[c])));
        } else {
          row[c] = storage::Value(row[c].ToNumeric() * factors[c]);
        }
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

struct CategoryErrors {
  std::map<std::string, std::pair<double, size_t>> sums;  // cat -> (sum, n)

  void Add(const std::string& category, double error) {
    auto& [sum, n] = sums[category];
    sum += error;
    ++n;
  }
  double Mean(const std::string& category) const {
    auto it = sums.find(category);
    if (it == sums.end() || it->second.second == 0) return 1.0;
    return it->second.first / static_cast<double>(it->second.second);
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 12",
              "Aggregate relative error by operator: ASQP-RL vs VAE (gAQP) "
              "vs SPN (DeepDB) on FLIGHTS");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("flights", setup);
  auto flights_table = bundle.db->GetTable("flights").value();

  // Aggregate workload, split into train (for ASQP) and test.
  metric::Workload aggs = data::MakeFlightsAggregateWorkload(
      bundle, setup.aggregate_queries, setup.seed + 5);
  util::Rng rng(setup.seed);
  auto [train, test] = aggs.TrainTestSplit(0.6, &rng);

  // --- ASQP-RL: train on the SPJ-rewritten aggregates (Section 3).
  core::AsqpConfig config = MakeAsqpConfig(setup, false);
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*bundle.db, train);
  if (!report.ok()) {
    std::fprintf(stderr, "ASQP training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const storage::ApproximationSet& subset = report->model->approximation_set();
  const double asqp_fraction =
      static_cast<double>(subset.RowsFor("flights").size()) /
      static_cast<double>(flights_table->num_rows());

  // Uniform pilot sample (2%) for total calibration — a tiny amount of
  // extra memory that standard AQP systems keep anyway.
  const double pilot_fraction = 0.02;
  storage::ApproximationSet pilot;
  {
    util::Rng prng(setup.seed ^ 0x9999ULL);
    const size_t n = static_cast<size_t>(
        pilot_fraction * static_cast<double>(flights_table->num_rows()));
    for (size_t r : prng.SampleIndices(flights_table->num_rows(), n)) {
      pilot.Add("flights", static_cast<uint32_t>(r));
    }
    pilot.Seal();
  }

  // --- VAE (gAQP, 1% memory): generate and scale by 100x.
  aqp::VaeOptions vae_options;
  vae_options.epochs = 10;
  vae_options.seed = setup.seed;
  auto vae = aqp::TabularVae::Fit(*flights_table, vae_options);
  storage::Database vae_db;
  double vae_fraction = 0.01;
  if (vae.ok()) {
    const size_t n = std::max<size_t>(50, flights_table->num_rows() / 100);
    vae_fraction = static_cast<double>(n) /
                   static_cast<double>(flights_table->num_rows());
    auto synth = vae->Generate(n, setup.seed + 9);
    if (synth.ok()) (void)vae_db.AddTable(synth.value());
  }

  // --- SPN (DeepDB).
  aqp::SpnOptions spn_options;
  spn_options.seed = setup.seed;
  auto spn = aqp::Spn::Learn(*flights_table, spn_options);

  exec::QueryEngine engine;
  storage::DatabaseView full_view(bundle.db.get());
  storage::DatabaseView subset_view(bundle.db.get(), &subset);
  storage::DatabaseView pilot_view(bundle.db.get(), &pilot);
  storage::DatabaseView vae_view(&vae_db);

  CategoryErrors asqp_err, asqp_pilot_err, vae_err, spn_err;
  for (const auto& wq : test.queries()) {
    const std::string category = CategoryOf(wq.stmt);
    const size_t group_cols = wq.stmt.group_by.size();
    auto bound = sql::Bind(wq.stmt, *bundle.db);
    if (!bound.ok()) continue;
    auto truth = engine.Execute(bound.value(), full_view);
    if (!truth.ok()) continue;

    // ASQP: execute over the subset; calibrate totals with the pilot.
    {
      auto approx = engine.Execute(bound.value(), subset_view);
      double error = 1.0;
      double pilot_error = 1.0;
      if (approx.ok() && asqp_fraction > 0.0) {
        const exec::ResultSet scaled = ScaleAggregates(
            approx.value(), wq.stmt, 1.0 / asqp_fraction);
        error = metric::RelativeError(truth.value(), scaled, group_cols)
                    .ValueOr(1.0);
        // Ablation: uniform-pilot total calibration on top of the subset.
        auto pilot_rs = engine.Execute(bound.value(), pilot_view);
        if (pilot_rs.ok()) {
          const exec::ResultSet calibrated = CalibrateWithPilot(
              approx.value(), pilot_rs.value(), wq.stmt, pilot_fraction,
              1.0 / asqp_fraction);
          pilot_error =
              metric::RelativeError(truth.value(), calibrated, group_cols)
                  .ValueOr(1.0);
        }
      }
      asqp_err.Add(category, error);
      asqp_pilot_err.Add(category, pilot_error);
    }
    // VAE: execute over generated data, scale up.
    {
      double error = 1.0;
      if (vae_db.HasTable("flights")) {
        auto vbound = sql::Bind(wq.stmt, vae_db);
        if (vbound.ok()) {
          auto vres = engine.Execute(vbound.value(), vae_view);
          if (vres.ok()) {
            const exec::ResultSet scaled = ScaleAggregates(
                vres.value(), wq.stmt, 1.0 / vae_fraction);
            error = metric::RelativeError(truth.value(), scaled, group_cols)
                        .ValueOr(1.0);
          }
        }
      }
      vae_err.Add(category, error);
    }
    // SPN: model estimate.
    {
      double error = 1.0;
      if (spn.ok()) {
        auto est = spn->EstimateAggregateQuery(bound.value());
        if (est.ok()) {
          error = metric::RelativeError(truth.value(), est.value(), group_cols)
                      .ValueOr(1.0);
        }
      }
      spn_err.Add(category, error);
    }
  }

  std::printf("approximation-set sampling fraction: %.3f (k=%zu)\n\n",
              asqp_fraction, setup.k);
  PrintRow({"category", "ASQP-RL", "ASQP+pilot", "VAE(gAQP)", "SPN(DeepDB)"},
           {10, 10, 10, 10, 12});
  const auto record_error = [&](const std::string& method,
                                const std::string& category,
                                double mean_error) {
    BenchRecord record;
    record.name = "fig12/flights/" + method + "/" + category;
    record.params.emplace_back("method", method);
    record.params.emplace_back("category", category);
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.error = mean_error;
    writer.Add(std::move(record));
  };
  for (const char* category :
       {"G+SUM", "SUM", "G+AVG", "AVG", "G+CNT", "CNT"}) {
    PrintRow({category, Fmt(asqp_err.Mean(category)),
              Fmt(asqp_pilot_err.Mean(category)), Fmt(vae_err.Mean(category)),
              Fmt(spn_err.Mean(category))},
             {10, 10, 10, 10, 12});
    record_error("asqp_rl", category, asqp_err.Mean(category));
    record_error("asqp_pilot", category, asqp_pilot_err.Mean(category));
    record_error("vae", category, vae_err.Mean(category));
    record_error("spn", category, spn_err.Mean(category));
  }
  if (!writer.Flush()) return 1;
  return 0;
}
