// Figure 2: "Quality and Running time" — Score / setup / QueryAvg for
// ASQP-RL, ASQP-Light, VAE, CACH, RAN, QUIK, VERD, SKY, BRT, QRD, TOP, GRE
// on the IMDB and MAS bundles. Expected shape (paper): ASQP-RL leads both
// datasets (0.64 IMDB / 0.75 MAS); ASQP-Light trails it by ~10-15% at half
// the setup time; the VAE scores near zero; search baselines (BRT, GRE)
// burn their whole time cap.
#include <cmath>
#include <cstdio>
#include <map>

#include "aqp/vae.h"
#include "baselines/selector.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "sql/binder.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

/// VAE "subset": per-table generative models; queries run on synthetic
/// data; only generated rows that coincide with true result rows count
/// (false tuples score nothing — the Figure 2 phenomenon).
struct VaeEval {
  double score = 0.0;
  double setup_seconds = 0.0;
  double query_avg_seconds = 0.0;
};

VaeEval RunVaeBaseline(const data::DatasetBundle& bundle,
                       const metric::Workload& test, size_t k, int frame_size,
                       uint64_t seed) {
  VaeEval out;
  util::Stopwatch setup_watch;
  storage::Database synth_db;
  const size_t total = bundle.db->TotalRows();
  for (const std::string& name : bundle.db->TableNames()) {
    auto table = bundle.db->GetTable(name).value();
    aqp::VaeOptions options;
    options.epochs = 6;
    options.seed = seed ^ util::Fnv1a(name);
    auto vae = aqp::TabularVae::Fit(*table, options);
    if (!vae.ok()) continue;
    const size_t share =
        std::max<size_t>(1, k * table->num_rows() / std::max<size_t>(1, total));
    auto synth = vae->Generate(share, seed + 1);
    if (synth.ok()) (void)synth_db.AddTable(synth.value());
  }
  out.setup_seconds = setup_watch.ElapsedSeconds();

  exec::QueryEngine engine;
  storage::DatabaseView synth_view(&synth_db);
  storage::DatabaseView full_view(bundle.db.get());
  double total_score = 0.0;
  util::Stopwatch query_watch;
  size_t timed = 0;
  for (const auto& wq : test.queries()) {
    auto truth_bound = sql::Bind(wq.stmt, *bundle.db);
    if (!truth_bound.ok()) continue;
    auto truth = engine.Execute(truth_bound.value(), full_view);
    if (!truth.ok()) continue;
    auto synth_bound = sql::Bind(wq.stmt, synth_db);
    size_t real_hits = 0;
    if (synth_bound.ok()) {
      auto fake = engine.Execute(synth_bound.value(), synth_view);
      if (fake.ok()) {
        ++timed;
        auto truth_keys = truth.value().RowKeySet();
        for (size_t r = 0; r < fake.value().num_rows(); ++r) {
          if (truth_keys.count(fake.value().RowKey(r))) ++real_hits;
        }
      }
    }
    const double denom = std::max<size_t>(
        1, std::min<size_t>(static_cast<size_t>(frame_size),
                            truth.value().num_rows() == 0
                                ? 1
                                : truth.value().num_rows()));
    total_score += wq.weight *
                   std::min(1.0, static_cast<double>(real_hits) / denom);
  }
  out.score = total_score;
  out.query_avg_seconds =
      timed == 0 ? 0.0 : query_watch.ElapsedSeconds() / static_cast<double>(timed);
  return out;
}

}  // namespace

namespace {

/// Mean +- stddev over partitions (the paper's presentation).
struct Agg {
  double sum = 0.0, sumsq = 0.0;
  size_t n = 0;
  void Add(double v) {
    sum += v;
    sumsq += v * v;
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
  double stddev() const {
    if (n < 2) return 0.0;
    const double m = mean();
    return std::sqrt(std::max(0.0, sumsq / static_cast<double>(n) - m * m));
  }
  std::string Show() const {
    return Fmt(mean()) + "±" + Fmt(stddev(), 2);
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 2", "Quality and running time: ASQP-RL and ASQP-Light "
              "vs all baselines on IMDB and MAS (mean±std over 3 "
              "train/test partitions)");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const size_t kPartitions = BenchScale() == 0 ? 1 : 3;

  const std::vector<int> widths = {10, 14, 10, 14};
  for (const std::string& dataset : {std::string("imdb"), std::string("mas")}) {
    const data::DatasetBundle bundle = LoadDataset(dataset, setup);
    const metric::Workload usable =
        FilterNonEmpty(*bundle.db, bundle.workload);

    // Row label -> aggregated columns across partitions.
    std::vector<std::string> row_order = {"ASQP-RL", "ASQP-Light", "VAE"};
    for (const auto& s : baselines::AllBaselines()) row_order.push_back(s->name());
    std::map<std::string, Agg> score, setup_time, query_avg;

    for (size_t part = 0; part < kPartitions; ++part) {
      util::Rng rng(setup.seed + part * 1000);
      auto [train, test] = usable.TrainTestSplit(0.7, &rng);
      if (part == 0) {
        std::printf("--- dataset %s: %zu tuples, %zu train / %zu test "
                    "queries, k=%zu F=%d ---\n",
                    dataset.c_str(), bundle.db->TotalRows(), train.size(),
                    test.size(), setup.k, setup.frame_size);
      }

      {
        core::AsqpConfig config = MakeAsqpConfig(setup, false);
        config.seed = setup.seed + part;
        AsqpRun full = RunAsqp(bundle, train, test, config);
        score["ASQP-RL"].Add(full.eval.score);
        setup_time["ASQP-RL"].Add(full.setup_seconds);
        query_avg["ASQP-RL"].Add(full.eval.query_avg_seconds * 1e3);

        core::AsqpConfig light = MakeAsqpConfig(setup, true);
        light.seed = setup.seed + part;
        AsqpRun light_run = RunAsqp(bundle, train, test, light);
        score["ASQP-Light"].Add(light_run.eval.score);
        setup_time["ASQP-Light"].Add(light_run.setup_seconds);
        query_avg["ASQP-Light"].Add(light_run.eval.query_avg_seconds * 1e3);
      }
      {
        const VaeEval vae = RunVaeBaseline(bundle, test, setup.k,
                                           setup.frame_size,
                                           setup.seed + part);
        score["VAE"].Add(vae.score);
        setup_time["VAE"].Add(vae.setup_seconds);
        query_avg["VAE"].Add(vae.query_avg_seconds * 1e3);
      }
      baselines::SelectorContext context;
      context.db = bundle.db.get();
      context.workload = &train;
      context.k = setup.k;
      context.frame_size = setup.frame_size;
      context.seed = setup.seed + part;
      for (const auto& selector : baselines::AllBaselines()) {
        context.deadline =
            util::Deadline::AfterSeconds(setup.baseline_deadline_s);
        util::Stopwatch watch;
        auto set = selector->Select(context);
        const double setup_s = watch.ElapsedSeconds();
        if (!set.ok()) continue;
        const SubsetEval eval =
            EvaluateSubset(*bundle.db, test, set.value(), setup.frame_size);
        score[selector->name()].Add(eval.score);
        setup_time[selector->name()].Add(setup_s);
        query_avg[selector->name()].Add(eval.query_avg_seconds * 1e3);
      }
    }

    PrintRow({"Baseline", "Score", "setup(s)", "QueryAvg(ms)"}, widths);
    for (const std::string& name : row_order) {
      if (score[name].n == 0) {
        PrintRow({name, "N/A", "N/A", "N/A"}, widths);
        continue;
      }
      PrintRow({name, score[name].Show(), Fmt(setup_time[name].mean(), 1),
                Fmt(query_avg[name].mean(), 2)},
               widths);
      BenchRecord record;
      record.name = "fig2/" + dataset + "/" + name;
      record.params.emplace_back("dataset", dataset);
      record.params.emplace_back("baseline", name);
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.params.emplace_back("partitions", std::to_string(kPartitions));
      record.wall_seconds = setup_time[name].mean();
      record.score = score[name].mean();
      writer.Add(std::move(record));
    }
    std::printf("\n");
  }
  if (!writer.Flush()) return 1;
  return 0;
}
