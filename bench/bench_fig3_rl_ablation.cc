// Figure 3: RL ablation — environments {GSL, DRP, DRP+GSL} x agents
// {ASQP-RL (PPO+actor-critic), -ppo (A2C), -ppo-ac (REINFORCE)} on IMDB
// and MAS. Expected shape (paper): GSL dominates DRP and the hybrid;
// within each environment the full PPO agent leads and stripping PPO and
// then the critic costs quality; DRP also takes the longest wall-clock.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 3",
              "RL ablation: environment x agent (score / total time)");
  const ScaledSetup setup = SetupForScale(BenchScale());

  const std::vector<int> widths = {10, 14, 8, 12};
  for (const std::string& dataset : {std::string("imdb"), std::string("mas")}) {
    const data::DatasetBundle bundle = LoadDataset(dataset, setup);
    util::Rng rng(setup.seed);
    const metric::Workload usable =
        FilterNonEmpty(*bundle.db, bundle.workload);
    auto [train, test] = usable.TrainTestSplit(0.7, &rng);
    std::printf("--- dataset %s ---\n", dataset.c_str());
    PrintRow({"Env", "Agent", "Score", "Time(s)"}, widths);

    const struct {
      core::EnvKind env;
      const char* env_name;
    } kEnvs[] = {{core::EnvKind::kGsl, "GSL"},
                 {core::EnvKind::kDrp, "DRP"},
                 {core::EnvKind::kHybrid, "DRP+GSL"}};
    const struct {
      rl::Algorithm algo;
      const char* agent_name;
    } kAgents[] = {{rl::Algorithm::kPpo, "ASQP-RL"},
                   {rl::Algorithm::kA2c, "-ppo"},
                   {rl::Algorithm::kReinforce, "-ppo-ac"}};

    for (const auto& env : kEnvs) {
      for (const auto& agent : kAgents) {
        core::AsqpConfig config = MakeAsqpConfig(setup, false);
        config.env = env.env;
        config.trainer.algorithm = agent.algo;
        // DRP needs a horizon proportional to the budget to have a chance
        // to swap most of its random initialization.
        config.drp_horizon = setup.k / 4;
        config.hybrid_refine_horizon = setup.k / 8;
        util::Stopwatch watch;
        AsqpRun run = RunAsqp(bundle, train, test, config);
        const double elapsed = watch.ElapsedSeconds();
        PrintRow({env.env_name, agent.agent_name, Fmt(run.eval.score),
                  Fmt(elapsed, 1)},
                 widths);
        BenchRecord record;
        record.name = "fig3/" + dataset + "/" + env.env_name + "/" +
                      agent.agent_name;
        record.params.emplace_back("dataset", dataset);
        record.params.emplace_back("env", env.env_name);
        record.params.emplace_back("agent", agent.agent_name);
        record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
        record.wall_seconds = elapsed;
        record.score = run.eval.score;
        writer.Add(std::move(record));
      }
    }
    std::printf("\n");
  }
  if (!writer.Flush()) return 1;
  return 0;
}
