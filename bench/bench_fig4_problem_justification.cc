// Figure 4: problem justification — cumulative average query time as a
// data-exploration session progresses, for increasingly blown-up copies
// of the IMDB database. Expected shape (paper): per-query cost grows with
// database size; after a handful of complex queries the accumulated wait
// on the larger copies becomes impractical, motivating approximation.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "sql/binder.h"
#include "util/stopwatch.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 4",
              "Cumulative avg query time vs #queries for scaled IMDB copies");
  const ScaledSetup setup = SetupForScale(BenchScale());

  const double kBlowups[] = {1.0, 2.0, 4.0, 8.0};
  std::printf("%-8s", "queries");
  for (double blow : kBlowups) std::printf("x%-11.0f", blow);
  std::printf("   (cumulative avg ms per query)\n");

  // Per-size cumulative series.
  std::vector<std::vector<double>> cumavg(std::size(kBlowups));
  size_t num_queries = 0;
  for (size_t b = 0; b < std::size(kBlowups); ++b) {
    data::DatasetOptions options;
    options.scale = setup.data_scale * kBlowups[b];
    options.workload_size = std::min<size_t>(setup.workload_size, 12);
    options.seed = setup.seed;
    const data::DatasetBundle bundle = data::MakeImdbJob(options);
    num_queries = bundle.workload.size();

    exec::QueryEngine engine;
    storage::DatabaseView view(bundle.db.get());
    double total = 0.0;
    for (size_t i = 0; i < bundle.workload.size(); ++i) {
      util::Stopwatch watch;
      auto bound = sql::Bind(bundle.workload.query(i).stmt, *bundle.db);
      if (bound.ok()) (void)engine.Execute(bound.value(), view);
      total += watch.ElapsedSeconds() * 1e3;
      cumavg[b].push_back(total / static_cast<double>(i + 1));
    }
  }

  for (size_t i = 0; i < num_queries; ++i) {
    std::printf("%-8zu", i + 1);
    for (size_t b = 0; b < std::size(kBlowups); ++b) {
      std::printf("%-12.2f", i < cumavg[b].size() ? cumavg[b][i] : 0.0);
    }
    std::printf("\n");
  }
  for (size_t b = 0; b < std::size(kBlowups); ++b) {
    BenchRecord record;
    record.name = "fig4/imdb/blowup_x" + std::to_string(
                      static_cast<int>(kBlowups[b]));
    record.params.emplace_back("blowup", std::to_string(kBlowups[b]));
    record.params.emplace_back("queries", std::to_string(num_queries));
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    // Session-end cumulative average, back in seconds per query.
    record.wall_seconds =
        cumavg[b].empty() ? 0.0 : cumavg[b].back() * 1e-3;
    writer.Add(std::move(record));
  }
  if (!writer.Flush()) return 1;
  return 0;
}
