// Figure 5: answerability-estimator quality — precision and recall of
// "this query is answerable from the approximation set" predictions on
// held-out queries, as the estimator's training exposure shrinks (100% ->
// 50% of training queries). Also the two full-system variants of Section
// 6.2: fall back to the database below estimate thresholds 0.6 / 0.8 and
// report the resulting end-to-end score. Expected shape (paper): ~0.90
// precision / 0.95 recall with full exposure, degrading gracefully to
// ~0.75 / 0.85 at 50%; higher fallback thresholds raise the score at the
// cost of more database queries.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "metric/score.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 5", "Answerability estimator precision/recall and "
              "full-system fallback variants");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  metric::ScoreEvaluator evaluator(
      bundle.db.get(), metric::ScoreOptions{.frame_size = setup.frame_size});

  PrintRow({"train-frac", "precision", "recall", "accuracy"},
           {12, 10, 10, 10});
  std::unique_ptr<core::AsqpModel> full_model;
  for (double fraction : {1.0, 0.75, 0.5}) {
    const metric::Workload reduced = train.Truncate(
        std::max<size_t>(1, static_cast<size_t>(fraction * train.size())));
    AsqpRun run = RunAsqp(bundle, reduced, test, MakeAsqpConfig(setup, false));
    if (run.model == nullptr) continue;

    // Ground truth per test query: actual coverage >= 0.5 == answerable.
    size_t tp = 0, fp = 0, fn = 0, tn = 0;
    for (const auto& wq : test.queries()) {
      auto actual =
          evaluator.QueryScore(wq.stmt, run.model->approximation_set());
      if (!actual.ok()) continue;
      const bool truly_answerable = actual.value() >= 0.5;
      const bool predicted =
          run.model->EstimateAnswerability(wq.stmt) >= 0.5;
      if (predicted && truly_answerable) ++tp;
      else if (predicted && !truly_answerable) ++fp;
      else if (!predicted && truly_answerable) ++fn;
      else ++tn;
    }
    const double precision =
        tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
    const double recall =
        tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
    const double accuracy =
        static_cast<double>(tp + tn) / std::max<size_t>(1, tp + fp + fn + tn);
    PrintRow({Fmt(fraction, 2), Fmt(precision, 2), Fmt(recall, 2),
              Fmt(accuracy, 2)},
             {12, 10, 10, 10});
    BenchRecord record;
    record.name = "fig5/imdb/train_frac_" + Fmt(fraction, 2);
    record.params.emplace_back("train_frac", Fmt(fraction, 2));
    record.params.emplace_back("precision", Fmt(precision, 4));
    record.params.emplace_back("recall", Fmt(recall, 4));
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = accuracy;
    record.error = 1.0 - accuracy;
    writer.Add(std::move(record));
    if (fraction == 1.0) full_model = std::move(run.model);
  }

  // Full-system variants: query the database whenever the estimate falls
  // below the threshold; report blended score and average latency.
  if (full_model != nullptr) {
    std::printf("\nfull system with database fallback:\n");
    PrintRow({"threshold", "score", "db-fallbacks"}, {12, 10, 14});
    for (double threshold : {0.0, 0.6, 0.8}) {
      double score = 0.0;
      size_t fallbacks = 0;
      for (const auto& wq : test.queries()) {
        const double estimate = full_model->EstimateAnswerability(wq.stmt);
        if (estimate < threshold) {
          ++fallbacks;
          score += wq.weight * 1.0;  // exact answer from the database
        } else {
          auto actual = evaluator.QueryScore(
              wq.stmt, full_model->approximation_set());
          score += wq.weight * actual.ValueOr(0.0);
        }
      }
      PrintRow({Fmt(threshold, 1), Fmt(score), std::to_string(fallbacks)},
               {12, 10, 14});
      BenchRecord record;
      record.name = "fig5/imdb/threshold_" + Fmt(threshold, 1);
      record.params.emplace_back("threshold", Fmt(threshold, 1));
      record.params.emplace_back("db_fallbacks", std::to_string(fallbacks));
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.score = score;
      writer.Add(std::move(record));
    }
  }
  if (!writer.Flush()) return 1;
  return 0;
}
