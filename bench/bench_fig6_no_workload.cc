// Figure 6: the unknown-workload mode on FLIGHTS — answer quality on the
// user's (hidden) interest as the system iterates: first trained purely on
// generated queries, then fine-tuned as the user contributes queries.
// RAN and QRD (the baselines that also run without a workload) are flat.
// Expected shape (paper): ASQP climbs with each feedback round toward
// ~0.9 while QRD stays under ~0.7 and RAN lower still.
#include <cstdio>

#include "baselines/selector.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "metric/score.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 6",
              "No-workload mode on FLIGHTS: quality vs feedback rounds");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("flights", setup);

  // The user's hidden interest: a themed workload the system never sees
  // up front (summer delay analysis).
  workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  workloadgen::QueryGenerator generator(bundle.db.get(), &stats, bundle.fks);
  workloadgen::QueryGenOptions theme;
  theme.max_joins = 0;
  theme.max_predicates = 3;
  theme.band_lo = 0.78;  // a narrow, selective numeric region
  theme.band_hi = 0.97;
  const metric::Workload interest = FilterNonEmpty(
      *bundle.db, generator.GenerateWorkload(10, theme, setup.seed + 77));

  metric::ScoreEvaluator evaluator(
      bundle.db.get(), metric::ScoreOptions{.frame_size = setup.frame_size});

  // Flat baselines: RAN and QRD run without any workload.
  // A tight budget makes interest alignment matter (a generous budget
  // covers the themed region by accident and flattens the learning curve).
  const size_t budget = std::max<size_t>(50, setup.k / 4);
  baselines::SelectorContext context;
  context.db = bundle.db.get();
  context.workload = &interest;  // ignored by RAN / QRD
  context.k = budget;
  context.frame_size = setup.frame_size;
  context.seed = setup.seed;
  double ran_score = 0.0, qrd_score = 0.0;
  {
    auto ran = baselines::MakeBaseline("RAN").value()->Select(context);
    if (ran.ok()) ran_score = evaluator.Score(interest, ran.value()).ValueOr(0.0);
    auto qrd = baselines::MakeBaseline("QRD").value()->Select(context);
    if (qrd.ok()) qrd_score = evaluator.Score(interest, qrd.value()).ValueOr(0.0);
  }

  core::AsqpConfig config = MakeAsqpConfig(setup, false);
  config.k = budget;
  config.trainer.iterations = std::max<size_t>(6, config.trainer.iterations / 2);
  core::AsqpTrainer trainer(config);
  auto report = trainer.TrainWithoutWorkload(*bundle.db, bundle.fks,
                                             /*generated_queries=*/24);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;

  const auto record_round = [&](size_t round, double asqp_score) {
    BenchRecord record;
    record.name = "fig6/flights/round_" + std::to_string(round);
    record.params.emplace_back("round", std::to_string(round));
    record.params.emplace_back("qrd_score", Fmt(qrd_score, 4));
    record.params.emplace_back("ran_score", Fmt(ran_score, 4));
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = asqp_score;
    writer.Add(std::move(record));
  };

  PrintRow({"round", "ASQP-RL", "QRD", "RAN"}, {8, 10, 10, 10});
  const double round0 =
      evaluator.Score(interest, model.approximation_set()).ValueOr(0.0);
  PrintRow({"0", Fmt(round0), Fmt(qrd_score), Fmt(ran_score)},
           {8, 10, 10, 10});
  record_round(0, round0);

  metric::Workload contributed;
  const size_t rounds = std::min<size_t>(5, interest.size());
  for (size_t round = 0; round < rounds; ++round) {
    // The user contributes one more query of their real interest.
    contributed.Add(interest.query(round).stmt.Clone());
    contributed.NormalizeWeights();
    if (!model.FineTune(contributed).ok()) continue;
    const double round_score =
        evaluator.Score(interest, model.approximation_set()).ValueOr(0.0);
    PrintRow({std::to_string(round + 1), Fmt(round_score), Fmt(qrd_score),
              Fmt(ran_score)},
             {8, 10, 10, 10});
    record_round(round + 1, round_score);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
