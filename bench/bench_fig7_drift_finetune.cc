// Figure 7: interest-drift fine-tuning — the session's interest moves
// through three genuinely distinct clusters (MAS research areas:
// databases -> ml -> systems). The system trains on the first cluster,
// is then queried with the next cluster's queries (the estimator flags
// them and the drift trigger fires), and fine-tunes. Expected shape
// (paper): quality on each new interest is poor before and jumps sharply
// after its fine-tune.
#include <cstdio>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "metric/score.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

/// Template-built interest cluster over one research area: every query
/// filters venues to the area, so coverage demands area-specific tuples.
metric::Workload AreaCluster(const std::string& area) {
  std::vector<std::string> sqls = {
      util::Format("SELECT p.title, p.citations FROM publication p, venue v "
                   "WHERE p.venue_id = v.id AND v.area = '%s' AND "
                   "p.citations > 10",
                   area.c_str()),
      util::Format("SELECT p.title, p.year FROM publication p, venue v WHERE "
                   "p.venue_id = v.id AND v.area = '%s' AND p.year >= 2010",
                   area.c_str()),
      util::Format("SELECT v.name, p.title FROM publication p, venue v WHERE "
                   "p.venue_id = v.id AND v.area = '%s' AND "
                   "v.type = 'conference'",
                   area.c_str()),
      util::Format("SELECT p.title FROM publication p, venue v WHERE "
                   "p.venue_id = v.id AND v.area = '%s' AND "
                   "p.citations BETWEEN 5 AND 60",
                   area.c_str()),
      util::Format("SELECT a.name, p.title FROM author a, writes w, "
                   "publication p, venue v WHERE w.author_id = a.id AND "
                   "w.pub_id = p.id AND p.venue_id = v.id AND v.area = '%s'",
                   area.c_str()),
      util::Format("SELECT p.title, p.citations FROM publication p, venue v "
                   "WHERE p.venue_id = v.id AND v.area = '%s' AND "
                   "p.year <= 2005",
                   area.c_str()),
  };
  return metric::Workload::FromSql(sqls).ValueOr(metric::Workload{});
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 7",
              "Interest drift: quality before/after fine-tuning per cluster");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("mas", setup);

  const std::vector<std::string> areas = {"databases", "ml", "systems"};
  std::vector<metric::Workload> cluster_train;
  std::vector<metric::Workload> cluster_test;
  for (const std::string& area : areas) {
    metric::Workload cluster =
        FilterNonEmpty(*bundle.db, AreaCluster(area));
    util::Rng rng(setup.seed + util::Fnv1a(area));
    auto [train, test] = cluster.TrainTestSplit(0.6, &rng);
    cluster_train.push_back(std::move(train));
    cluster_test.push_back(std::move(test));
  }

  metric::ScoreEvaluator evaluator(
      bundle.db.get(), metric::ScoreOptions{.frame_size = setup.frame_size});

  core::AsqpConfig config = MakeAsqpConfig(setup, false);
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*bundle.db, cluster_train[0]);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;

  auto print_state = [&](const std::string& stage, const std::string& tag) {
    std::vector<std::string> row = {stage};
    for (size_t c = 0; c < areas.size(); ++c) {
      const double score = evaluator
                               .Score(cluster_test[c],
                                      model.approximation_set())
                               .ValueOr(0.0);
      row.push_back(Fmt(score));
      BenchRecord record;
      record.name = "fig7/mas/" + tag + "/" + areas[c];
      record.params.emplace_back("stage", stage);
      record.params.emplace_back("cluster", areas[c]);
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.score = score;
      writer.Add(std::move(record));
    }
    PrintRow(row, {26, 10, 10, 10});
  };

  PrintRow({"stage", "databases", "ml", "systems"}, {26, 10, 10, 10});
  print_state("trained on databases", "trained");

  for (size_t c = 1; c < areas.size(); ++c) {
    // The whole drifted session arrives through the mediator (train and
    // test queries alike) so the 3-query drift trigger can accumulate.
    size_t to_db = 0;
    size_t arrived = 0;
    for (const auto* part : {&cluster_train[c], &cluster_test[c]}) {
      for (const auto& wq : part->queries()) {
        auto answer = model.Answer(wq.stmt);
        ++arrived;
        if (answer.ok() && !answer->used_approximation) ++to_db;
      }
    }
    std::printf("  %s queries arrive: %zu/%zu routed to the database, drift "
                "trigger %s\n",
                areas[c].c_str(), to_db, arrived,
                model.NeedsFineTuning() ? "FIRED" : "not fired");
    if (!model.FineTune(cluster_train[c]).ok()) continue;
    print_state("fine-tuned on " + areas[c], "finetuned_" + areas[c]);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
