// Figure 8: effect of the memory budget k on quality, for ASQP-RL and all
// baselines. Expected shape (paper): every method improves with k;
// ASQP-RL dominates at every budget and reaches ~0.8 at the largest k
// while the best baselines plateau ~0.2 lower.
#include <cstdio>

#include "baselines/selector.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 8", "Quality vs memory budget k (IMDB)");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  // Paper sweep is {1k, 5k, 10k, 15k} on 34M tuples; scale the sweep to
  // the same fractions of our database.
  std::vector<size_t> ks = {setup.k / 4, setup.k / 2, setup.k, setup.k * 2};

  std::vector<std::string> header = {"Baseline"};
  for (size_t k : ks) header.push_back("k=" + std::to_string(k));
  const std::vector<int> widths(header.size(), 10);
  PrintRow(header, widths);

  const auto record_point = [&](const std::string& name, size_t k,
                                double score) {
    BenchRecord record;
    record.name = "fig8/imdb/" + name + "/k_" + std::to_string(k);
    record.params.emplace_back("baseline", name);
    record.params.emplace_back("k", std::to_string(k));
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = score;
    writer.Add(std::move(record));
  };

  {
    std::vector<std::string> row = {"ASQP-RL"};
    for (size_t k : ks) {
      core::AsqpConfig config = MakeAsqpConfig(setup, false);
      config.k = k;
      AsqpRun run = RunAsqp(bundle, train, test, config);
      row.push_back(Fmt(run.eval.score));
      record_point("ASQP-RL", k, run.eval.score);
    }
    PrintRow(row, widths);
  }
  for (const auto& selector : baselines::AllBaselines()) {
    std::vector<std::string> row = {selector->name()};
    for (size_t k : ks) {
      baselines::SelectorContext context;
      context.db = bundle.db.get();
      context.workload = &train;
      context.k = k;
      context.frame_size = setup.frame_size;
      context.seed = setup.seed;
      context.deadline =
          util::Deadline::AfterSeconds(setup.baseline_deadline_s);
      auto set = selector->Select(context);
      if (set.ok()) {
        const double score =
            EvaluateSubset(*bundle.db, test, set.value(), setup.frame_size)
                .score;
        row.push_back(Fmt(score));
        record_point(selector->name(), k, score);
      } else {
        row.push_back("N/A");
      }
    }
    PrintRow(row, widths);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
