// Figure 9: effect of the frame size F on quality at a fixed memory
// budget. Expected shape (paper): larger F makes the problem harder (more
// tuples needed per query), so every method degrades; ASQP-RL degrades
// most gracefully and stays on top across the sweep.
#include <cstdio>

#include "baselines/selector.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "util/random.h"

using namespace asqp;
using namespace asqp::bench;

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Figure 9", "Quality vs frame size F (IMDB, fixed k)");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  util::Rng rng(setup.seed);
  const metric::Workload usable =
      FilterNonEmpty(*bundle.db, bundle.workload);
  auto [train, test] = usable.TrainTestSplit(0.7, &rng);

  const std::vector<int> frames = {25, 50, 75, 100};
  std::vector<std::string> header = {"Baseline"};
  for (int f : frames) header.push_back("F=" + std::to_string(f));
  const std::vector<int> widths(header.size(), 10);
  PrintRow(header, widths);

  const auto record_point = [&](const std::string& name, int f,
                                double score) {
    BenchRecord record;
    record.name = "fig9/imdb/" + name + "/F_" + std::to_string(f);
    record.params.emplace_back("baseline", name);
    record.params.emplace_back("frame_size", std::to_string(f));
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.score = score;
    writer.Add(std::move(record));
  };

  {
    std::vector<std::string> row = {"ASQP-RL"};
    for (int f : frames) {
      core::AsqpConfig config = MakeAsqpConfig(setup, false);
      config.frame_size = f;
      AsqpRun run = RunAsqp(bundle, train, test, config);
      row.push_back(Fmt(run.eval.score));
      record_point("ASQP-RL", f, run.eval.score);
    }
    PrintRow(row, widths);
  }
  for (const auto& selector : baselines::AllBaselines()) {
    std::vector<std::string> row = {selector->name()};
    for (int f : frames) {
      baselines::SelectorContext context;
      context.db = bundle.db.get();
      context.workload = &train;
      context.k = setup.k;
      context.frame_size = f;
      context.seed = setup.seed;
      context.deadline =
          util::Deadline::AfterSeconds(setup.baseline_deadline_s);
      auto set = selector->Select(context);
      if (set.ok()) {
        const double score =
            EvaluateSubset(*bundle.db, test, set.value(), f).score;
        row.push_back(Fmt(score));
        record_point(selector->name(), f, score);
      } else {
        row.push_back("N/A");
      }
    }
    PrintRow(row, widths);
  }
  if (!writer.Flush()) return 1;
  return 0;
}
