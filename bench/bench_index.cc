// Secondary-index benchmarks (google-benchmark): the same selective
// point/range queries executed with the ordered-index catalog attached
// and detached, over an approximation-set view of a single wide events
// table. The planner's access-path rule converts the selective predicate
// to an IndexRangeScan (binary search over the sorted column permutation)
// while the detached engine evaluates every visible row, so the *On
// families must beat their *Off twins by a wide margin (>= 5x on the
// <= 1%-selectivity range; see DESIGN.md "Secondary indexes").
//
// Both families are recorded in bench/baselines/BENCH_index.json and
// gated by CI's bench-smoke job with --fail-on-missing: a silently
// dropped catalog (or a planner that stops converting) would regress
// every *On entry past the tolerance and fail the gate.
//
// Pass `--json out.json` (or set ASQP_BENCH_JSON) to emit the
// measurements as machine-readable records.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "exec/executor.h"
#include "plan/stats.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "storage/index.h"
#include "util/random.h"

using namespace asqp;

namespace {

/// Event-table rows per ASQP_BENCH_SCALE (0 = smoke, 1 = default,
/// 2 = paper-shaped).
size_t RowsForScale(int scale) {
  switch (scale) {
    case 0: return 150'000;
    case 1: return 600'000;
    default: return 2'000'000;
  }
}

/// events(id, kind, score, note) restricted to an approximation set
/// keeping ~3 of every 4 rows: the index maps subset ordinals, so the
/// benchmark exercises the PhysicalRow indirection the real mediator
/// pays, not the flat full-table special case.
struct EventsBundle {
  std::shared_ptr<storage::Database> db;
  storage::ApproximationSet subset;
  std::shared_ptr<const plan::StatsCatalog> stats;
  std::shared_ptr<const storage::IndexCatalog> indexes;
  int64_t max_id = 0;
};

void Require(const util::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_index: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

const EventsBundle& Events() {
  static const EventsBundle* bundle = [] {
    using storage::Schema;
    using storage::Table;
    using storage::Value;
    using storage::ValueType;

    const size_t rows = RowsForScale(bench::BenchScale());
    util::Rng rng(23);
    auto db = std::make_shared<storage::Database>();

    auto events = std::make_shared<Table>(
        "events", Schema({{"id", ValueType::kInt64},
                          {"kind", ValueType::kString},
                          {"score", ValueType::kDouble},
                          {"note", ValueType::kString}}));
    const char* kKinds[] = {"view", "click", "buy", "share", "hide"};
    for (size_t i = 0; i < rows; ++i) {
      Require(events->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value(std::string(kKinds[rng.NextBounded(5)])),
           rng.Bernoulli(0.1) ? Value() : Value(rng.UniformDouble(0, 1)),
           rng.Bernoulli(0.2) ? Value() : Value(std::string("n"))}));
    }
    Require(db->AddTable(events));

    // Leaky singleton: shared across benchmarks, freed at process exit.
    auto* b = new EventsBundle;  // NOLINT(asqp-naked-new)
    b->db = std::move(db);
    for (size_t i = 0; i < rows; ++i) {
      if (i % 4 != 3) b->subset.Add("events", static_cast<uint32_t>(i));
    }
    b->subset.Seal();
    b->stats = std::make_shared<const plan::StatsCatalog>(
        plan::StatsCatalog::Collect(*b->db));
    const storage::DatabaseView view(b->db.get(), &b->subset);
    b->indexes = std::make_shared<const storage::IndexCatalog>(
        storage::IndexCatalog::Build(view, storage::AllIndexColumns(*b->db),
                                     /*generation=*/0));
    b->max_id = static_cast<int64_t>(rows) - 1;
    return b;
  }();
  return *bundle;
}

storage::DatabaseView SubsetView() {
  return storage::DatabaseView(Events().db.get(), &Events().subset);
}

exec::QueryEngine MakeEngine(bool with_indexes) {
  exec::ExecOptions options;
  options.planner_stats = Events().stats;
  if (with_indexes) options.index_catalog = Events().indexes;
  return exec::QueryEngine(options);
}

/// <= 1%-selectivity closed range on the indexed key column: the
/// acceptance predicate for the >= 5x On-vs-Off bar.
std::string SelectiveRangeSql() {
  const int64_t width = (Events().max_id + 1) / 100;
  return "SELECT id, score FROM events WHERE id BETWEEN 100 AND " +
         std::to_string(100 + width - 1);
}

/// Point lookup on the key column, aimed at an id the subset keeps
/// (ordinals with i % 4 == 3 are excluded) so exactly one row matches.
std::string PointSql() {
  const int64_t mid = Events().max_id / 2;
  return "SELECT score FROM events WHERE id = " +
         std::to_string(mid - mid % 4 + 1);
}

/// ~75% of the table: the planner must *decline* the index here (estimated
/// selectivity is far above the conversion threshold), so On and Off both
/// full-scan and this family tracks the no-regression side of the rule.
std::string UnselectiveRangeSql() {
  return "SELECT id FROM events WHERE id >= " +
         std::to_string((Events().max_id + 1) / 4);
}

/// Index on and off must agree byte-for-byte before we time anything —
/// a speedup over different answers would be meaningless.
void VerifyIdentical(const std::string& sql) {
  const storage::DatabaseView view = SubsetView();
  auto off = MakeEngine(false).ExecuteSql(sql, view);
  auto on = MakeEngine(true).ExecuteSql(sql, view);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "bench_index: %s failed: %s / %s\n", sql.c_str(),
                 off.status().ToString().c_str(),
                 on.status().ToString().c_str());
    std::exit(1);
  }
  if (off.value().num_rows() != on.value().num_rows()) {
    std::fprintf(stderr, "bench_index: row count diverged on %s\n",
                 sql.c_str());
    std::exit(1);
  }
  for (size_t r = 0; r < off.value().num_rows(); ++r) {
    if (off.value().RowKey(r) != on.value().RowKey(r)) {
      std::fprintf(stderr, "bench_index: row %zu diverged on %s\n", r,
                   sql.c_str());
      std::exit(1);
    }
  }
}

void RunScan(benchmark::State& state, const std::string& sql,
             bool with_indexes) {
  const exec::QueryEngine engine = MakeEngine(with_indexes);
  const storage::DatabaseView view = SubsetView();
  auto bound = sql::ParseAndBind(sql, *Events().db);
  if (!bound.ok()) {
    std::fprintf(stderr, "bench_index: bind failed: %s\n",
                 bound.status().ToString().c_str());
    std::exit(1);
  }
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}

void BM_IndexSelectiveRangeOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(SelectiveRangeSql()), true);
  (void)verified;
  RunScan(state, SelectiveRangeSql(), /*with_indexes=*/false);
}
BENCHMARK(BM_IndexSelectiveRangeOff);

void BM_IndexSelectiveRangeOn(benchmark::State& state) {
  RunScan(state, SelectiveRangeSql(), /*with_indexes=*/true);
}
BENCHMARK(BM_IndexSelectiveRangeOn);

void BM_IndexPointLookupOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(PointSql()), true);
  (void)verified;
  RunScan(state, PointSql(), /*with_indexes=*/false);
}
BENCHMARK(BM_IndexPointLookupOff);

void BM_IndexPointLookupOn(benchmark::State& state) {
  RunScan(state, PointSql(), /*with_indexes=*/true);
}
BENCHMARK(BM_IndexPointLookupOn);

void BM_IndexUnselectiveRangeOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(UnselectiveRangeSql()), true);
  (void)verified;
  RunScan(state, UnselectiveRangeSql(), /*with_indexes=*/false);
}
BENCHMARK(BM_IndexUnselectiveRangeOff);

void BM_IndexUnselectiveRangeOn(benchmark::State& state) {
  RunScan(state, UnselectiveRangeSql(), /*with_indexes=*/true);
}
BENCHMARK(BM_IndexUnselectiveRangeOn);

void BM_IndexCatalogBuild(benchmark::State& state) {
  // Build cost over every column of the approximation-set view: the price
  // MaterializeSet / FineTune pays per generation. Must stay trivially
  // cheap relative to one training iteration.
  const storage::DatabaseView view = SubsetView();
  const auto specs = storage::AllIndexColumns(*Events().db);
  int64_t entries = 0;
  for (auto _ : state) {
    storage::IndexCatalog catalog =
        storage::IndexCatalog::Build(view, specs, /*generation=*/0);
    entries += static_cast<int64_t>(catalog.num_indexes());
    benchmark::DoNotOptimize(catalog);
  }
  state.SetItemsProcessed(entries);
}
BENCHMARK(BM_IndexCatalogBuild);

/// Console reporter that additionally captures every per-iteration run as
/// a BenchRecord (aggregates and errored runs are skipped).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::BenchJsonWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      record.params.emplace_back("bench_scale",
                                 std::to_string(bench::BenchScale()));
      const auto iters = run.iterations > 0 ? run.iterations : 1;
      record.wall_seconds =
          run.real_accumulated_time / static_cast<double>(iters);
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) record.rows_per_sec = it->second;
      writer_->Add(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchJsonWriter* writer_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJsonWriter writer = bench::BenchJsonWriter::FromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!writer.Flush()) return 1;
  return 0;
}
