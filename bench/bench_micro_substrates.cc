// Microbenchmarks (google-benchmark) for the hot substrate paths that the
// paper's end-to-end numbers rest on: hash join (sequential and
// morsel-parallel across thread counts), Eq.-1 score evaluation,
// query/tuple embedding, k-means, and one PPO policy step.
//
// Pass `--json out.json` (or set ASQP_BENCH_JSON) to also emit the
// measurements as machine-readable records; CI's bench-smoke job diffs
// them against bench/baselines/BENCH_micro.json via tools/bench_compare.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "common/bench_common.h"
#include "common/bench_json.h"
#include "embed/embedder.h"
#include "metric/score.h"
#include "nn/mlp.h"
#include "sql/binder.h"
#include "util/random.h"

using namespace asqp;

namespace {

const data::DatasetBundle& Imdb() {
  static const data::DatasetBundle* bundle = [] {
    data::DatasetOptions options;
    options.scale = 0.05;
    options.workload_size = 10;
    // Leaky singleton: shared across benchmarks, freed at process exit.
    return new data::DatasetBundle(data::MakeImdbJob(options));  // NOLINT(asqp-naked-new)
  }();
  return *bundle;
}

void BM_HashJoinTwoTables(benchmark::State& state) {
  const auto& bundle = Imdb();
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT t.name, ci.role FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND t.production_year >= 2000",
      *bundle.db);
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_HashJoinTwoTables);

void BM_ThreeWayJoin(benchmark::State& state) {
  const auto& bundle = Imdb();
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT t.name, c.name FROM title t, movie_companies mc, company c "
      "WHERE mc.movie_id = t.id AND mc.company_id = c.id AND t.rating > 7",
      *bundle.db);
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_ThreeWayJoin);

void BM_MorselParallelHashJoin(benchmark::State& state) {
  // The tentpole measurement: the same two-table probe-heavy join as
  // BM_HashJoinTwoTables, executed morsel-parallel at Arg(0) threads.
  // Identical output across thread counts is asserted in
  // tests/parallel_exec_test.cc; this records the speedup curve.
  const auto& bundle = Imdb();
  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.morsel_rows = 4096;
  exec::QueryEngine engine(options);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT t.name, ci.role FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND t.production_year >= 2000",
      *bundle.db);
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_MorselParallelHashJoin)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_MorselParallelBuild(benchmark::State& state) {
  // Build-heavy join: movie_companies is the build side (its candidate
  // rows are hashed into radix partitions), company the small probe
  // anchor, so the partitioned build dominates the wall clock.
  const auto& bundle = Imdb();
  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.morsel_rows = 4096;
  exec::QueryEngine engine(options);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT c.name, mc.note FROM company c, movie_companies mc "
      "WHERE mc.company_id = c.id",
      *bundle.db);
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_MorselParallelBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_MorselParallelAggregate(benchmark::State& state) {
  // Per-morsel partial aggregation: grouped COUNT/AVG/MIN/MAX over the
  // largest base table; thread-local group tables merge in morsel order.
  const auto& bundle = Imdb();
  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.morsel_rows = 4096;
  exec::QueryEngine engine(options);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT ci.role, COUNT(*), AVG(ci.person_id), MIN(ci.movie_id), "
      "MAX(ci.movie_id) FROM cast_info ci GROUP BY ci.role",
      *bundle.db);
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_MorselParallelAggregate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_MorselParallelAggregateWide(benchmark::State& state) {
  // High-cardinality grouping (one group per person): stresses the group
  // table itself rather than the scan — the workload that motivated the
  // hash-table-with-sorted-merge design over std::map's per-row log(n).
  const auto& bundle = Imdb();
  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.morsel_rows = 4096;
  exec::QueryEngine engine(options);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT ci.person_id, COUNT(*), MIN(ci.movie_id), MAX(ci.movie_id) "
      "FROM cast_info ci GROUP BY ci.person_id",
      *bundle.db);
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_MorselParallelAggregateWide)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Shared runner for the DISTINCT / ORDER BY substrate probes below: same
/// engine shape as the BM_MorselParallel* families (Arg(0) threads,
/// 4096-row morsels).
void RunMicroQuery(benchmark::State& state, const std::string& sql) {
  const auto& bundle = Imdb();
  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.morsel_rows = 4096;
  exec::QueryEngine engine(options);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(sql, *bundle.db);
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}

// ---- DISTINCT / large ORDER BY: hash-partial applicability probes. ----
//
// The open ROADMAP question after the partial-aggregation win: would the
// same per-morsel hash-partial treatment pay off for DISTINCT and large
// ORDER BY? These four families measure both sides without committing to
// new operator code: the *ViaGroupBy / *GroupedSort legs route the same
// logical work through the already-hash-partial grouped aggregation
// substrate, so the gap between each pair IS the available headroom.
// Verdict from the measurements lives in ROADMAP.md ("Open items").

void BM_DistinctDedup(benchmark::State& state) {
  // High-cardinality DISTINCT through the current dedup path.
  RunMicroQuery(state,
                "SELECT DISTINCT ci.person_id FROM cast_info ci");
}
BENCHMARK(BM_DistinctDedup)->Arg(1)->Arg(4)->UseRealTime();

void BM_DistinctViaGroupBy(benchmark::State& state) {
  // The same distinct key set produced by the hash-partial grouped
  // aggregation substrate (the COUNT(*) rides along; grouping without an
  // aggregate is not in the dialect).
  RunMicroQuery(state,
                "SELECT ci.person_id, COUNT(*) FROM cast_info ci "
                "GROUP BY ci.person_id");
}
BENCHMARK(BM_DistinctViaGroupBy)->Arg(1)->Arg(4)->UseRealTime();

void BM_OrderByLargeSort(benchmark::State& state) {
  // Full-width sort of the largest base table: the current ORDER BY path
  // materializes every row and sorts once at the end.
  RunMicroQuery(state,
                "SELECT ci.person_id, ci.movie_id FROM cast_info ci "
                "ORDER BY ci.person_id, ci.movie_id");
}
BENCHMARK(BM_OrderByLargeSort)->Arg(1)->Arg(4)->UseRealTime();

void BM_OrderByGroupedSort(benchmark::State& state) {
  // Hash-partial-then-sort: grouping first shrinks the sort input from
  // every row to one row per key — the shape a hash-partial ORDER BY
  // treatment would produce for duplicate-heavy keys.
  RunMicroQuery(state,
                "SELECT ci.person_id, COUNT(*) FROM cast_info ci "
                "GROUP BY ci.person_id ORDER BY ci.person_id");
}
BENCHMARK(BM_OrderByGroupedSort)->Arg(1)->Arg(4)->UseRealTime();

void BM_ScoreEvaluation(benchmark::State& state) {
  const auto& bundle = Imdb();
  util::Rng rng(3);
  storage::ApproximationSet subset;
  for (const std::string& name : bundle.db->TableNames()) {
    auto t = bundle.db->GetTable(name).value();
    for (size_t r : rng.SampleIndices(t->num_rows(), 100)) {
      subset.Add(name, static_cast<uint32_t>(r));
    }
  }
  subset.Seal();
  for (auto _ : state) {
    // Fresh evaluator: do not let the |q(T)| cache hide the work.
    metric::ScoreEvaluator evaluator(bundle.db.get(),
                                     metric::ScoreOptions{.frame_size = 25});
    auto score = evaluator.Score(bundle.workload, subset);
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_ScoreEvaluation);

void BM_QueryEmbedding(benchmark::State& state) {
  const auto& bundle = Imdb();
  embed::QueryEmbedder embedder(64);
  for (auto _ : state) {
    for (const auto& wq : bundle.workload.queries()) {
      benchmark::DoNotOptimize(embedder.Embed(wq.stmt));
    }
  }
}
BENCHMARK(BM_QueryEmbedding);

void BM_TupleEmbedding(benchmark::State& state) {
  const auto& bundle = Imdb();
  auto title = bundle.db->GetTable("title").value();
  embed::TupleEmbedder embedder(64);
  size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embedder.EmbedRow(*title, static_cast<uint32_t>(row)));
    row = (row + 1) % title->num_rows();
  }
}
BENCHMARK(BM_TupleEmbedding);

void BM_KMeans(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<embed::Vector> points;
  for (int i = 0; i < 1000; ++i) {
    embed::Vector v(32);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    points.push_back(std::move(v));
  }
  for (auto _ : state) {
    auto result = cluster::KMeans(points, 16);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans);

void BM_PolicyForwardBackward(benchmark::State& state) {
  // One PPO-sized actor step: state dim ~ 560, 2x128 hidden, 512 actions.
  nn::Mlp actor({560, 128, 128, 512}, nn::Activation::kTanh, 1);
  nn::Adam adam(&actor, {});
  util::Rng rng(5);
  std::vector<float> input(560);
  for (float& v : input) v = static_cast<float>(rng.UniformDouble());
  std::vector<float> grad(512, 0.001f);
  for (auto _ : state) {
    nn::Mlp::Cache cache;
    auto out = actor.Forward(input, &cache);
    benchmark::DoNotOptimize(out);
    actor.Backward(cache, grad);
    adam.Step();
  }
}
BENCHMARK(BM_PolicyForwardBackward);

/// Console reporter that additionally captures every per-iteration run as
/// a BenchRecord (aggregates and errored runs are skipped).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::BenchJsonWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      record.params.emplace_back("bench_scale",
                                 std::to_string(bench::BenchScale()));
      const auto iters = run.iterations > 0 ? run.iterations : 1;
      record.wall_seconds =
          run.real_accumulated_time / static_cast<double>(iters);
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) record.rows_per_sec = it->second;
      writer_->Add(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchJsonWriter* writer_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJsonWriter writer = bench::BenchJsonWriter::FromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!writer.Flush()) return 1;
  return 0;
}
