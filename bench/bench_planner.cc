// Planner benchmarks (google-benchmark): the same selective multi-join
// queries executed with the cost-based planner on and off, over a
// synthetic star schema whose fact table dwarfs its dimensions. The
// planner's transitive filter pushdown shrinks the hash-join build side
// from the whole fact table to the selected slice, so the *On families
// must beat their *Off twins by a wide margin (>= 2x on the selective
// star; see DESIGN.md "Cost-based planner").
//
// Both families are recorded in bench/baselines/BENCH_planner.json and
// gated by CI's bench-smoke job with --fail-on-missing: a silently
// disabled planner would regress every *On entry past the tolerance and
// fail the gate.
//
// Pass `--json out.json` (or set ASQP_BENCH_JSON) to emit the
// measurements as machine-readable records.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "exec/executor.h"
#include "plan/planner.h"
#include "plan/stats.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "util/random.h"

using namespace asqp;

namespace {

/// Star-schema sizes per ASQP_BENCH_SCALE (0 = smoke, 1 = default,
/// 2 = paper-shaped).
struct StarSizes {
  size_t dims = 400;
  size_t facts = 30'000;
};

StarSizes SizesForScale(int scale) {
  switch (scale) {
    case 0: return {400, 30'000};
    case 1: return {2'000, 300'000};
    default: return {4'000, 1'000'000};
  }
}

/// fact(id, dim_id, val, tag) x dim(id, cat, weight) x ext(id, region):
/// dim and ext share the key domain, so `dim.id < K` propagates across
/// the equality class {fact.dim_id, dim.id, ext.id}.
struct StarBundle {
  std::shared_ptr<storage::Database> db;
  std::shared_ptr<const plan::StatsCatalog> stats;
  int64_t selective_key = 0;  // < 5% of the dimension key domain
};

void Require(const util::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_planner: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

const StarBundle& Star() {
  static const StarBundle* bundle = [] {
    using storage::Schema;
    using storage::Table;
    using storage::Value;
    using storage::ValueType;

    const StarSizes sizes = SizesForScale(bench::BenchScale());
    util::Rng rng(17);
    auto db = std::make_shared<storage::Database>();

    auto dim = std::make_shared<Table>(
        "dim", Schema({{"id", ValueType::kInt64},
                       {"cat", ValueType::kString},
                       {"weight", ValueType::kDouble}}));
    const char* kCats[] = {"north", "south", "east", "west"};
    for (size_t i = 0; i < sizes.dims; ++i) {
      Require(dim->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value(std::string(kCats[rng.NextBounded(4)])),
           Value(rng.UniformDouble(0, 1))}));
    }

    auto ext = std::make_shared<Table>(
        "ext", Schema({{"id", ValueType::kInt64},
                       {"region", ValueType::kString}}));
    for (size_t i = 0; i < sizes.dims; ++i) {
      Require(ext->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value(std::string(kCats[rng.NextBounded(4)]))}));
    }

    auto fact = std::make_shared<Table>(
        "fact", Schema({{"id", ValueType::kInt64},
                        {"dim_id", ValueType::kInt64},
                        {"val", ValueType::kDouble},
                        {"tag", ValueType::kString}}));
    const char* kTags[] = {"a", "b", "c", "d", "e", "f"};
    for (size_t i = 0; i < sizes.facts; ++i) {
      Require(fact->AppendRow(
          {Value(static_cast<int64_t>(i)),
           Value(static_cast<int64_t>(rng.NextBounded(sizes.dims))),
           Value(rng.UniformDouble(0, 100)),
           Value(std::string(kTags[rng.NextBounded(6)]))}));
    }

    Require(db->AddTable(dim));
    Require(db->AddTable(ext));
    Require(db->AddTable(fact));

    // Leaky singleton: shared across benchmarks, freed at process exit.
    auto* b = new StarBundle;  // NOLINT(asqp-naked-new)
    b->db = std::move(db);
    b->stats = std::make_shared<const plan::StatsCatalog>(
        plan::StatsCatalog::Collect(*b->db));
    b->selective_key = static_cast<int64_t>(sizes.dims / 20);
    return b;
  }();
  return *bundle;
}

exec::QueryEngine MakeEngine(bool planner) {
  exec::ExecOptions options;
  options.enable_planner = planner;
  if (planner) options.planner_stats = Star().stats;
  return exec::QueryEngine(options);
}

/// The selective star join: the `d.id < K` slice (5% of the key domain)
/// propagates onto fact.dim_id and ext.id, so the planner builds its hash
/// tables over ~5% of each side while the unplanned path hashes the whole
/// fact table.
std::string SelectiveStarSql() {
  return "SELECT f.val, d.cat, e.region FROM fact f, dim d, ext e "
         "WHERE f.dim_id = d.id AND f.dim_id = e.id AND d.id < " +
         std::to_string(Star().selective_key);
}

/// Two-table variant: isolates the pushdown win without the third table.
std::string SelectivePairSql() {
  return "SELECT f.val, d.cat FROM fact f, dim d "
         "WHERE f.dim_id = d.id AND d.id < " +
         std::to_string(Star().selective_key);
}

/// Point lookup through the join: equality instead of a range.
std::string PointStarSql() {
  return "SELECT f.val, d.cat FROM fact f, dim d "
         "WHERE f.dim_id = d.id AND d.id = 7";
}

/// Planner on and off must agree byte-for-byte before we time anything —
/// a speedup over different answers would be meaningless.
void VerifyIdentical(const std::string& sql) {
  storage::DatabaseView view(Star().db.get());
  auto off = MakeEngine(false).ExecuteSql(sql, view);
  auto on = MakeEngine(true).ExecuteSql(sql, view);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "bench_planner: %s failed: %s / %s\n", sql.c_str(),
                 off.status().ToString().c_str(),
                 on.status().ToString().c_str());
    std::exit(1);
  }
  if (off.value().num_rows() != on.value().num_rows()) {
    std::fprintf(stderr, "bench_planner: row count diverged on %s\n",
                 sql.c_str());
    std::exit(1);
  }
  for (size_t r = 0; r < off.value().num_rows(); ++r) {
    if (off.value().RowKey(r) != on.value().RowKey(r)) {
      std::fprintf(stderr, "bench_planner: row %zu diverged on %s\n", r,
                   sql.c_str());
      std::exit(1);
    }
  }
}

void RunJoin(benchmark::State& state, const std::string& sql, bool planner) {
  const exec::QueryEngine engine = MakeEngine(planner);
  storage::DatabaseView view(Star().db.get());
  auto bound = sql::ParseAndBind(sql, *Star().db);
  if (!bound.ok()) {
    std::fprintf(stderr, "bench_planner: bind failed: %s\n",
                 bound.status().ToString().c_str());
    std::exit(1);
  }
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok()) rows += static_cast<int64_t>(rs.value().num_rows());
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(rows);
}

void BM_PlannerSelectiveStarOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(SelectiveStarSql()), true);
  (void)verified;
  RunJoin(state, SelectiveStarSql(), /*planner=*/false);
}
BENCHMARK(BM_PlannerSelectiveStarOff);

void BM_PlannerSelectiveStarOn(benchmark::State& state) {
  RunJoin(state, SelectiveStarSql(), /*planner=*/true);
}
BENCHMARK(BM_PlannerSelectiveStarOn);

void BM_PlannerSelectivePairOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(SelectivePairSql()), true);
  (void)verified;
  RunJoin(state, SelectivePairSql(), /*planner=*/false);
}
BENCHMARK(BM_PlannerSelectivePairOff);

void BM_PlannerSelectivePairOn(benchmark::State& state) {
  RunJoin(state, SelectivePairSql(), /*planner=*/true);
}
BENCHMARK(BM_PlannerSelectivePairOn);

void BM_PlannerPointStarOff(benchmark::State& state) {
  static const bool verified = (VerifyIdentical(PointStarSql()), true);
  (void)verified;
  RunJoin(state, PointStarSql(), /*planner=*/false);
}
BENCHMARK(BM_PlannerPointStarOff);

void BM_PlannerPointStarOn(benchmark::State& state) {
  RunJoin(state, PointStarSql(), /*planner=*/true);
}
BENCHMARK(BM_PlannerPointStarOn);

void BM_PlanQueryOverhead(benchmark::State& state) {
  // Planning itself (fold + prune + propagate + DP) must stay far below
  // execution cost — it runs on every Execute when enabled.
  auto bound = sql::ParseAndBind(SelectiveStarSql(), *Star().db);
  for (auto _ : state) {
    auto planned = plan::PlanQuery(bound.value(), Star().stats.get());
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_PlanQueryOverhead);

/// Console reporter that additionally captures every per-iteration run as
/// a BenchRecord (aggregates and errored runs are skipped).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::BenchJsonWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      record.params.emplace_back("bench_scale",
                                 std::to_string(bench::BenchScale()));
      const auto iters = run.iterations > 0 ? run.iterations : 1;
      record.wall_seconds =
          run.real_accumulated_time / static_cast<double>(iters);
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) record.rows_per_sec = it->second;
      writer_->Add(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchJsonWriter* writer_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJsonWriter writer = bench::BenchJsonWriter::FromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!writer.Flush()) return 1;
  return 0;
}
