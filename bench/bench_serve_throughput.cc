// Serving-layer throughput: QPS of one ServeEngine under 1/2/4/8
// concurrent mediator sessions, cold (cache disabled: every request is
// admitted and executed) vs warm (fingerprint cache pre-filled: repeat
// queries are hits), plus single-session cold/hit latency — the cache-hit
// speedup is the serving layer's acceptance metric (>= 10x). Emits
// machine-readable records via --json / ASQP_BENCH_JSON for CI's
// bench-smoke gate (tools/bench_compare vs bench/baselines/BENCH_serve.json).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "core/trainer.h"
#include "serve/serve_engine.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

/// Requests each session issues per throughput round.
size_t RequestsPerSession() {
  switch (BenchScale()) {
    case 0:
      return 30;
    case 1:
      return 120;
    default:
      return 400;
  }
}

/// Run `sessions` threads, each issuing `per_session` requests round-robin
/// over `queries`, and return the total wall seconds.
double RunSessions(serve::ServeEngine* engine,
                   const std::vector<sql::SelectStatement>& queries,
                   size_t sessions, size_t per_session) {
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([engine, &queries, s, per_session] {
      for (size_t i = 0; i < per_session; ++i) {
        auto result = engine->Answer(queries[(s + i) % queries.size()]);
        if (!result.ok()) {
          std::fprintf(stderr, "serve error: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Serving layer",
              "ServeEngine QPS at 1/2/4/8 sessions, cold vs warm cache");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  const metric::Workload workload = FilterNonEmpty(*bundle.db, bundle.workload);

  core::AsqpConfig config = MakeAsqpConfig(setup);
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*bundle.db, workload);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report.value().model;

  std::vector<sql::SelectStatement> queries;
  for (const auto& wq : workload.queries()) {
    queries.push_back(wq.stmt);
    if (queries.size() >= 8) break;
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no usable workload queries\n");
    return 1;
  }

  serve::ServeOptions serve_options;
  serve_options.max_inflight = 4;
  serve_options.queue_capacity = 64;
  serve_options.pool_threads = BenchExecThreads() > 1
                                   ? BenchExecThreads() - 1
                                   : 1;

  // --- Single-session latency: cold execution vs cache hit. -------------
  double cold_seconds = 0.0;
  double hit_seconds = 0.0;
  {
    serve::ServeEngine engine(&model, serve_options);
    util::Stopwatch timer;
    for (const auto& stmt : queries) {
      auto result = engine.Answer(stmt);
      if (!result.ok()) {
        std::fprintf(stderr, "cold answer failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    cold_seconds = timer.ElapsedSeconds() / static_cast<double>(queries.size());
    timer.Restart();
    for (const auto& stmt : queries) {
      auto result = engine.Answer(stmt);
      if (!result.ok() || !result.value().from_cache) {
        std::fprintf(stderr, "expected a cache hit on the repeat pass\n");
        return 1;
      }
    }
    hit_seconds = timer.ElapsedSeconds() / static_cast<double>(queries.size());
  }
  const double speedup = hit_seconds > 0 ? cold_seconds / hit_seconds : 0.0;

  PrintRow({"pass", "per-query", "speedup"}, {10, 14, 10});
  PrintRow({"cold", Fmt(cold_seconds * 1e3, 3) + " ms", "1x"}, {10, 14, 10});
  PrintRow({"hit", Fmt(hit_seconds * 1e3, 3) + " ms", Fmt(speedup, 1) + "x"},
           {10, 14, 10});

  {
    BenchRecord record;
    record.name = "serve_latency_cold";
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.wall_seconds = cold_seconds;
    writer.Add(std::move(record));
  }
  {
    BenchRecord record;
    record.name = "serve_latency_hit";
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.params.emplace_back("speedup_vs_cold", Fmt(speedup, 1));
    record.wall_seconds = hit_seconds;
    writer.Add(std::move(record));
  }

  // --- Throughput: sessions x {cold, warm}. -----------------------------
  const size_t per_session = RequestsPerSession();
  PrintRow({"sessions", "mode", "QPS", "hit ratio"}, {10, 8, 12, 10});
  for (size_t sessions : {1u, 2u, 4u, 8u}) {
    for (const bool warm : {false, true}) {
      serve::ServeOptions options = serve_options;
      if (!warm) options.cache_bytes = 0;  // cold = every request executes
      serve::ServeEngine engine(&model, options);
      if (warm) {
        // Pre-fill so the measured region is all hits.
        for (const auto& stmt : queries) {
          auto result = engine.Answer(stmt);
          if (!result.ok()) {
            std::fprintf(stderr, "warmup failed: %s\n",
                         result.status().ToString().c_str());
            return 1;
          }
        }
      }
      const double wall =
          RunSessions(&engine, queries, sessions, per_session);
      const double total =
          static_cast<double>(sessions) * static_cast<double>(per_session);
      const double qps = wall > 0 ? total / wall : 0.0;
      const serve::ServeEngine::Stats stats = engine.stats();
      const double hit_ratio =
          stats.served > 0
              ? static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.served)
              : 0.0;
      PrintRow({std::to_string(sessions), warm ? "warm" : "cold",
                Fmt(qps, 1), Fmt(hit_ratio, 2)},
               {10, 8, 12, 10});

      BenchRecord record;
      record.name = util::Format("serve_qps_%s/%zu", warm ? "warm" : "cold",
                                 sessions);
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.params.emplace_back("sessions", std::to_string(sessions));
      record.params.emplace_back("hit_ratio", Fmt(hit_ratio, 3));
      record.wall_seconds = wall / total;  // seconds per request
      record.rows_per_sec = qps;           // requests per second
      writer.Add(std::move(record));
    }
  }

  if (!writer.Flush()) return 1;
  return 0;
}
