// Serving-layer throughput: QPS of one ServeEngine under 1/2/4/8
// concurrent mediator sessions, cold (cache disabled: every request is
// admitted and executed) vs warm (fingerprint cache pre-filled: repeat
// queries are hits), plus single-session cold/hit latency — the cache-hit
// speedup is the serving layer's acceptance metric (>= 10x). A final
// overload scenario offers 4x max_inflight sessions with tight deadlines
// and fault points armed, records p50/p99/degraded-answer ratio/mean
// error estimate, and fails if any raw kDeadlineExceeded/kCancelled
// escapes ServeEngine::Answer. Emits machine-readable records via
// --json / ASQP_BENCH_JSON for CI's bench-smoke gate
// (tools/bench_compare vs bench/baselines/BENCH_serve.json).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "common/bench_json.h"
#include "core/trainer.h"
#include "serve/serve_engine.h"
#include "sql/parser.h"
#include "util/fault_injector.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace asqp;
using namespace asqp::bench;

namespace {

/// Requests each session issues per throughput round.
size_t RequestsPerSession() {
  switch (BenchScale()) {
    case 0:
      return 30;
    case 1:
      return 120;
    default:
      return 400;
  }
}

/// Run `sessions` threads, each issuing `per_session` requests round-robin
/// over `queries`, and return the total wall seconds.
double RunSessions(serve::ServeEngine* engine,
                   const std::vector<sql::SelectStatement>& queries,
                   size_t sessions, size_t per_session) {
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([engine, &queries, s, per_session] {
      for (size_t i = 0; i < per_session; ++i) {
        auto result = engine->Answer(queries[(s + i) % queries.size()]);
        if (!result.ok()) {
          std::fprintf(stderr, "serve error: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter writer = BenchJsonWriter::FromArgs(&argc, argv);
  PrintHeader("Serving layer",
              "ServeEngine QPS at 1/2/4/8 sessions, cold vs warm cache");
  const ScaledSetup setup = SetupForScale(BenchScale());
  const data::DatasetBundle bundle = LoadDataset("imdb", setup);
  const metric::Workload workload = FilterNonEmpty(*bundle.db, bundle.workload);

  core::AsqpConfig config = MakeAsqpConfig(setup);
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*bundle.db, workload);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report.value().model;

  std::vector<sql::SelectStatement> queries;
  for (const auto& wq : workload.queries()) {
    queries.push_back(wq.stmt);
    if (queries.size() >= 8) break;
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no usable workload queries\n");
    return 1;
  }

  serve::ServeOptions serve_options;
  serve_options.max_inflight = 4;
  serve_options.queue_capacity = 64;
  serve_options.pool_threads = BenchExecThreads() > 1
                                   ? BenchExecThreads() - 1
                                   : 1;

  // --- Single-session latency: cold execution vs cache hit. -------------
  double cold_seconds = 0.0;
  double hit_seconds = 0.0;
  {
    serve::ServeEngine engine(&model, serve_options);
    util::Stopwatch timer;
    for (const auto& stmt : queries) {
      auto result = engine.Answer(stmt);
      if (!result.ok()) {
        std::fprintf(stderr, "cold answer failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    cold_seconds = timer.ElapsedSeconds() / static_cast<double>(queries.size());
    timer.Restart();
    for (const auto& stmt : queries) {
      auto result = engine.Answer(stmt);
      if (!result.ok() || !result.value().from_cache) {
        std::fprintf(stderr, "expected a cache hit on the repeat pass\n");
        return 1;
      }
    }
    hit_seconds = timer.ElapsedSeconds() / static_cast<double>(queries.size());
  }
  const double speedup = hit_seconds > 0 ? cold_seconds / hit_seconds : 0.0;

  PrintRow({"pass", "per-query", "speedup"}, {10, 14, 10});
  PrintRow({"cold", Fmt(cold_seconds * 1e3, 3) + " ms", "1x"}, {10, 14, 10});
  PrintRow({"hit", Fmt(hit_seconds * 1e3, 3) + " ms", Fmt(speedup, 1) + "x"},
           {10, 14, 10});

  {
    BenchRecord record;
    record.name = "serve_latency_cold";
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.wall_seconds = cold_seconds;
    writer.Add(std::move(record));
  }
  {
    BenchRecord record;
    record.name = "serve_latency_hit";
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.params.emplace_back("speedup_vs_cold", Fmt(speedup, 1));
    record.wall_seconds = hit_seconds;
    writer.Add(std::move(record));
  }

  // --- Throughput: sessions x {cold, warm}. -----------------------------
  const size_t per_session = RequestsPerSession();
  PrintRow({"sessions", "mode", "QPS", "hit ratio"}, {10, 8, 12, 10});
  for (size_t sessions : {1u, 2u, 4u, 8u}) {
    for (const bool warm : {false, true}) {
      serve::ServeOptions options = serve_options;
      if (!warm) options.cache_bytes = 0;  // cold = every request executes
      serve::ServeEngine engine(&model, options);
      if (warm) {
        // Pre-fill so the measured region is all hits.
        for (const auto& stmt : queries) {
          auto result = engine.Answer(stmt);
          if (!result.ok()) {
            std::fprintf(stderr, "warmup failed: %s\n",
                         result.status().ToString().c_str());
            return 1;
          }
        }
      }
      const double wall =
          RunSessions(&engine, queries, sessions, per_session);
      const double total =
          static_cast<double>(sessions) * static_cast<double>(per_session);
      const double qps = wall > 0 ? total / wall : 0.0;
      const serve::ServeEngine::Stats stats = engine.stats();
      const double hit_ratio =
          stats.served > 0
              ? static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.served)
              : 0.0;
      PrintRow({std::to_string(sessions), warm ? "warm" : "cold",
                Fmt(qps, 1), Fmt(hit_ratio, 2)},
               {10, 8, 12, 10});

      BenchRecord record;
      record.name = util::Format("serve_qps_%s/%zu", warm ? "warm" : "cold",
                                 sessions);
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.params.emplace_back("sessions", std::to_string(sessions));
      record.params.emplace_back("hit_ratio", Fmt(hit_ratio, 3));
      record.wall_seconds = wall / total;  // seconds per request
      record.rows_per_sec = qps;           // requests per second
      writer.Add(std::move(record));
    }
  }

  // --- Overload: offered load 4x max_inflight, tight deadlines, fault
  // points armed. Measures the degradation ladder's serve contract: every
  // request resolves to a tiered answer or a typed shed/degraded status;
  // a raw kDeadlineExceeded / kCancelled reaching a client (other than
  // the dead-on-arrival fast path) fails the bench. ------------------------
  {
    const size_t sessions = 4 * serve_options.max_inflight;
    const size_t per_session = std::max<size_t>(RequestsPerSession() / 2, 20);
    const size_t total_requests = sessions * per_session;
    // Tight but not dead-on-arrival: several cold executions' worth, so
    // expiry happens while queued or mid-execution under contention.
    const double deadline_seconds =
        std::clamp(cold_seconds * 10.0, 0.004, 0.25);

    serve::ServeOptions options = serve_options;
    options.cache_bytes = 0;   // every request runs the ladder
    options.queue_capacity = sessions / 2;  // queue overflow is reachable
    serve::ServeEngine engine(&model, options);

    // Mix in a learned-answerable aggregate so load shedding has a tier
    // to shed to (the SPJ workload queries can only backpressure).
    std::vector<sql::SelectStatement> mix = queries;
    {
      auto parsed = sql::Parse(
          "SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000");
      if (!parsed.ok()) {
        std::fprintf(stderr, "overload aggregate parse failed: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      mix.push_back(std::move(parsed).value());
      mix.push_back(mix.back());  // double its share of the offered load
    }

    // Transient faults on the ladder's retryable points plus simulated
    // deadline expiry; counts chosen so a minority of requests hit one.
    util::FaultInjector& injector = util::FaultInjector::Global();
    injector.Reset();
    injector.Arm("exec.join.alloc", static_cast<int>(total_requests / 8), 5);
    injector.Arm("exec.agg.partial", static_cast<int>(total_requests / 16), 3);
    injector.Arm("exec.deadline", static_cast<int>(total_requests / 8), 7);

    struct SessionTally {
      std::vector<double> latencies;
      size_t tier0 = 0;          // healthy approximation-set answers
      size_t degraded_answers = 0;  // fell back: learned or full-DB tier
      size_t typed_degraded = 0;    // kDegraded: every tier exhausted
      size_t backpressure = 0;      // kResourceExhausted (queue full)
      size_t dead_on_arrival = 0;   // expired-deadline fast path
      size_t leaks = 0;          // raw timeout/cancel reaching the client
      double error_estimate_sum = 0.0;
      size_t error_estimates = 0;
    };
    std::vector<SessionTally> tallies(sessions);
    util::Stopwatch timer;
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&engine, &mix, &tallies, s, per_session,
                            deadline_seconds] {
        SessionTally& tally = tallies[s];
        tally.latencies.reserve(per_session);
        for (size_t i = 0; i < per_session; ++i) {
          const util::ExecContext context =
              util::ExecContext::WithDeadline(deadline_seconds);
          util::Stopwatch request_timer;
          auto result =
              engine.Answer(mix[(s + i) % mix.size()], context);
          tally.latencies.push_back(request_timer.ElapsedSeconds());
          if (result.ok()) {
            if (result.value().fell_back) {
              ++tally.degraded_answers;
              if (result.value().error_estimate > 0.0) {
                tally.error_estimate_sum += result.value().error_estimate;
                ++tally.error_estimates;
              }
            } else {
              ++tally.tier0;
            }
            continue;
          }
          const util::Status& status = result.status();
          if (status.code() == util::StatusCode::kDegraded) {
            ++tally.typed_degraded;
          } else if (status.code() == util::StatusCode::kResourceExhausted) {
            ++tally.backpressure;
          } else if (status.code() == util::StatusCode::kDeadlineExceeded &&
                     status.message().find("on arrival") !=
                         std::string::npos) {
            ++tally.dead_on_arrival;
          } else {
            ++tally.leaks;
            std::fprintf(stderr, "overload contract violation: %s\n",
                         status.ToString().c_str());
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = timer.ElapsedSeconds();
    injector.Reset();

    SessionTally totals;
    std::vector<double> latencies;
    latencies.reserve(total_requests);
    for (const SessionTally& tally : tallies) {
      latencies.insert(latencies.end(), tally.latencies.begin(),
                       tally.latencies.end());
      totals.tier0 += tally.tier0;
      totals.degraded_answers += tally.degraded_answers;
      totals.typed_degraded += tally.typed_degraded;
      totals.backpressure += tally.backpressure;
      totals.dead_on_arrival += tally.dead_on_arrival;
      totals.leaks += tally.leaks;
      totals.error_estimate_sum += tally.error_estimate_sum;
      totals.error_estimates += tally.error_estimates;
    }
    if (totals.leaks > 0) {
      std::fprintf(stderr,
                   "%zu raw deadline/cancellation status(es) escaped "
                   "ServeEngine::Answer under overload\n",
                   totals.leaks);
      return 1;
    }
    std::sort(latencies.begin(), latencies.end());
    const auto percentile = [&latencies](double p) {
      if (latencies.empty()) return 0.0;
      const size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(p * static_cast<double>(latencies.size())));
      return latencies[idx];
    };
    const double p50 = percentile(0.50);
    const double p99 = percentile(0.99);
    const double total = static_cast<double>(total_requests);
    const double qps = wall > 0 ? total / wall : 0.0;
    const double degraded_ratio =
        (total - static_cast<double>(totals.tier0)) / total;
    const double mean_error_estimate =
        totals.error_estimates > 0
            ? totals.error_estimate_sum /
                  static_cast<double>(totals.error_estimates)
            : 0.0;

    PrintRow({"overload", "QPS", "p50", "p99", "degraded"},
             {10, 12, 12, 12, 10});
    PrintRow({util::Format("%zux%zu", sessions, per_session), Fmt(qps, 1),
              Fmt(p50 * 1e3, 3) + " ms", Fmt(p99 * 1e3, 3) + " ms",
              Fmt(degraded_ratio, 3)},
             {10, 12, 12, 12, 10});

    BenchRecord record;
    record.name = "serve_overload/4x";
    record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
    record.params.emplace_back("sessions", std::to_string(sessions));
    record.params.emplace_back("deadline_ms", Fmt(deadline_seconds * 1e3, 2));
    record.params.emplace_back("tier0", std::to_string(totals.tier0));
    record.params.emplace_back("degraded_answers",
                               std::to_string(totals.degraded_answers));
    record.params.emplace_back("typed_degraded",
                               std::to_string(totals.typed_degraded));
    record.params.emplace_back("backpressure",
                               std::to_string(totals.backpressure));
    record.params.emplace_back("dead_on_arrival",
                               std::to_string(totals.dead_on_arrival));
    record.wall_seconds = p50;
    record.rows_per_sec = qps;
    record.error = mean_error_estimate;
    record.p99_seconds = p99;
    record.degraded_ratio = degraded_ratio;
    writer.Add(std::move(record));
  }

  // --- Shared-scan batching: overlapping 64-session workload. -----------
  // Many sessions issue predicate variants over the same tables; the
  // batched engine gathers them into shared-scan batches (one scan pass
  // per table per batch, canonical duplicates deduplicated) while the
  // unbatched engine executes each request alone. The comparison runs
  // with the cache disabled so the gain measures scan sharing, not
  // caching — on a single core the speedup comes entirely from doing
  // less work, not from parallelism. p99 at 8 vs 64 sessions records the
  // sublinear latency growth the gather window buys under contention.
  {
    std::vector<sql::SelectStatement> overlap;
    std::vector<std::string> overlap_sql;
    for (int year : {1990, 2000}) {
      overlap_sql.push_back(util::Format(
          "SELECT t.name, ci.role FROM title t, cast_info ci "
          "WHERE ci.movie_id = t.id AND t.production_year >= %d",
          year));
    }
    for (int rating : {6, 8}) {
      overlap_sql.push_back(util::Format(
          "SELECT t.name, ci.role FROM title t, cast_info ci "
          "WHERE ci.movie_id = t.id AND t.rating > %d",
          rating));
    }
    for (int year : {1960, 1980, 2000, 2005}) {
      overlap_sql.push_back(util::Format(
          "SELECT t.name FROM title t WHERE t.production_year >= %d", year));
    }
    overlap_sql.push_back(
        "SELECT p.name FROM person p WHERE p.birth_year > 1970");
    for (const std::string& sql : overlap_sql) {
      auto parsed = sql::Parse(sql);
      if (!parsed.ok()) {
        std::fprintf(stderr, "overlap query parse failed: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      overlap.push_back(std::move(parsed).value());
    }

    const size_t batch_per_session = RequestsPerSession();
    struct TimedRun {
      double wall = 0.0;
      std::vector<double> latencies;
    };
    const auto run_timed = [&overlap, batch_per_session](
                               serve::ServeEngine* engine, size_t sessions) {
      TimedRun run;
      std::vector<std::vector<double>> per_session(sessions);
      util::Stopwatch timer;
      std::vector<std::thread> threads;
      threads.reserve(sessions);
      for (size_t s = 0; s < sessions; ++s) {
        threads.emplace_back([engine, &overlap, &per_session, s,
                              batch_per_session] {
          per_session[s].reserve(batch_per_session);
          for (size_t i = 0; i < batch_per_session; ++i) {
            util::Stopwatch request_timer;
            auto result =
                engine->Answer(overlap[(s + i) % overlap.size()]);
            per_session[s].push_back(request_timer.ElapsedSeconds());
            if (!result.ok()) {
              std::fprintf(stderr, "batched serve error: %s\n",
                           result.status().ToString().c_str());
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      run.wall = timer.ElapsedSeconds();
      for (std::vector<double>& lat : per_session) {
        run.latencies.insert(run.latencies.end(), lat.begin(), lat.end());
      }
      std::sort(run.latencies.begin(), run.latencies.end());
      return run;
    };
    const auto p99_of = [](const TimedRun& run) {
      if (run.latencies.empty()) return 0.0;
      const size_t idx = std::min(
          run.latencies.size() - 1,
          static_cast<size_t>(0.99 *
                              static_cast<double>(run.latencies.size())));
      return run.latencies[idx];
    };
    const auto qps_of = [batch_per_session](const TimedRun& run,
                                            size_t sessions) {
      const double total = static_cast<double>(sessions) *
                           static_cast<double>(batch_per_session);
      return run.wall > 0 ? total / run.wall : 0.0;
    };

    serve::ServeOptions unbatched = serve_options;
    unbatched.cache_bytes = 0;
    unbatched.queue_capacity = 128;  // 64 sessions all queue behind 4 slots
    serve::ServeOptions batched = unbatched;
    batched.batch_window_ms = 2.0;
    batched.batch_max_queries = 16;

    double qps_unbatched_64 = 0.0;
    {
      serve::ServeEngine engine(&model, unbatched);
      qps_unbatched_64 = qps_of(run_timed(&engine, 64), 64);
    }
    double p99_batched_8 = 0.0;
    {
      serve::ServeEngine engine(&model, batched);
      const TimedRun run = run_timed(&engine, 8);
      p99_batched_8 = p99_of(run);

      BenchRecord record;
      record.name = "serve_batch/8";
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.params.emplace_back("sessions", "8");
      record.wall_seconds = run.wall / (8.0 * batch_per_session);
      record.rows_per_sec = qps_of(run, 8);
      record.p99_seconds = p99_batched_8;
      writer.Add(std::move(record));
    }
    {
      serve::ServeEngine engine(&model, batched);
      const TimedRun run = run_timed(&engine, 64);
      const double qps = qps_of(run, 64);
      const double p99 = p99_of(run);
      const serve::ServeEngine::Stats stats = engine.stats();
      const double mean_batch =
          stats.batches_formed > 0
              ? static_cast<double>(stats.batch_members) /
                    static_cast<double>(stats.batches_formed)
              : 0.0;
      const double gain =
          qps_unbatched_64 > 0 ? qps / qps_unbatched_64 : 0.0;
      // 8x the sessions at this much p99 growth (8x = linear).
      const double p99_growth =
          p99_batched_8 > 0 ? p99 / p99_batched_8 : 0.0;

      PrintRow({"batched", "sessions", "QPS", "gain", "p99", "batch"},
               {10, 10, 12, 8, 12, 8});
      PrintRow({"", "64", Fmt(qps, 1), Fmt(gain, 2) + "x",
                Fmt(p99 * 1e3, 3) + " ms", Fmt(mean_batch, 1)},
               {10, 10, 12, 8, 12, 8});

      BenchRecord record;
      record.name = "serve_batch/64";
      record.params.emplace_back("bench_scale", std::to_string(BenchScale()));
      record.params.emplace_back("sessions", "64");
      record.params.emplace_back("qps_gain_vs_unbatched", Fmt(gain, 2));
      record.params.emplace_back("qps_unbatched", Fmt(qps_unbatched_64, 1));
      record.params.emplace_back("batches_formed",
                                 std::to_string(stats.batches_formed));
      record.params.emplace_back("mean_batch_size", Fmt(mean_batch, 2));
      record.params.emplace_back("shared_scan_saved",
                                 std::to_string(stats.shared_scan_saved));
      record.params.emplace_back("queue_depth",
                                 std::to_string(stats.queue_depth));
      record.params.emplace_back("p99_growth_8_to_64", Fmt(p99_growth, 2));
      record.wall_seconds = run.wall / (64.0 * batch_per_session);
      record.rows_per_sec = qps;
      record.p99_seconds = p99;
      writer.Add(std::move(record));
    }
  }

  if (!writer.Flush()) return 1;
  return 0;
}
