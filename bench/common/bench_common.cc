#include "common/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sql/binder.h"
#include "util/stopwatch.h"

namespace asqp {
namespace bench {

int BenchScale() {
  const char* env = std::getenv("ASQP_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int scale = std::atoi(env);
  if (scale < 0) return 0;
  if (scale > 2) return 2;
  return scale;
}

ScaledSetup SetupForScale(int scale) {
  ScaledSetup setup;
  switch (scale) {
    case 0:
      setup.data_scale = 0.02;
      setup.workload_size = 12;
      setup.k = 150;
      setup.frame_size = 25;
      setup.trainer_iterations = 6;
      setup.baseline_deadline_s = 1.0;
      setup.aggregate_queries = 30;
      break;
    case 2:
      setup.data_scale = 0.5;
      setup.workload_size = 60;
      setup.k = 1000;
      setup.frame_size = 50;
      setup.trainer_iterations = 40;
      setup.baseline_deadline_s = 20.0;
      setup.aggregate_queries = 200;
      break;
    default:
      break;  // scale 1 == struct defaults
  }
  return setup;
}

data::DatasetBundle LoadDataset(const std::string& name,
                                const ScaledSetup& setup) {
  data::DatasetOptions options;
  options.scale = setup.data_scale;
  options.workload_size = setup.workload_size;
  options.seed = setup.seed;
  if (name == "imdb") return data::MakeImdbJob(options);
  if (name == "mas") {
    // MAS's base sizes are ~3x smaller than IMDB's; scale up so the
    // budget-to-data ratio (what separates the selection strategies)
    // stays comparable across datasets.
    options.scale = setup.data_scale * 2.5;
    return data::MakeMas(options);
  }
  return data::MakeFlights(options);
}

core::AsqpConfig MakeAsqpConfig(const ScaledSetup& setup, bool light) {
  core::AsqpConfig config = light ? core::AsqpConfig::Light()
                                  : core::AsqpConfig{};
  config.k = setup.k;
  config.frame_size = setup.frame_size;
  config.trainer.iterations =
      light ? std::max<size_t>(4, setup.trainer_iterations / 2)
            : setup.trainer_iterations;
  config.trainer.num_workers = 2;
  config.trainer.learning_rate =
      light ? 5e-3 : 2e-3;  // scaled runs are short; see Fig. 11 sweep
  config.seed = setup.seed;
  return config;
}

size_t BenchExecThreads() {
  const char* env = std::getenv("ASQP_BENCH_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(hw == 0 ? 1 : hw, 8);
}

metric::Workload FilterNonEmpty(const storage::Database& db,
                                const metric::Workload& workload) {
  // Harness setup used to re-execute every workload query sequentially in
  // each bench binary; it now runs through the morsel-parallel engine so
  // bench wall-times measure the system under test, not the harness.
  exec::ExecOptions options;
  options.num_threads = BenchExecThreads();
  exec::QueryEngine engine(options);
  storage::DatabaseView view(&db);
  metric::Workload out;
  for (const auto& wq : workload.queries()) {
    auto bound = sql::Bind(wq.stmt, db);
    if (!bound.ok()) continue;
    auto rs = engine.Execute(bound.value(), view);
    if (rs.ok() && rs.value().num_rows() > 0) {
      out.Add(wq.stmt.Clone(), wq.weight);
    }
  }
  out.NormalizeWeights();
  return out;
}

SubsetEval EvaluateSubset(const storage::Database& db,
                          const metric::Workload& workload,
                          const storage::ApproximationSet& subset,
                          int frame_size) {
  SubsetEval eval;
  metric::ScoreEvaluator evaluator(&db,
                                   metric::ScoreOptions{.frame_size = frame_size});
  eval.score = evaluator.Score(workload, subset).ValueOr(0.0);

  // QueryAvg: mean latency of 10 workload queries over the subset.
  exec::QueryEngine engine;
  storage::DatabaseView view(&db, &subset);
  util::Stopwatch watch;
  size_t executed = 0;
  for (size_t i = 0; i < workload.size() && executed < 10; ++i) {
    auto bound = sql::Bind(workload.query(i).stmt, db);
    if (!bound.ok()) continue;
    if (engine.Execute(bound.value(), view).ok()) ++executed;
  }
  eval.query_avg_seconds =
      executed == 0 ? 0.0 : watch.ElapsedSeconds() / static_cast<double>(executed);
  return eval;
}

AsqpRun RunAsqp(const data::DatasetBundle& bundle,
                const metric::Workload& train, const metric::Workload& test,
                const core::AsqpConfig& config) {
  AsqpRun run;
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*bundle.db, train);
  if (!report.ok()) {
    std::fprintf(stderr, "ASQP training failed: %s\n",
                 report.status().ToString().c_str());
    return run;
  }
  run.setup_seconds = report->setup_seconds;
  run.eval = EvaluateSubset(*bundle.db, test,
                            report->model->approximation_set(),
                            config.frame_size);
  run.model = std::move(report->model);
  return run;
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-*s", width, cells[i].c_str());
    line += buf;
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

void PrintHeader(const std::string& exhibit, const std::string& description) {
  std::printf("\n=== %s ===\n%s\n(scale=%d; set ASQP_BENCH_SCALE=0|1|2)\n\n",
              exhibit.c_str(), description.c_str(), BenchScale());
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace bench
}  // namespace asqp
