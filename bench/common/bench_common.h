// Shared harness for the paper-reproduction benchmarks: scale control,
// dataset construction, ASQP/baseline configuration, subset evaluation,
// and table-formatted reporting. One bench binary per paper exhibit (see
// DESIGN.md's experiment index).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"
#include "metric/workload.h"
#include "storage/database.h"

namespace asqp {
namespace bench {

/// Benchmark scale, set via the ASQP_BENCH_SCALE environment variable:
/// 0 = smoke (seconds), 1 = default (minutes total), 2 = paper-shaped.
int BenchScale();

/// Knobs derived from the scale.
struct ScaledSetup {
  double data_scale = 0.08;
  size_t workload_size = 30;
  size_t k = 400;
  int frame_size = 25;
  size_t trainer_iterations = 18;
  double baseline_deadline_s = 3.0;
  size_t aggregate_queries = 60;
  uint64_t seed = 42;
};

ScaledSetup SetupForScale(int scale);

/// Build one of the named dataset bundles ("imdb", "mas", "flights") at
/// the given setup's scale.
data::DatasetBundle LoadDataset(const std::string& name,
                                const ScaledSetup& setup);

/// Default ASQP configuration matched to the setup (light = ASQP-Light).
core::AsqpConfig MakeAsqpConfig(const ScaledSetup& setup, bool light = false);

/// Execution threads used by harness setup work (FilterNonEmpty):
/// min(hardware_concurrency, 8), overridable via ASQP_BENCH_THREADS.
size_t BenchExecThreads();

/// Drop workload queries whose full-database result is empty (they score
/// 1.0 for every method and only blur the comparison) or that fail to
/// bind. Weights are re-normalized. Queries execute through the
/// morsel-parallel engine (BenchExecThreads() threads) so this setup cost
/// does not dominate bench wall-times; the kept set is identical to a
/// sequential pass (asserted in tests/parallel_exec_test.cc).
metric::Workload FilterNonEmpty(const storage::Database& db,
                                const metric::Workload& workload);

/// Score + average per-query latency of answering 10 workload queries
/// over the subset.
struct SubsetEval {
  double score = 0.0;
  double query_avg_seconds = 0.0;
};
SubsetEval EvaluateSubset(const storage::Database& db,
                          const metric::Workload& workload,
                          const storage::ApproximationSet& subset,
                          int frame_size);

/// Train ASQP-RL and evaluate it on `test`; returns (eval, setup seconds).
struct AsqpRun {
  SubsetEval eval;
  double setup_seconds = 0.0;
  std::unique_ptr<core::AsqpModel> model;
};
AsqpRun RunAsqp(const data::DatasetBundle& bundle,
                const metric::Workload& train, const metric::Workload& test,
                const core::AsqpConfig& config);

/// Print a row of a fixed-width table.
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/// Print a section header for one paper exhibit.
void PrintHeader(const std::string& exhibit, const std::string& description);

/// Format a double with the given precision.
std::string Fmt(double value, int precision = 3);

}  // namespace bench
}  // namespace asqp
