#include "common/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace asqp {
namespace bench {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

BenchJsonWriter BenchJsonWriter::FromArgs(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const char* arg = argv[r];
    if (std::strcmp(arg, "--json") == 0 && r + 1 < *argc) {
      path = argv[++r];
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      path = arg + 7;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (path.empty()) {
    const char* env = std::getenv("ASQP_BENCH_JSON");
    if (env != nullptr) path = env;
  }
  return BenchJsonWriter(path);
}

void BenchJsonWriter::Add(BenchRecord record) {
  if (!enabled()) return;
  records_.push_back(std::move(record));
}

std::string BenchJsonWriter::ToJson() const {
  // Built with chained += (not operator+ on temporaries): GCC 12's -O2
  // -Werror=restrict false-positives on `const char* + std::string&&`.
  std::string out = "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out += "  {\"name\": \"";
    out += JsonEscape(r.name);
    out += "\", \"params\": {";
    for (size_t p = 0; p < r.params.size(); ++p) {
      if (p > 0) out += ", ";
      out += '"';
      out += JsonEscape(r.params[p].first);
      out += "\": \"";
      out += JsonEscape(r.params[p].second);
      out += '"';
    }
    out += "}, \"wall_seconds\": ";
    out += FmtDouble(r.wall_seconds);
    out += ", \"rows_per_sec\": ";
    out += FmtDouble(r.rows_per_sec);
    out += ", \"score\": ";
    out += FmtDouble(r.score);
    out += ", \"error\": ";
    out += FmtDouble(r.error);
    if (r.p99_seconds != 0.0) {
      out += ", \"p99_seconds\": ";
      out += FmtDouble(r.p99_seconds);
    }
    if (r.degraded_ratio != 0.0) {
      out += ", \"degraded_ratio\": ";
      out += FmtDouble(r.degraded_ratio);
    }
    out += '}';
    if (i + 1 < records_.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

bool BenchJsonWriter::Flush() const {
  if (!enabled()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                 path_.c_str());
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    std::fprintf(stderr, "bench_json: short write to %s\n", path_.c_str());
    return false;
  }
  return true;
}

}  // namespace bench
}  // namespace asqp
