// Machine-readable benchmark output: every bench binary can emit its
// measurements as a JSON array of records so CI (tools/bench_compare) can
// diff runs against a checked-in baseline instead of eyeballing tables.
//
// Record schema (documented in DESIGN.md, "Benchmark JSON schema"):
//   {
//     "name":         unique benchmark id within the file,
//     "params":       {string: string} free-form run parameters,
//     "wall_seconds": real seconds per iteration (lower is better),
//     "rows_per_sec": throughput, 0 when not applicable,
//     "score":        Eq. 1 quality metric, 0 when not applicable,
//     "error":        approximation error / quality loss, 0 when exact or
//                     not applicable
//   }
// Optional keys, emitted only when nonzero (so files from older emitters
// and readers stay mutually compatible):
//   {
//     "p99_seconds":    tail latency per request (overload scenarios),
//     "degraded_ratio": fraction of requests answered below tier 0
//                       (learned fallback, shed, or typed degradation)
//   }
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace asqp {
namespace bench {

/// \brief One benchmark measurement.
struct BenchRecord {
  std::string name;
  /// Free-form run parameters (scale, dataset, thread count, ...). Kept as
  /// an ordered vector so the serialized output is deterministic.
  std::vector<std::pair<std::string, std::string>> params;
  double wall_seconds = 0.0;
  double rows_per_sec = 0.0;
  double score = 0.0;
  /// Approximation error (e.g. relative aggregate error, score loss vs a
  /// reference); 0 when the measurement is exact or has no error notion.
  double error = 0.0;
  /// Tail latency (p99 seconds per request). Optional: serialized only
  /// when nonzero, so records without a tail-latency notion keep the
  /// original four-field schema byte-for-byte.
  double p99_seconds = 0.0;
  /// Fraction of requests not answered from tier 0 (learned fallback,
  /// load shed, or typed degradation). Optional, emitted only when
  /// nonzero.
  double degraded_ratio = 0.0;
};

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string JsonEscape(const std::string& s);

/// \brief Accumulates BenchRecords and writes them as a JSON array.
///
/// The output path comes from `--json <path>` on the command line or the
/// ASQP_BENCH_JSON environment variable; with neither, the writer is
/// disabled and Add/Flush are cheap no-ops, so bench binaries can call
/// them unconditionally.
class BenchJsonWriter {
 public:
  /// Parse `--json <path>` (or `--json=<path>`) out of (argc, argv); the
  /// consumed arguments are removed so downstream flag parsers
  /// (google-benchmark's Initialize) never see them. Falls back to the
  /// ASQP_BENCH_JSON environment variable when the flag is absent.
  static BenchJsonWriter FromArgs(int* argc, char** argv);

  explicit BenchJsonWriter(std::string path = "") : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void Add(BenchRecord record);
  const std::vector<BenchRecord>& records() const { return records_; }

  /// Serialize the records (pretty-printed, one record per line block).
  std::string ToJson() const;

  /// Write ToJson() to the configured path. Returns false and reports on
  /// stderr when the file cannot be written; true (no-op) when disabled.
  bool Flush() const;

 private:
  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace bench
}  // namespace asqp
