// Interactive demo (this is the system the demo paper presents): load a
// dataset, train an approximation set, then explore with SQL. Every query
// goes through the mediator; the prompt shows whether the answer came from
// the approximation set or the full database, and fine-tuning can be
// triggered when interests drift.
//
//   $ ./example_demo_cli [imdb|mas|flights]
//
// Commands:
//   <SQL>            run a query through the mediator
//   \full <SQL>      run a query on the full database (ground truth)
//   \train [k]       (re)train the approximation set, optionally set k
//   \finetune        fine-tune on the drifted queries observed so far
//   \save <path>     save the approximation set
//   \deadline <s>    per-query deadline for the approximate path (0 = off)
//   \stats           database / model statistics
//   \quit            exit
#include <cstdio>
#include <iostream>
#include <string>

#include "core/trainer.h"
#include "data/dataset.h"
#include "io/io.h"
#include "metric/score.h"
#include "sql/binder.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace asqp;

namespace {

void PrintResult(const exec::ResultSet& rs, size_t max_rows = 15) {
  std::string header;
  for (const auto& name : rs.column_names()) {
    header += name;
    header += "  ";
  }
  std::printf("%s\n", header.c_str());
  for (size_t r = 0; r < std::min(rs.num_rows(), max_rows); ++r) {
    std::string line;
    for (const auto& v : rs.row(r)) {
      line += v.ToString();
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }
  if (rs.num_rows() > max_rows) {
    std::printf("... (%zu rows total)\n", rs.num_rows());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "imdb";
  data::DatasetOptions options;
  options.scale = 0.1;
  options.workload_size = 30;
  data::DatasetBundle bundle;
  if (dataset == "mas") bundle = data::MakeMas(options);
  else if (dataset == "flights") bundle = data::MakeFlights(options);
  else bundle = data::MakeImdbJob(options);

  std::printf("ASQP-RL demo — dataset '%s': %zu tuples across %zu tables\n",
              bundle.name.c_str(), bundle.db->TotalRows(),
              bundle.db->TableNames().size());
  for (const auto& name : bundle.db->TableNames()) {
    auto t = bundle.db->GetTable(name).value();
    std::printf("  %-16s %zu rows, %zu columns\n", name.c_str(),
                t->num_rows(), t->num_columns());
  }
  std::printf("type \\train to build an approximation set, then enter SQL.\n");

  core::AsqpConfig config;
  config.k = 600;
  config.frame_size = 50;
  config.trainer.iterations = 15;
  std::unique_ptr<core::AsqpModel> model;
  exec::QueryEngine engine;

  std::string line;
  while (std::printf("asqp> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::string input(util::Trim(line));
    if (input.empty()) continue;

    if (input == "\\quit" || input == "\\q") break;

    if (input == "\\stats") {
      std::printf("k=%zu F=%d, model %s", config.k, config.frame_size,
                  model ? "trained" : "not trained");
      if (model) {
        std::printf(", |S|=%zu tuples, drifted queries=%zu%s",
                    model->approximation_set().TotalTuples(),
                    model->drifted_query_count(),
                    model->NeedsFineTuning() ? " [fine-tune recommended]" : "");
      }
      std::printf("\n");
      continue;
    }

    if (util::StartsWith(input, "\\train")) {
      const std::string arg(util::Trim(input.substr(6)));
      if (!arg.empty()) config.k = std::strtoull(arg.c_str(), nullptr, 10);
      std::printf("training (k=%zu, %zu workload queries)...\n", config.k,
                  bundle.workload.size());
      util::Stopwatch watch;
      core::AsqpTrainer trainer(config);
      auto report = trainer.Train(*bundle.db, bundle.workload);
      if (!report.ok()) {
        std::printf("training failed: %s\n",
                    report.status().ToString().c_str());
        continue;
      }
      model = std::move(report->model);
      metric::ScoreEvaluator evaluator(
          bundle.db.get(),
          metric::ScoreOptions{.frame_size = config.frame_size});
      std::printf("done in %.1fs; |S|=%zu tuples; workload score %.3f\n",
                  watch.ElapsedSeconds(),
                  model->approximation_set().TotalTuples(),
                  evaluator.Score(bundle.workload, model->approximation_set())
                      .ValueOr(0.0));
      continue;
    }

    if (input == "\\finetune") {
      if (!model) {
        std::printf("train first (\\train)\n");
        continue;
      }
      util::Stopwatch watch;
      auto st = model->FineTune(metric::Workload{});
      std::printf("%s (%.1fs)\n",
                  st.ok() ? "fine-tuned on observed drifted queries"
                          : st.ToString().c_str(),
                  watch.ElapsedSeconds());
      continue;
    }

    if (util::StartsWith(input, "\\deadline")) {
      const std::string arg(util::Trim(input.substr(9)));
      if (arg.empty()) {
        std::printf("usage: \\deadline <seconds> (0 disables)\n");
        continue;
      }
      config.answer_deadline_seconds = std::strtod(arg.c_str(), nullptr);
      if (model) {
        model->mutable_config().answer_deadline_seconds =
            config.answer_deadline_seconds;
      }
      std::printf("approximate-path deadline: %s\n",
                  config.answer_deadline_seconds > 0
                      ? (std::to_string(config.answer_deadline_seconds) + "s")
                            .c_str()
                      : "off");
      continue;
    }

    if (util::StartsWith(input, "\\save")) {
      if (!model) {
        std::printf("train first (\\train)\n");
        continue;
      }
      const std::string path(util::Trim(input.substr(5)));
      auto st = io::SaveApproximationSet(model->approximation_set(),
                                         path.empty() ? "asqp_set.txt" : path);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }

    if (util::StartsWith(input, "\\full")) {
      const std::string sql(util::Trim(input.substr(5)));
      util::Stopwatch watch;
      storage::DatabaseView view(bundle.db.get());
      auto rs = engine.ExecuteSql(sql, view);
      if (!rs.ok()) {
        std::printf("error: %s\n", rs.status().ToString().c_str());
        continue;
      }
      std::printf("[full database, %.2fms]\n",
                  watch.ElapsedSeconds() * 1e3);
      PrintResult(rs.value());
      continue;
    }

    // Default: a query through the mediator (or the full DB pre-training).
    if (!model) {
      storage::DatabaseView view(bundle.db.get());
      auto rs = engine.ExecuteSql(input, view);
      if (!rs.ok()) std::printf("error: %s\n", rs.status().ToString().c_str());
      else PrintResult(rs.value());
      continue;
    }
    util::Stopwatch watch;
    auto answer = model->AnswerSql(input);
    if (!answer.ok()) {
      std::printf("error: %s\n", answer.status().ToString().c_str());
      continue;
    }
    std::printf("[%s, answerability %.2f, %.2fms]\n",
                answer->used_approximation ? "approximation set"
                                           : "full database",
                answer->answerability, watch.ElapsedSeconds() * 1e3);
    if (answer->fell_back) {
      std::printf("(approximation path abandoned: %s)\n",
                  answer->fallback_reason.c_str());
    }
    PrintResult(answer->result);
    if (model->NeedsFineTuning()) {
      std::printf("(interest drift detected — \\finetune to adapt)\n");
    }
  }
  return 0;
}
