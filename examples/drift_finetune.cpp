// Interest drift (C5, Section 4.4): a MAS exploration session whose focus
// shifts from database venues to ML venues mid-session. The estimator
// flags the out-of-distribution queries, the drift trigger fires, and
// fine-tuning re-aligns the approximation set.
//
//   $ ./example_drift_finetune
#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"

using namespace asqp;

int main() {
  data::DatasetOptions data_options;
  data_options.scale = 0.15;
  data_options.seed = 3;
  const data::DatasetBundle mas = data::MakeMas(data_options);

  // Phase 1 interest: database publications.
  auto db_interest = metric::Workload::FromSql({
      "SELECT p.title, p.citations FROM publication p, venue v WHERE "
      "p.venue_id = v.id AND v.area = 'databases' AND p.citations > 20",
      "SELECT p.title, p.year FROM publication p, venue v WHERE "
      "p.venue_id = v.id AND v.area = 'databases' AND p.year >= 2015",
      "SELECT a.name, p.title FROM author a, writes w, publication p WHERE "
      "w.author_id = a.id AND w.pub_id = p.id AND p.citations > 50",
      "SELECT p.title FROM publication p, venue v WHERE p.venue_id = v.id "
      "AND v.area = 'databases' AND v.type = 'conference'",
  });
  // Phase 2 interest (the drift): ML venues and prolific authors.
  auto ml_interest = metric::Workload::FromSql({
      "SELECT p.title, p.citations FROM publication p, venue v WHERE "
      "p.venue_id = v.id AND v.area = 'ml' AND p.citations > 10",
      "SELECT a.name, a.h_index FROM author a WHERE a.h_index > 40",
      "SELECT p.title FROM publication p, venue v WHERE p.venue_id = v.id "
      "AND v.area = 'ml' AND p.year >= 2018",
      "SELECT a.name FROM author a, writes w WHERE w.author_id = a.id AND "
      "a.h_index > 30 AND w.author_position = 1",
  });
  if (!db_interest.ok() || !ml_interest.ok()) return 1;

  core::AsqpConfig config;
  config.k = 500;
  config.frame_size = 25;
  config.trainer.iterations = 12;
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*mas.db, *db_interest);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;

  metric::ScoreEvaluator evaluator(
      mas.db.get(), metric::ScoreOptions{.frame_size = config.frame_size});
  std::printf("trained on the 'databases' interest:\n");
  std::printf("  score on databases queries: %.3f\n",
              evaluator.Score(*db_interest, model.approximation_set())
                  .ValueOr(0.0));
  std::printf("  score on ML queries (future drift): %.3f\n\n",
              evaluator.Score(*ml_interest, model.approximation_set())
                  .ValueOr(0.0));

  // The session drifts: ML queries arrive one by one.
  for (size_t i = 0; i < ml_interest->size(); ++i) {
    auto answer = model.Answer(ml_interest->query(i).stmt);
    if (!answer.ok()) continue;
    std::printf("ML query %zu: answerability %.2f, served from %s%s\n", i,
                answer->answerability,
                answer->used_approximation ? "approximation" : "database",
                model.NeedsFineTuning() ? "  [drift trigger fired]" : "");
    if (model.NeedsFineTuning()) {
      if (model.FineTune(*ml_interest).ok()) {
        std::printf("\nfine-tuned on the drifted interest:\n");
        std::printf("  score on ML queries: %.3f\n",
                    evaluator.Score(*ml_interest, model.approximation_set())
                        .ValueOr(0.0));
        std::printf("  score on databases queries: %.3f\n",
                    evaluator.Score(*db_interest, model.approximation_set())
                        .ValueOr(0.0));
      }
      break;
    }
  }
  return 0;
}
