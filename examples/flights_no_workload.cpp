// The unknown-workload mode (Section 4.5): no query log exists, so the
// system generates a statistics-driven workload, trains on it, and then
// incrementally refines as the user contributes real queries.
//
//   $ ./example_flights_no_workload
#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"
#include "workloadgen/generator.h"

using namespace asqp;

int main() {
  data::DatasetOptions data_options;
  data_options.scale = 0.2;
  const data::DatasetBundle flights = data::MakeFlights(data_options);
  std::printf("flights database: %zu tuples, no workload given\n",
              flights.db->TotalRows());

  // The "user's actual interest": delay analysis for summer months — the
  // system has never seen these queries.
  auto user_interest = metric::Workload::FromSql({
      "SELECT f.carrier, f.dep_delay FROM flights f WHERE f.month = 7 AND "
      "f.dep_delay > 30",
      "SELECT f.origin, f.arr_delay FROM flights f WHERE f.month = 8 AND "
      "f.arr_delay > 45",
      "SELECT f.carrier, f.origin, f.dep_delay FROM flights f WHERE "
      "f.month IN (7, 8) AND f.distance > 800",
      "SELECT f.dest, f.dep_delay FROM flights f WHERE f.month = 7 AND "
      "f.day_of_week = 5",
  });
  if (!user_interest.ok()) {
    std::fprintf(stderr, "bad workload: %s\n",
                 user_interest.status().ToString().c_str());
    return 1;
  }

  core::AsqpConfig config;
  config.k = 800;
  config.frame_size = 50;
  config.trainer.iterations = 12;
  core::AsqpTrainer trainer(config);

  metric::ScoreEvaluator evaluator(
      flights.db.get(), metric::ScoreOptions{.frame_size = config.frame_size});

  // Round 0: purely generated workload.
  auto report =
      trainer.TrainWithoutWorkload(*flights.db, flights.fks,
                                   /*generated_queries=*/24);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;
  std::printf(
      "round 0 (generated queries only): score on user's interest = %.3f\n",
      evaluator.Score(*user_interest, model.approximation_set()).ValueOr(0.0));

  // Rounds 1..N: the user contributes queries; the system fine-tunes.
  metric::Workload contributed;
  for (size_t round = 0; round < user_interest->size(); ++round) {
    contributed.Add(user_interest->query(round).stmt.Clone());
    contributed.NormalizeWeights();
    if (!model.FineTune(contributed).ok()) continue;
    std::printf(
        "round %zu (+1 user query, fine-tuned):       score = %.3f\n",
        round + 1,
        evaluator.Score(*user_interest, model.approximation_set())
            .ValueOr(0.0));
  }
  return 0;
}
