// A data-exploration session over the IMDB-JOB-like dataset: compare
// answering a stream of exploratory SPJ queries (a) directly on the full
// database and (b) through the ASQP-RL mediator, reporting per-query
// latency and result coverage — the scenario that motivates the paper.
//
//   $ ./example_imdb_exploration
#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"
#include "sql/binder.h"
#include "util/stopwatch.h"

using namespace asqp;

int main() {
  data::DatasetOptions data_options;
  data_options.scale = 0.1;
  data_options.workload_size = 30;
  data_options.seed = 11;
  const data::DatasetBundle imdb = data::MakeImdbJob(data_options);

  // Split the workload: train on 70%, explore with the held-out 30%.
  util::Rng rng(1);
  auto [train, test] = imdb.workload.TrainTestSplit(0.7, &rng);
  std::printf("training on %zu queries, exploring with %zu held-out ones\n",
              train.size(), test.size());

  core::AsqpConfig config;
  config.k = 600;
  config.frame_size = 50;
  config.trainer.iterations = 20;
  config.trainer.num_workers = 2;
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*imdb.db, train);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;
  std::printf("setup: %.1fs, approximation set: %zu of %zu tuples (%.2f%%)\n\n",
              report->setup_seconds, model.approximation_set().TotalTuples(),
              imdb.db->TotalRows(),
              100.0 * model.approximation_set().TotalTuples() /
                  imdb.db->TotalRows());

  exec::QueryEngine engine;
  storage::DatabaseView full_view(imdb.db.get());
  std::printf("%-4s %-10s %-10s %-9s %-9s %s\n", "q#", "full(ms)", "apx(ms)",
              "full-rows", "apx-rows", "served-from");
  double full_total = 0, approx_total = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& stmt = test.query(i).stmt;
    util::Stopwatch full_watch;
    auto bound = sql::Bind(stmt, *imdb.db);
    if (!bound.ok()) continue;
    auto truth = engine.Execute(bound.value(), full_view);
    const double full_ms = full_watch.ElapsedSeconds() * 1e3;
    if (!truth.ok()) continue;

    util::Stopwatch approx_watch;
    auto answer = model.Answer(stmt);
    const double approx_ms = approx_watch.ElapsedSeconds() * 1e3;
    if (!answer.ok()) continue;

    full_total += full_ms;
    approx_total += approx_ms;
    std::printf("%-4zu %-10.2f %-10.2f %-9zu %-9zu %s\n", i, full_ms,
                approx_ms, truth.value().num_rows(),
                answer->result.num_rows(),
                answer->used_approximation ? "approximation" : "database");
  }
  std::printf("\ntotal: full %.1fms vs mediator %.1fms (%.1fx)\n", full_total,
              approx_total,
              approx_total > 0 ? full_total / approx_total : 0.0);

  metric::ScoreEvaluator evaluator(
      imdb.db.get(), metric::ScoreOptions{.frame_size = config.frame_size});
  std::printf("held-out workload score: %.3f\n",
              evaluator.Score(test, model.approximation_set()).ValueOr(0.0));
  return 0;
}
