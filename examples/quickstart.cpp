// Quickstart: build a small database, write a workload, train ASQP-RL,
// and answer exploratory queries from the learned approximation set.
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"

using namespace asqp;

int main() {
  // 1. A database + SPJ workload. Here: the synthetic IMDB-JOB bundle
  //    (use your own storage::Database + metric::Workload in real code).
  data::DatasetOptions data_options;
  data_options.scale = 0.05;
  data_options.workload_size = 20;
  const data::DatasetBundle imdb = data::MakeImdbJob(data_options);
  std::printf("database: %zu tuples across %zu tables, %zu workload queries\n",
              imdb.db->TotalRows(), imdb.db->TableNames().size(),
              imdb.workload.size());

  // 2. Configure and train. k bounds the approximation set; F is the
  //    number of result rows a user actually looks at.
  core::AsqpConfig config;
  config.k = 400;
  config.frame_size = 25;
  config.trainer.iterations = 15;
  config.trainer.num_workers = 2;
  core::AsqpTrainer trainer(config);
  auto report = trainer.Train(*imdb.db, imdb.workload);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  core::AsqpModel& model = *report->model;
  std::printf("trained in %.1fs over %zu episodes; |S| = %zu tuples\n",
              report->setup_seconds, report->episodes,
              model.approximation_set().TotalTuples());

  // 3. Quality of the approximation set under the paper's metric (Eq. 1).
  metric::ScoreEvaluator evaluator(
      imdb.db.get(), metric::ScoreOptions{.frame_size = config.frame_size});
  auto score = evaluator.Score(imdb.workload, model.approximation_set());
  std::printf("workload score: %.3f\n", score.ValueOr(0.0));

  // 4. Answer queries through the mediator: the estimator decides whether
  //    the approximation set suffices or the full database is needed.
  const char* queries[] = {
      "SELECT t.name, t.production_year FROM title t WHERE "
      "t.production_year >= 2010 AND t.rating >= 7 LIMIT 20",
      "SELECT t.name, c.name FROM title t, movie_companies mc, company c "
      "WHERE mc.movie_id = t.id AND mc.company_id = c.id AND "
      "c.country = 'us' LIMIT 20",
  };
  for (const char* sql : queries) {
    auto answer = model.AnswerSql(sql);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s\n  -> %zu rows, served from %s (answerability %.2f)\n",
                sql, answer->result.num_rows(),
                answer->used_approximation ? "approximation set"
                                           : "full database",
                answer->answerability);
    for (size_t r = 0; r < std::min<size_t>(3, answer->result.num_rows());
         ++r) {
      std::string line = "     ";
      for (const auto& v : answer->result.row(r)) {
        line += v.ToString();
        line += "  ";
      }
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}
