#include "aqp/learned_fallback.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "aqp/spn.h"
#include "exec/executor.h"
#include "metric/relative_error.h"
#include "util/random.h"
#include "util/string_util.h"

namespace asqp {
namespace aqp {

namespace {

using util::Result;
using util::Status;

/// Per-column view of a query's conjunctive predicates: numeric intervals
/// intersected per column, categorical predicates kept per-conjunct.
struct MergedPredicates {
  std::map<int, std::pair<double, double>> intervals;   // col -> [lo, hi]
  std::vector<const ColumnPredicate*> categorical;      // original conjuncts
};

MergedPredicates Merge(const std::vector<ColumnPredicate>& predicates) {
  MergedPredicates merged;
  for (const ColumnPredicate& p : predicates) {
    if (p.categories.empty()) {
      auto [it, inserted] =
          merged.intervals.emplace(p.col, std::make_pair(p.lo, p.hi));
      if (!inserted) {
        it->second.first = std::max(it->second.first, p.lo);
        it->second.second = std::min(it->second.second, p.hi);
      }
    } else {
      merged.categorical.push_back(&p);
    }
  }
  return merged;
}

/// Output column name for one select item, mirroring the executor's
/// aggregate output layout (and Spn::EstimateAggregateQuery).
std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.agg == sql::AggFunc::kNone) {
    return item.expr ? item.expr->ToSql() : "*";
  }
  return util::ToLower(sql::AggFuncName(item.agg));
}

}  // namespace

double LearnedFallback::ColumnSynopsis::Selectivity(double plo,
                                                    double phi) const {
  const double total = nulls + non_null;
  if (total <= 0.0 || counts.empty()) return 0.0;
  if (phi < plo) return 0.0;
  const double width =
      (hi - lo) <= 0.0 ? 1.0 : (hi - lo) / static_cast<double>(counts.size());
  double matching = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double bin_lo = lo + width * static_cast<double>(b);
    const double bin_hi = bin_lo + width;
    const double overlap_lo = std::max(bin_lo, plo);
    const double overlap_hi = std::min(bin_hi, phi);
    if (overlap_hi <= overlap_lo) continue;
    const double fraction =
        width <= 0.0 ? 1.0 : (overlap_hi - overlap_lo) / width;
    matching += counts[b] * std::min(1.0, fraction);
  }
  return std::min(1.0, matching / total);
}

double LearnedFallback::ColumnSynopsis::SelectivityCategorical(
    const std::set<std::string>& cats, bool negate) const {
  const double total = nulls + non_null;
  if (total <= 0.0) return 0.0;
  double matching = 0.0;
  for (size_t i = 0; i < categories.size(); ++i) {
    const bool member = cats.count(categories[i]) > 0;
    if (cats.empty() || (member != negate)) matching += counts[i];
  }
  return std::min(1.0, matching / total);
}

LearnedFallback::TableSynopsis LearnedFallback::FitTable(
    const storage::Table& table, const std::vector<uint32_t>& rows,
    const LearnedFallbackOptions& options) {
  TableSynopsis syn;
  syn.name = table.name();
  syn.full_rows = static_cast<double>(table.num_rows());
  syn.fitted_rows = static_cast<double>(rows.size());
  syn.scale = rows.empty() ? 1.0 : syn.full_rows / syn.fitted_rows;

  const size_t num_bins = std::max<size_t>(1, options.num_bins);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    ColumnSynopsis out;
    out.name = table.schema().fields()[c].name;
    if (col.type() == storage::ValueType::kString) {
      out.is_numeric = false;
      std::map<std::string, double> cat_counts;
      for (uint32_t r : rows) {
        if (col.IsNull(r)) {
          out.nulls += 1.0;
          continue;
        }
        out.non_null += 1.0;
        cat_counts[col.StringAt(r)] += 1.0;
      }
      for (auto& [value, count] : cat_counts) {
        out.categories.push_back(value);
        out.counts.push_back(count);
      }
    } else {
      out.is_numeric = true;
      double lo = 1e300, hi = -1e300;
      for (uint32_t r : rows) {
        if (col.IsNull(r)) {
          out.nulls += 1.0;
          continue;
        }
        const double v = col.NumericAt(r);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        out.total_sum += v;
        out.non_null += 1.0;
      }
      if (out.non_null <= 0.0) {
        lo = 0.0;
        hi = 1.0;
      }
      out.lo = lo;
      out.hi = hi > lo ? hi : lo + 1.0;
      out.min_value = lo;
      out.max_value = hi > lo ? hi : lo;
      out.counts.assign(num_bins, 0.0);
      out.sums.assign(num_bins, 0.0);
      for (uint32_t r : rows) {
        if (col.IsNull(r)) continue;
        const double v = col.NumericAt(r);
        size_t bin = static_cast<size_t>((v - out.lo) / (out.hi - out.lo) *
                                         static_cast<double>(num_bins));
        bin = std::min(bin, num_bins - 1);
        out.counts[bin] += 1.0;
        out.sums[bin] += v;
      }
    }
    syn.columns.push_back(std::move(out));
  }
  return syn;
}

Result<LearnedFallback> LearnedFallback::Fit(
    const storage::Database& db, const storage::ApproximationSet& set,
    const LearnedFallbackOptions& options) {
  LearnedFallback fb;
  fb.options_ = options;
  for (const std::string& name : db.TableNames()) {
    ASQP_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table,
                          db.GetTable(name));
    if (table->num_rows() == 0) continue;
    std::vector<uint32_t> rows = set.RowsFor(name);
    if (rows.empty()) {
      // No approximation-set coverage: stride-sample the full table so
      // tier 1 can still answer (the scale factor compensates).
      const size_t n = table->num_rows();
      const size_t cap = std::max<size_t>(1, options.max_fit_rows);
      const size_t stride = std::max<size_t>(1, (n + cap - 1) / cap);
      rows.reserve(n / stride + 1);
      for (size_t r = 0; r < n; r += stride) {
        rows.push_back(static_cast<uint32_t>(r));
      }
    }
    fb.tables_.emplace(name, FitTable(*table, rows, options));
  }
  if (options.calibration_queries > 0) fb.Calibrate(db);
  return fb;
}

std::string LearnedFallback::CategoryOf(const sql::SelectStatement& stmt) {
  // Priority mirrors bench_fig12's CategoryOf (later aggregates dominate)
  // extended with MIN/MAX.
  std::string op = "CNT";
  for (const sql::SelectItem& item : stmt.items) {
    switch (item.agg) {
      case sql::AggFunc::kMin:
      case sql::AggFunc::kMax:
        if (op == "CNT") op = item.agg == sql::AggFunc::kMin ? "MIN" : "MAX";
        break;
      case sql::AggFunc::kAvg:
        if (op != "SUM") op = "AVG";
        break;
      case sql::AggFunc::kSum:
        op = "SUM";
        break;
      default:
        break;
    }
  }
  return stmt.group_by.empty() ? op : "G+" + op;
}

Result<const LearnedFallback::TableSynopsis*> LearnedFallback::Classify(
    const sql::BoundQuery& query) const {
  if (query.num_tables() != 1) {
    return Status::NotImplemented("learned fallback: single-table only");
  }
  if (!query.residual.empty()) {
    return Status::NotImplemented("learned fallback: residual predicates");
  }
  const sql::SelectStatement& stmt = query.stmt;
  if (!stmt.HasAggregates()) {
    return Status::NotImplemented("learned fallback: aggregates only");
  }
  if (stmt.distinct || stmt.having != nullptr || stmt.limit >= 0 ||
      !stmt.order_by.empty()) {
    return Status::NotImplemented(
        "learned fallback: DISTINCT/HAVING/ORDER BY/LIMIT unsupported");
  }
  auto it = tables_.find(query.tables[0]->name());
  if (it == tables_.end()) {
    return Status::NotFound("learned fallback: no synopsis for table " +
                            query.tables[0]->name());
  }
  const TableSynopsis& syn = it->second;

  int group_col = -1;
  if (!stmt.group_by.empty()) {
    if (stmt.group_by.size() > 1) {
      return Status::NotImplemented("learned fallback: multi-column GROUP BY");
    }
    const sql::Expr& g = *stmt.group_by[0];
    if (g.kind != sql::ExprKind::kColumnRef || g.col_idx < 0 ||
        static_cast<size_t>(g.col_idx) >= syn.columns.size() ||
        syn.columns[static_cast<size_t>(g.col_idx)].is_numeric) {
      return Status::NotImplemented(
          "learned fallback: GROUP BY must be one categorical column");
    }
    group_col = g.col_idx;
  }

  for (const sql::SelectItem& item : stmt.items) {
    switch (item.agg) {
      case sql::AggFunc::kNone:
        if (!item.expr || item.expr->kind != sql::ExprKind::kColumnRef ||
            item.expr->col_idx != group_col) {
          return Status::NotImplemented(
              "learned fallback: non-aggregate item must be the GROUP BY "
              "column");
        }
        break;
      case sql::AggFunc::kCount:
        if (item.distinct) {
          return Status::NotImplemented(
              "learned fallback: COUNT(DISTINCT) unsupported");
        }
        break;
      case sql::AggFunc::kSum:
      case sql::AggFunc::kAvg:
      case sql::AggFunc::kMin:
      case sql::AggFunc::kMax: {
        if (!item.expr || item.expr->kind != sql::ExprKind::kColumnRef ||
            item.expr->col_idx < 0 ||
            static_cast<size_t>(item.expr->col_idx) >= syn.columns.size() ||
            !syn.columns[static_cast<size_t>(item.expr->col_idx)].is_numeric) {
          return Status::NotImplemented(
              "learned fallback: aggregate over a numeric column required");
        }
        break;
      }
      default:
        return Status::NotImplemented("learned fallback: unsupported item");
    }
  }
  return &syn;
}

bool LearnedFallback::CanAnswer(const sql::BoundQuery& query) const {
  if (!Classify(query).ok()) return false;
  return Spn::PredicatesFromQuery(query).ok();
}

double LearnedFallback::ErrorEstimateFor(
    const sql::SelectStatement& stmt) const {
  auto it = calibrated_errors_.find(CategoryOf(stmt));
  return it == calibrated_errors_.end() ? options_.default_error : it->second;
}

Result<LearnedAnswer> LearnedFallback::Answer(
    const sql::BoundQuery& query) const {
  ASQP_ASSIGN_OR_RETURN(const TableSynopsis* syn, Classify(query));
  ASQP_ASSIGN_OR_RETURN(std::vector<ColumnPredicate> predicates,
                        Spn::PredicatesFromQuery(query));
  const sql::SelectStatement& stmt = query.stmt;
  const MergedPredicates merged = Merge(predicates);

  // Per-column selectivity of `merged` plus an optional group restriction.
  const auto column_selectivity = [&](int col,
                                      const std::string* group_value,
                                      int group_col) -> double {
    const ColumnSynopsis& cs = syn->columns[static_cast<size_t>(col)];
    double sel = 1.0;
    auto it = merged.intervals.find(col);
    if (it != merged.intervals.end()) {
      sel *= cs.Selectivity(it->second.first, it->second.second);
    }
    for (const ColumnPredicate* p : merged.categorical) {
      if (p->col == col) {
        sel *= cs.SelectivityCategorical(p->categories, p->negate_categories);
      }
    }
    if (group_value != nullptr && col == group_col) {
      sel *= cs.SelectivityCategorical({*group_value}, /*negate=*/false);
    }
    return sel;
  };

  // Columns touched by any predicate or the group restriction.
  const auto touched_columns = [&](int group_col) {
    std::set<int> cols;
    for (const auto& [col, interval] : merged.intervals) cols.insert(col);
    for (const ColumnPredicate* p : merged.categorical) cols.insert(p->col);
    if (group_col >= 0) cols.insert(group_col);
    return cols;
  };

  int group_col = -1;
  if (!stmt.group_by.empty()) group_col = stmt.group_by[0]->col_idx;

  std::vector<std::string> names;
  names.reserve(stmt.items.size());
  for (const sql::SelectItem& item : stmt.items) {
    names.push_back(OutputName(item));
  }
  LearnedAnswer answer;
  answer.result = exec::ResultSet(std::move(names));
  answer.category = CategoryOf(stmt);
  answer.error_estimate = ErrorEstimateFor(stmt);

  // Group values: the group column's observed categories (one sentinel
  // "global group" when ungrouped).
  std::vector<const std::string*> groups;
  if (group_col >= 0) {
    const ColumnSynopsis& gcs = syn->columns[static_cast<size_t>(group_col)];
    groups.reserve(gcs.categories.size());
    for (const std::string& cat : gcs.categories) groups.push_back(&cat);
  } else {
    groups.push_back(nullptr);
  }

  for (const std::string* group_value : groups) {
    const std::set<int> cols = touched_columns(group_value ? group_col : -1);
    double p_all = 1.0;
    for (int col : cols) p_all *= column_selectivity(col, group_value, group_col);
    const double count_est = syn->full_rows * p_all;
    if (group_value != nullptr && count_est < 0.5) continue;  // empty group

    // SUM of `m` under the predicates: the per-bin sums restricted to m's
    // own interval, scaled by the other columns' joint selectivity
    // (independence) and the sampling fraction.
    const auto sum_estimate = [&](int m) -> double {
      const ColumnSynopsis& ms = syn->columns[static_cast<size_t>(m)];
      double mlo = -1e300, mhi = 1e300;
      auto it = merged.intervals.find(m);
      if (it != merged.intervals.end()) {
        mlo = it->second.first;
        mhi = it->second.second;
      }
      double restricted = 0.0;
      if (ms.counts.empty()) return 0.0;
      const double width = (ms.hi - ms.lo) <= 0.0
                               ? 1.0
                               : (ms.hi - ms.lo) /
                                     static_cast<double>(ms.counts.size());
      for (size_t b = 0; b < ms.sums.size(); ++b) {
        const double bin_lo = ms.lo + width * static_cast<double>(b);
        const double bin_hi = bin_lo + width;
        const double overlap_lo = std::max(bin_lo, mlo);
        const double overlap_hi = std::min(bin_hi, mhi);
        if (overlap_hi <= overlap_lo) continue;
        const double fraction =
            width <= 0.0 ? 1.0 : (overlap_hi - overlap_lo) / width;
        restricted += ms.sums[b] * std::min(1.0, fraction);
      }
      double p_others = 1.0;
      for (int col : cols) {
        if (col == m) {
          // Categorical predicates on the measure still apply; only its
          // own interval is already folded into `restricted`.
          for (const ColumnPredicate* p : merged.categorical) {
            if (p->col == col) {
              p_others *= ms.SelectivityCategorical(p->categories,
                                                    p->negate_categories);
            }
          }
          continue;
        }
        p_others *= column_selectivity(col, group_value, group_col);
      }
      return restricted * p_others * syn->scale;
    };

    // Expected matching non-null count of `m` (AVG denominator).
    const auto count_non_null = [&](int m) -> double {
      const ColumnSynopsis& ms = syn->columns[static_cast<size_t>(m)];
      const double total = ms.nulls + ms.non_null;
      const double nn_frac = total > 0.0 ? ms.non_null / total : 0.0;
      return count_est * nn_frac;
    };

    const auto extreme_estimate = [&](int m, bool want_min) -> double {
      const ColumnSynopsis& ms = syn->columns[static_cast<size_t>(m)];
      double mlo = -1e300, mhi = 1e300;
      auto it = merged.intervals.find(m);
      if (it != merged.intervals.end()) {
        mlo = it->second.first;
        mhi = it->second.second;
      }
      if (ms.counts.empty()) return 0.0;
      const double width = (ms.hi - ms.lo) <= 0.0
                               ? 1.0
                               : (ms.hi - ms.lo) /
                                     static_cast<double>(ms.counts.size());
      for (size_t step = 0; step < ms.counts.size(); ++step) {
        const size_t b = want_min ? step : ms.counts.size() - 1 - step;
        if (ms.counts[b] <= 0.0) continue;
        const double bin_lo = ms.lo + width * static_cast<double>(b);
        const double bin_hi = bin_lo + width;
        if (bin_hi < mlo || bin_lo > mhi) continue;
        return want_min ? std::max(bin_lo, mlo) : std::min(bin_hi, mhi);
      }
      return 0.0;
    };

    std::vector<storage::Value> row;
    row.reserve(stmt.items.size());
    for (const sql::SelectItem& item : stmt.items) {
      switch (item.agg) {
        case sql::AggFunc::kNone:
          if (group_value != nullptr) {
            row.emplace_back(*group_value);
          } else {
            row.emplace_back();
          }
          break;
        case sql::AggFunc::kCount:
          row.emplace_back(static_cast<int64_t>(std::llround(count_est)));
          break;
        case sql::AggFunc::kSum:
          row.emplace_back(sum_estimate(item.expr->col_idx));
          break;
        case sql::AggFunc::kAvg: {
          const double denom = count_non_null(item.expr->col_idx);
          row.emplace_back(denom > 1e-9
                               ? sum_estimate(item.expr->col_idx) / denom
                               : 0.0);
          break;
        }
        case sql::AggFunc::kMin:
          row.emplace_back(extreme_estimate(item.expr->col_idx, true));
          break;
        case sql::AggFunc::kMax:
          row.emplace_back(extreme_estimate(item.expr->col_idx, false));
          break;
        default:
          return Status::NotImplemented("learned fallback: unsupported item");
      }
    }
    answer.result.AddRow(std::move(row));
  }
  return answer;
}

void LearnedFallback::Calibrate(const storage::Database& db) {
  // Answer synthetic aggregates with both the synopsis and the real
  // executor; the mean observed relative error per operator category is
  // what ErrorEstimateFor reports at serve time.
  exec::QueryEngine engine(exec::ExecOptions{});
  storage::DatabaseView full_view(&db);
  util::Rng rng(options_.seed ^ 0x1fa11bacULL);
  std::map<std::string, std::pair<double, size_t>> accumulated;

  static const sql::AggFunc kOps[] = {sql::AggFunc::kCount, sql::AggFunc::kSum,
                                      sql::AggFunc::kAvg, sql::AggFunc::kMin,
                                      sql::AggFunc::kMax};

  for (const auto& [table_name, syn] : tables_) {
    if (syn.full_rows > static_cast<double>(options_.calibration_max_rows)) {
      continue;
    }
    // Numeric columns with spread (measure + predicate candidates) and a
    // low-cardinality categorical for the grouped variants.
    std::vector<int> numeric_cols;
    int group_col = -1;
    for (size_t c = 0; c < syn.columns.size(); ++c) {
      const ColumnSynopsis& cs = syn.columns[c];
      if (cs.is_numeric && cs.non_null > 0.0 && cs.hi > cs.lo) {
        numeric_cols.push_back(static_cast<int>(c));
      } else if (!cs.is_numeric && cs.categories.size() >= 2 &&
                 cs.categories.size() <= 64 && group_col < 0) {
        group_col = static_cast<int>(c);
      }
    }
    if (numeric_cols.empty()) continue;

    for (sql::AggFunc op : kOps) {
      for (int grouped = 0; grouped < (group_col >= 0 ? 2 : 1); ++grouped) {
        for (size_t q = 0; q < options_.calibration_queries; ++q) {
          const int measure =
              numeric_cols[rng.NextBounded(numeric_cols.size())];
          const int pred_col =
              numeric_cols[rng.NextBounded(numeric_cols.size())];
          const ColumnSynopsis& ps =
              syn.columns[static_cast<size_t>(pred_col)];
          const double span = ps.hi - ps.lo;
          // Mirror the shapes exploratory workloads actually use: half
          // the probes are narrow, Eq-like windows (a point predicate on
          // an integer column lands in one histogram bin), the rest wide
          // range scans. Wide-only probes flatter the synopsis — the
          // calibrated estimate must answer for the hard case too.
          const double width = rng.Bernoulli(0.5)
                                   ? rng.UniformDouble(0.02, 0.12)
                                   : rng.UniformDouble(0.2, 0.6);
          const double a =
              ps.lo + rng.UniformDouble(0.0, 1.0 - width) * span;
          const double b = a + width * span;

          sql::SelectStatement stmt;
          stmt.from.push_back(sql::TableRef{table_name, ""});
          std::vector<sql::ExprPtr> conjuncts;
          conjuncts.push_back(sql::Expr::Between(
              sql::Expr::ColumnRef(table_name, ps.name),
              storage::Value(a), storage::Value(b)));
          // A second conjunct on another column half the time: the
          // synopsis assumes independence across predicate columns, and
          // the calibration has to pay for that assumption where the data
          // is correlated.
          if (numeric_cols.size() > 1 && rng.Bernoulli(0.5)) {
            const int second =
                numeric_cols[rng.NextBounded(numeric_cols.size())];
            if (second != pred_col) {
              const ColumnSynopsis& ss =
                  syn.columns[static_cast<size_t>(second)];
              conjuncts.push_back(sql::Expr::Binary(
                  sql::BinOp::kGe,
                  sql::Expr::ColumnRef(table_name, ss.name),
                  sql::Expr::Literal(storage::Value(
                      ss.lo + rng.UniformDouble(0.2, 0.8) * (ss.hi - ss.lo)))));
            }
          }
          stmt.where = sql::AndAll(conjuncts);
          if (grouped) {
            const std::string& dim =
                syn.columns[static_cast<size_t>(group_col)].name;
            stmt.group_by.push_back(sql::Expr::ColumnRef(table_name, dim));
            sql::SelectItem key;
            key.expr = sql::Expr::ColumnRef(table_name, dim);
            stmt.items.push_back(std::move(key));
          }
          sql::SelectItem agg;
          agg.agg = op;
          if (op == sql::AggFunc::kCount) {
            agg.star = true;
          } else {
            agg.expr = sql::Expr::ColumnRef(
                table_name, syn.columns[static_cast<size_t>(measure)].name);
          }
          stmt.items.push_back(std::move(agg));

          auto bound = sql::Bind(stmt, db);
          if (!bound.ok()) continue;
          auto estimated = Answer(bound.value());
          if (!estimated.ok()) continue;
          auto truth = engine.Execute(bound.value(), full_view,
                                      util::ExecContext());
          if (!truth.ok()) continue;
          auto err = metric::RelativeError(truth.value(),
                                           estimated.value().result,
                                           grouped ? 1u : 0u);
          if (!err.ok()) continue;
          auto& slot = accumulated[CategoryOf(stmt)];
          slot.first += err.value();
          slot.second += 1;
        }
      }
    }
  }

  for (const auto& [category, sum_count] : accumulated) {
    if (sum_count.second == 0) continue;
    const double mean = sum_count.first / static_cast<double>(sum_count.second);
    // Floor keeps the estimate honest: a perfectly calibrated category
    // still reports *some* error (the synopsis is lossy by construction).
    calibrated_errors_[category] = std::clamp(mean, 0.02, 1.0);
  }
}

Status LearnedFallback::SaveTo(std::ostream& out) const {
  out.precision(17);
  out << "asqp-learned-fallback v1\n";
  out << "options " << options_.num_bins << " " << options_.default_error
      << "\n";
  out << "calibrated " << calibrated_errors_.size() << "\n";
  for (const auto& [category, err] : calibrated_errors_) {
    out << category << " " << err << "\n";
  }
  out << "tables " << tables_.size() << "\n";
  for (const auto& [name, syn] : tables_) {
    out << "table " << name << " " << syn.full_rows << " " << syn.fitted_rows
        << " " << syn.scale << " " << syn.columns.size() << "\n";
    for (const ColumnSynopsis& cs : syn.columns) {
      if (cs.is_numeric) {
        out << "numcol " << cs.name << " " << cs.lo << " " << cs.hi << " "
            << cs.min_value << " " << cs.max_value << " " << cs.total_sum
            << " " << cs.nulls << " " << cs.non_null << " " << cs.counts.size()
            << "\n";
        for (size_t b = 0; b < cs.counts.size(); ++b) {
          out << cs.counts[b] << " " << cs.sums[b] << "\n";
        }
      } else {
        out << "catcol " << cs.name << " " << cs.nulls << " " << cs.non_null
            << " " << cs.categories.size() << "\n";
        for (size_t i = 0; i < cs.categories.size(); ++i) {
          out << cs.counts[i] << "\t" << cs.categories[i] << "\n";
        }
      }
    }
  }
  if (!out.good()) return Status::Internal("learned fallback: write failed");
  return Status::OK();
}

Result<LearnedFallback> LearnedFallback::LoadFrom(std::istream& in) {
  const auto malformed = [](const std::string& what) {
    return Status::ParseError("learned fallback: malformed " + what);
  };
  std::string line;
  if (!std::getline(in, line) || line != "asqp-learned-fallback v1") {
    return malformed("header");
  }
  LearnedFallback fb;
  std::string token;
  if (!(in >> token) || token != "options" || !(in >> fb.options_.num_bins) ||
      !(in >> fb.options_.default_error)) {
    return malformed("options");
  }
  size_t num_calibrated = 0;
  if (!(in >> token) || token != "calibrated" || !(in >> num_calibrated)) {
    return malformed("calibration header");
  }
  for (size_t i = 0; i < num_calibrated; ++i) {
    std::string category;
    double err = 0.0;
    if (!(in >> category >> err)) return malformed("calibration entry");
    fb.calibrated_errors_[category] = err;
  }
  size_t num_tables = 0;
  if (!(in >> token) || token != "tables" || !(in >> num_tables)) {
    return malformed("table header");
  }
  for (size_t t = 0; t < num_tables; ++t) {
    TableSynopsis syn;
    size_t num_cols = 0;
    if (!(in >> token) || token != "table" || !(in >> syn.name) ||
        !(in >> syn.full_rows >> syn.fitted_rows >> syn.scale >> num_cols)) {
      return malformed("table entry");
    }
    for (size_t c = 0; c < num_cols; ++c) {
      ColumnSynopsis cs;
      if (!(in >> token)) return malformed("column kind");
      if (token == "numcol") {
        size_t bins = 0;
        cs.is_numeric = true;
        if (!(in >> cs.name >> cs.lo >> cs.hi >> cs.min_value >>
              cs.max_value >> cs.total_sum >> cs.nulls >> cs.non_null >>
              bins)) {
          return malformed("numeric column");
        }
        cs.counts.resize(bins);
        cs.sums.resize(bins);
        for (size_t b = 0; b < bins; ++b) {
          if (!(in >> cs.counts[b] >> cs.sums[b])) return malformed("bin");
        }
      } else if (token == "catcol") {
        size_t cats = 0;
        cs.is_numeric = false;
        if (!(in >> cs.name >> cs.nulls >> cs.non_null >> cats)) {
          return malformed("categorical column");
        }
        cs.counts.resize(cats);
        cs.categories.resize(cats);
        for (size_t i = 0; i < cats; ++i) {
          if (!(in >> cs.counts[i])) return malformed("category count");
          // Category text follows a tab and runs to end of line (it may
          // contain spaces).
          if (in.get() != '\t') return malformed("category separator");
          if (!std::getline(in, cs.categories[i])) {
            return malformed("category value");
          }
        }
      } else {
        return malformed("column kind '" + token + "'");
      }
      syn.columns.push_back(std::move(cs));
    }
    const std::string name = syn.name;
    fb.tables_.emplace(name, std::move(syn));
  }
  return fb;
}

}  // namespace aqp
}  // namespace asqp
