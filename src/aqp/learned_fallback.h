// Tier-1 of the degradation ladder: an ML-AQP-style learned answerer
// [Savva et al., PAPERS.md] for aggregate queries, fit over the
// approximation set at model-build / FineTune time.
//
// Where the SPN (spn.h) learns a full joint model of one table for the
// Section 6.4 comparison, the LearnedFallback is a serving-path artifact:
// a flat per-table synopsis (per-column histograms with per-bin measure
// sums, scaled by the sampling fraction) that answers
// COUNT / SUM / AVG / MIN / MAX under conjunctive predicates in
// microseconds, plus a *calibrated relative-error estimate* per operator
// category — the bound the mediator surfaces through
// AnswerResult::error_estimate when it degrades to this tier. Calibration
// runs at fit time: a handful of synthetic aggregate queries per table
// are answered by both the synopsis and the real executor, and the mean
// observed relative error per category {CNT,SUM,AVG,MIN,MAX} x {G+,''}
// becomes the estimate reported for future queries of that category.
//
// The synopsis is plain data (no pointers into the fitted tables), so it
// is cheap to copy, safe to share across serving threads, and
// serializable — io::SaveLearnedFallback ships it with the model.
#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/result_set.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace aqp {

struct LearnedFallbackOptions {
  /// Equi-width bins per numeric column histogram.
  size_t num_bins = 64;
  /// Row cap when fitting a table that has no approximation-set rows
  /// (stride-sampled; the scale factor compensates).
  size_t max_fit_rows = 65536;
  /// Calibration queries generated per table per operator category pair.
  /// 0 disables calibration (estimates fall back to `default_error`).
  size_t calibration_queries = 2;
  /// Tables larger than this skip calibration truth execution (the
  /// estimates fall back to `default_error`).
  size_t calibration_max_rows = 4u << 20;
  /// Relative-error estimate reported for uncalibrated categories.
  double default_error = 0.30;
  uint64_t seed = 1;
};

/// \brief A learned aggregate answer: the estimated result plus the
/// calibrated relative-error bound for its operator category.
struct LearnedAnswer {
  exec::ResultSet result;
  /// Calibrated mean relative error for this query's category (see
  /// LearnedFallback::CategoryOf); `default_error` when uncalibrated.
  double error_estimate = 0.0;
  /// The operator category the estimate was calibrated against
  /// ("CNT", "G+SUM", ...).
  std::string category;
};

class LearnedFallback {
 public:
  LearnedFallback() = default;

  /// Fit per-table synopses. Tables present in `set` are fitted over
  /// their approximation-set rows (scale = full / subset); tables absent
  /// from it are stride-sampled up to `options.max_fit_rows`. When
  /// `options.calibration_queries > 0`, synthetic aggregates per category
  /// are answered by both the synopsis and the executor over `db` to
  /// measure the per-category relative error.
  [[nodiscard]] static util::Result<LearnedFallback> Fit(
      const storage::Database& db, const storage::ApproximationSet& set,
      const LearnedFallbackOptions& options);

  /// True when `query` is in the supported class: single table with a
  /// fitted synopsis, conjunctive predicates (see
  /// Spn::PredicatesFromQuery), COUNT/SUM/AVG/MIN/MAX select items, at
  /// most one categorical GROUP BY column, no DISTINCT / HAVING.
  bool CanAnswer(const sql::BoundQuery& query) const;

  /// Answer `query` from the synopsis. The ResultSet mirrors the
  /// executor's column layout so metric::RelativeError can compare them.
  [[nodiscard]] util::Result<LearnedAnswer> Answer(
      const sql::BoundQuery& query) const;

  /// The calibrated relative-error estimate a query of this shape would
  /// report, without answering it.
  double ErrorEstimateFor(const sql::SelectStatement& stmt) const;

  /// Figure-12 operator category of an aggregate statement: the dominant
  /// aggregate ("CNT" < "MIN"/"MAX" < "AVG" < "SUM"), prefixed "G+" when
  /// grouped.
  static std::string CategoryOf(const sql::SelectStatement& stmt);

  size_t num_tables() const { return tables_.size(); }
  bool has_table(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  const std::map<std::string, double>& calibrated_errors() const {
    return calibrated_errors_;
  }
  double default_error() const { return options_.default_error; }

  /// Text serialization (stable across platforms, like io's other
  /// formats). Load restores an equivalent answerer without the fitted
  /// database.
  [[nodiscard]] util::Status SaveTo(std::ostream& out) const;
  [[nodiscard]] static util::Result<LearnedFallback> LoadFrom(
      std::istream& in);

 private:
  struct ColumnSynopsis {
    std::string name;
    bool is_numeric = false;
    // Numeric: equi-width bins over [lo, hi] with per-bin counts and
    // per-bin sums of the column's own values; observed extremes.
    double lo = 0.0;
    double hi = 1.0;
    std::vector<double> counts;
    std::vector<double> sums;
    double total_sum = 0.0;
    double min_value = 0.0;
    double max_value = 0.0;
    // Categorical: per-category counts.
    std::vector<std::string> categories;
    double nulls = 0.0;
    double non_null = 0.0;

    double Selectivity(double plo, double phi) const;
    double SelectivityCategorical(const std::set<std::string>& cats,
                                  bool negate) const;
  };

  struct TableSynopsis {
    std::string name;
    double full_rows = 0.0;
    double fitted_rows = 0.0;
    /// full_rows / fitted_rows: COUNT/SUM answers scale up by this.
    double scale = 1.0;
    std::vector<ColumnSynopsis> columns;
  };

  static TableSynopsis FitTable(const storage::Table& table,
                                const std::vector<uint32_t>& rows,
                                const LearnedFallbackOptions& options);
  void Calibrate(const storage::Database& db);

  /// Supported-shape validation shared by CanAnswer/Answer; returns the
  /// synopsis or the reason the query is out of class.
  [[nodiscard]] util::Result<const TableSynopsis*> Classify(
      const sql::BoundQuery& query) const;

  LearnedFallbackOptions options_;
  std::map<std::string, TableSynopsis> tables_;
  /// category ("CNT", "G+SUM", ...) -> mean observed relative error.
  std::map<std::string, double> calibrated_errors_;
};

}  // namespace aqp
}  // namespace asqp
