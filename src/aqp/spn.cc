#include "aqp/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "util/random.h"
#include "util/string_util.h"

namespace asqp {
namespace aqp {

namespace {

using util::Result;
using util::Status;

/// Numeric encoding of a cell for correlation / clustering: numerics
/// as-is, categoricals as their dictionary code.
double EncodedCell(const storage::Table& table, int col, uint32_t row) {
  const storage::Column& c = table.column(col);
  if (c.IsNull(row)) return 0.0;
  if (c.type() == storage::ValueType::kString) {
    return static_cast<double>(c.StringCodeAt(row));
  }
  return c.NumericAt(row);
}

/// |Pearson correlation| of two columns over a row sample.
double AbsCorrelation(const storage::Table& table, int a, int b,
                      const std::vector<uint32_t>& rows) {
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  const double n = static_cast<double>(rows.size());
  for (uint32_t r : rows) {
    const double x = EncodedCell(table, a, r);
    const double y = EncodedCell(table, b, r);
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  return std::fabs(cov / std::sqrt(va * vb));
}

}  // namespace

double Spn::Histogram::Selectivity(const ColumnPredicate& predicate) const {
  if (total == 0) return 0.0;
  double matching = 0.0;
  if (is_numeric) {
    if (counts.empty()) return 0.0;
    const double width =
        (hi - lo) <= 0.0 ? 1.0 : (hi - lo) / static_cast<double>(counts.size());
    for (size_t b = 0; b < counts.size(); ++b) {
      const double bin_lo = lo + width * static_cast<double>(b);
      const double bin_hi = bin_lo + width;
      // Fractional overlap of [bin_lo, bin_hi) with [pred.lo, pred.hi].
      const double overlap_lo = std::max(bin_lo, predicate.lo);
      const double overlap_hi = std::min(bin_hi, predicate.hi);
      if (overlap_hi <= overlap_lo) continue;
      const double fraction = width <= 0.0 ? 1.0 : (overlap_hi - overlap_lo) / width;
      matching += counts[b] * std::min(1.0, fraction);
    }
  } else {
    for (size_t i = 0; i < categories.size(); ++i) {
      const bool member = predicate.categories.count(categories[i]) > 0;
      if (predicate.categories.empty() ||
          (member != predicate.negate_categories)) {
        matching += counts[i];
      }
    }
  }
  return std::min(1.0, matching / static_cast<double>(total));
}

Result<Spn> Spn::Learn(const storage::Table& table, const SpnOptions& options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot learn an SPN from an empty table");
  }
  Spn spn;
  spn.table_ = &table;
  spn.schema_ = table.schema();
  spn.total_rows_ = table.num_rows();

  util::Rng rng(options.seed);

  // Recursive builder.
  std::function<NodePtr(std::vector<uint32_t>, std::vector<int>, size_t)>
      build = [&](std::vector<uint32_t> rows, std::vector<int> cols,
                  size_t depth) -> NodePtr {
    auto node = std::make_unique<Node>();
    node->rows = rows.size();
    ++spn.num_nodes_;

    const bool must_leaf = rows.size() < options.min_instances ||
                           cols.size() <= 1 || depth >= options.max_depth;

    if (!must_leaf) {
      // --- Try a product split: connected components of the dependency
      // graph under the correlation threshold.
      std::vector<uint32_t> sample = rows;
      if (sample.size() > 512) {
        std::vector<size_t> idx = rng.SampleIndices(sample.size(), 512);
        std::vector<uint32_t> sub;
        sub.reserve(idx.size());
        for (size_t i : idx) sub.push_back(sample[i]);
        sample = std::move(sub);
      }
      std::vector<int> component(cols.size(), -1);
      int num_components = 0;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (component[i] >= 0) continue;
        // BFS over dependent columns.
        std::vector<size_t> queue = {i};
        component[i] = num_components;
        while (!queue.empty()) {
          const size_t u = queue.back();
          queue.pop_back();
          for (size_t v = 0; v < cols.size(); ++v) {
            if (component[v] >= 0) continue;
            if (AbsCorrelation(table, cols[u], cols[v], sample) >
                options.correlation_threshold) {
              component[v] = num_components;
              queue.push_back(v);
            }
          }
        }
        ++num_components;
      }
      if (num_components > 1) {
        node->kind = Node::Kind::kProduct;
        for (int comp = 0; comp < num_components; ++comp) {
          std::vector<int> child_cols;
          for (size_t i = 0; i < cols.size(); ++i) {
            if (component[i] == comp) child_cols.push_back(cols[i]);
          }
          node->child_columns.push_back(child_cols);
          node->children.push_back(build(rows, child_cols, depth + 1));
        }
        return node;
      }

      // --- Row split (sum node): 2-means over encoded rows.
      // Pick the column with the highest variance as the split driver plus
      // a second random column, 2-means in that 2-D space.
      std::vector<double> center_a, center_b;
      const int ca = cols[rng.NextBounded(cols.size())];
      const int cb = cols[rng.NextBounded(cols.size())];
      // Initialize with two distinct random rows.
      const uint32_t r1 = rows[rng.NextBounded(rows.size())];
      const uint32_t r2 = rows[rng.NextBounded(rows.size())];
      center_a = {EncodedCell(table, ca, r1), EncodedCell(table, cb, r1)};
      center_b = {EncodedCell(table, ca, r2), EncodedCell(table, cb, r2)};
      std::vector<uint8_t> side(rows.size(), 0);
      for (int iter = 0; iter < 8; ++iter) {
        double sa0 = 0, sa1 = 0, sb0 = 0, sb1 = 0;
        size_t na = 0, nb = 0;
        for (size_t i = 0; i < rows.size(); ++i) {
          const double x = EncodedCell(table, ca, rows[i]);
          const double y = EncodedCell(table, cb, rows[i]);
          const double da = (x - center_a[0]) * (x - center_a[0]) +
                            (y - center_a[1]) * (y - center_a[1]);
          const double db = (x - center_b[0]) * (x - center_b[0]) +
                            (y - center_b[1]) * (y - center_b[1]);
          side[i] = da <= db ? 0 : 1;
          if (side[i] == 0) {
            sa0 += x;
            sa1 += y;
            ++na;
          } else {
            sb0 += x;
            sb1 += y;
            ++nb;
          }
        }
        if (na > 0) center_a = {sa0 / na, sa1 / na};
        if (nb > 0) center_b = {sb0 / nb, sb1 / nb};
      }
      std::vector<uint32_t> left, right;
      for (size_t i = 0; i < rows.size(); ++i) {
        (side[i] == 0 ? left : right).push_back(rows[i]);
      }
      if (!left.empty() && !right.empty()) {
        node->kind = Node::Kind::kSum;
        const double n = static_cast<double>(rows.size());
        node->weights = {static_cast<double>(left.size()) / n,
                         static_cast<double>(right.size()) / n};
        node->children.push_back(build(std::move(left), cols, depth + 1));
        node->children.push_back(build(std::move(right), cols, depth + 1));
        return node;
      }
      // Degenerate split: fall through to a leaf.
    }

    // --- Leaf: per-column histograms + numeric means.
    node->kind = Node::Kind::kLeaf;
    node->columns = cols;
    for (int col : cols) {
      const storage::Column& c = table.column(col);
      Histogram h;
      h.total = rows.size();
      if (c.type() == storage::ValueType::kString) {
        h.is_numeric = false;
        std::map<std::string, double> counts;
        for (uint32_t r : rows) {
          if (c.IsNull(r)) {
            ++h.nulls;
            continue;
          }
          counts[c.StringAt(r)] += 1.0;
        }
        for (auto& [value, count] : counts) {
          h.categories.push_back(value);
          h.counts.push_back(count);
        }
        node->numeric_means.push_back(0.0);
      } else {
        h.is_numeric = true;
        double lo = 1e300, hi = -1e300, sum = 0.0;
        size_t n = 0;
        for (uint32_t r : rows) {
          if (c.IsNull(r)) {
            ++h.nulls;
            continue;
          }
          const double v = c.NumericAt(r);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
          sum += v;
          ++n;
        }
        if (n == 0) {
          lo = 0.0;
          hi = 1.0;
        }
        h.lo = lo;
        h.hi = hi > lo ? hi : lo + 1.0;
        h.counts.assign(options.num_histogram_bins, 0.0);
        for (uint32_t r : rows) {
          if (c.IsNull(r)) continue;
          const double v = c.NumericAt(r);
          size_t bin = static_cast<size_t>((v - h.lo) / (h.hi - h.lo) *
                                           static_cast<double>(h.counts.size()));
          bin = std::min(bin, h.counts.size() - 1);
          h.counts[bin] += 1.0;
        }
        node->numeric_means.push_back(n == 0 ? 0.0
                                             : sum / static_cast<double>(n));
      }
      node->histograms.push_back(std::move(h));
    }
    return node;
  };

  std::vector<uint32_t> all_rows(table.num_rows());
  for (uint32_t r = 0; r < table.num_rows(); ++r) all_rows[r] = r;
  std::vector<int> all_cols(table.num_columns());
  for (size_t c = 0; c < all_cols.size(); ++c) all_cols[c] = static_cast<int>(c);
  spn.root_ = build(std::move(all_rows), std::move(all_cols), 0);
  return spn;
}

Spn::Moment Spn::Evaluate(const Node& node,
                          const std::vector<ColumnPredicate>& predicates,
                          int measure_col) const {
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      double prob = 1.0;
      double mean = 0.0;
      bool has_measure = false;
      for (size_t i = 0; i < node.columns.size(); ++i) {
        const int col = node.columns[i];
        if (col == measure_col) {
          mean = node.numeric_means[i];
          has_measure = true;
        }
        for (const ColumnPredicate& p : predicates) {
          if (p.col == col) prob *= node.histograms[i].Selectivity(p);
        }
      }
      Moment m;
      m.probability = prob;
      // Leaf independence: E[measure * 1(pred)] = mean * P(pred).
      m.expected_measure = has_measure ? mean * prob : 0.0;
      return m;
    }
    case Node::Kind::kSum: {
      Moment m;
      for (size_t i = 0; i < node.children.size(); ++i) {
        const Moment child =
            Evaluate(*node.children[i], predicates, measure_col);
        m.probability += node.weights[i] * child.probability;
        m.expected_measure += node.weights[i] * child.expected_measure;
      }
      return m;
    }
    case Node::Kind::kProduct: {
      // P = prod of per-component probabilities; the measure lives in
      // exactly one component: E[m * 1] = E_comp[m * 1_comp] * prod other P.
      Moment m;
      m.probability = 1.0;
      double measure_expectation = 0.0;
      double measure_component_prob = 1.0;
      bool measure_found = false;
      for (size_t i = 0; i < node.children.size(); ++i) {
        const Moment child =
            Evaluate(*node.children[i], predicates, measure_col);
        m.probability *= child.probability;
        const bool has_measure =
            std::find(node.child_columns[i].begin(),
                      node.child_columns[i].end(),
                      measure_col) != node.child_columns[i].end();
        if (has_measure) {
          measure_expectation = child.expected_measure;
          measure_component_prob = child.probability;
          measure_found = true;
        }
      }
      if (measure_found) {
        const double others =
            measure_component_prob > 0.0
                ? m.probability / measure_component_prob
                : 0.0;
        m.expected_measure = measure_expectation * others;
      }
      return m;
    }
  }
  return {};
}

double Spn::Probability(const std::vector<ColumnPredicate>& predicates) const {
  return Evaluate(*root_, predicates, /*measure_col=*/-1).probability;
}

double Spn::EstimateCount(
    const std::vector<ColumnPredicate>& predicates) const {
  return Probability(predicates) * static_cast<double>(total_rows_);
}

double Spn::EstimateSum(int measure_col,
                        const std::vector<ColumnPredicate>& predicates) const {
  return Evaluate(*root_, predicates, measure_col).expected_measure *
         static_cast<double>(total_rows_);
}

double Spn::EstimateAvg(int measure_col,
                        const std::vector<ColumnPredicate>& predicates) const {
  const Moment m = Evaluate(*root_, predicates, measure_col);
  if (m.probability <= 0.0) return 0.0;
  return m.expected_measure / m.probability;
}

Spn::ExtremeResult Spn::EvaluateExtreme(
    const Node& node, int measure_col,
    const std::vector<ColumnPredicate>& predicates, bool want_min) const {
  constexpr double kMinMass = 1e-6;
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      ExtremeResult result;
      result.probability =
          Evaluate(node, predicates, /*measure_col=*/-1).probability;
      if (result.probability < kMinMass) return result;
      // Feasible measure interval after intersecting measure predicates.
      double lo = -1e300, hi = 1e300;
      for (const ColumnPredicate& p : predicates) {
        if (p.col == measure_col) {
          lo = std::max(lo, p.lo);
          hi = std::min(hi, p.hi);
        }
      }
      for (size_t i = 0; i < node.columns.size(); ++i) {
        if (node.columns[i] != measure_col) continue;
        const Histogram& h = node.histograms[i];
        if (!h.is_numeric || h.counts.empty()) return result;
        const double width =
            (h.hi - h.lo) / static_cast<double>(h.counts.size());
        // Scan bins from the wanted end for surviving mass.
        for (size_t step = 0; step < h.counts.size(); ++step) {
          const size_t b = want_min ? step : h.counts.size() - 1 - step;
          if (h.counts[b] <= 0.0) continue;
          const double bin_lo = h.lo + width * static_cast<double>(b);
          const double bin_hi = bin_lo + width;
          if (bin_hi < lo || bin_lo > hi) continue;
          result.has_value = true;
          result.value = want_min ? std::max(bin_lo, lo) : std::min(bin_hi, hi);
          return result;
        }
        return result;
      }
      return result;
    }
    case Node::Kind::kSum: {
      ExtremeResult result;
      for (size_t i = 0; i < node.children.size(); ++i) {
        const ExtremeResult child = EvaluateExtreme(
            *node.children[i], measure_col, predicates, want_min);
        result.probability += node.weights[i] * child.probability;
        if (child.has_value &&
            node.weights[i] * child.probability >= kMinMass) {
          if (!result.has_value ||
              (want_min ? child.value < result.value
                        : child.value > result.value)) {
            result.has_value = true;
            result.value = child.value;
          }
        }
      }
      return result;
    }
    case Node::Kind::kProduct: {
      ExtremeResult result;
      result.probability = 1.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        const ExtremeResult child = EvaluateExtreme(
            *node.children[i], measure_col, predicates, want_min);
        result.probability *= child.probability;
        const bool has_measure =
            std::find(node.child_columns[i].begin(),
                      node.child_columns[i].end(),
                      measure_col) != node.child_columns[i].end();
        if (has_measure && child.has_value) {
          result.has_value = true;
          result.value = child.value;
        }
      }
      if (result.probability < kMinMass) result.has_value = false;
      return result;
    }
  }
  return {};
}

double Spn::EstimateMin(int measure_col,
                        const std::vector<ColumnPredicate>& predicates) const {
  const ExtremeResult e =
      EvaluateExtreme(*root_, measure_col, predicates, true);
  return e.has_value ? e.value : 0.0;
}

double Spn::EstimateMax(int measure_col,
                        const std::vector<ColumnPredicate>& predicates) const {
  const ExtremeResult e =
      EvaluateExtreme(*root_, measure_col, predicates, false);
  return e.has_value ? e.value : 0.0;
}

Result<std::vector<ColumnPredicate>> Spn::PredicatesFromQuery(
    const sql::BoundQuery& query) {
  if (query.num_tables() != 1) {
    return Status::InvalidArgument("SPN estimates single-table queries only");
  }
  if (!query.residual.empty()) {
    return Status::NotImplemented("unsupported predicate form for SPN");
  }
  std::vector<ColumnPredicate> out;
  for (const sql::ExprPtr& conjunct : query.filters[0]) {
    const sql::Expr& e = *conjunct;
    ColumnPredicate p;
    switch (e.kind) {
      case sql::ExprKind::kBinary: {
        if (!sql::IsComparison(e.op) ||
            e.left->kind != sql::ExprKind::kColumnRef ||
            e.right->kind != sql::ExprKind::kLiteral) {
          return Status::NotImplemented("unsupported comparison for SPN");
        }
        p.col = e.left->col_idx;
        const storage::Value& v = e.right->literal;
        if (v.type() == storage::ValueType::kString) {
          if (e.op != sql::BinOp::kEq && e.op != sql::BinOp::kNe) {
            return Status::NotImplemented("string range predicate for SPN");
          }
          p.categories.insert(v.AsString());
          p.negate_categories = e.op == sql::BinOp::kNe;
        } else {
          const double num = v.ToNumeric();
          switch (e.op) {
            // Point predicates take a unit-width interval so they overlap
            // histogram bins (integer domains; for continuous columns this
            // slightly over-smooths, which is the right bias for AQP).
            case sql::BinOp::kEq: p.lo = num - 0.5; p.hi = num + 0.5; break;
            case sql::BinOp::kLt:
            case sql::BinOp::kLe: p.hi = num; break;
            case sql::BinOp::kGt:
            case sql::BinOp::kGe: p.lo = num; break;
            default:
              return Status::NotImplemented("<> over numerics for SPN");
          }
        }
        break;
      }
      case sql::ExprKind::kBetween: {
        if (e.negated || e.left->kind != sql::ExprKind::kColumnRef) {
          return Status::NotImplemented("NOT BETWEEN for SPN");
        }
        p.col = e.left->col_idx;
        p.lo = e.between_lo.ToNumeric();
        p.hi = e.between_hi.ToNumeric();
        break;
      }
      case sql::ExprKind::kIn: {
        if (e.left->kind != sql::ExprKind::kColumnRef) {
          return Status::NotImplemented("IN over expression for SPN");
        }
        p.col = e.left->col_idx;
        for (const storage::Value& v : e.in_list) {
          if (v.type() != storage::ValueType::kString) {
            return Status::NotImplemented("numeric IN for SPN");
          }
          p.categories.insert(v.AsString());
        }
        p.negate_categories = e.negated;
        break;
      }
      default:
        return Status::NotImplemented("unsupported predicate kind for SPN");
    }
    out.push_back(std::move(p));
  }
  return out;
}

Result<exec::ResultSet> Spn::EstimateAggregateQuery(
    const sql::BoundQuery& query) const {
  ASQP_ASSIGN_OR_RETURN(std::vector<ColumnPredicate> predicates,
                        PredicatesFromQuery(query));
  if (!query.stmt.HasAggregates()) {
    return Status::InvalidArgument("EstimateAggregateQuery needs aggregates");
  }
  if (query.stmt.group_by.size() > 1) {
    return Status::NotImplemented("multi-column GROUP BY for SPN");
  }

  // Output columns mirror the executor's layout.
  std::vector<std::string> names;
  for (const sql::SelectItem& item : query.stmt.items) {
    names.push_back(item.alias.empty()
                        ? (item.agg == sql::AggFunc::kNone
                               ? (item.expr ? item.expr->ToSql() : "*")
                               : util::ToLower(sql::AggFuncName(item.agg)))
                        : item.alias);
  }
  exec::ResultSet out(names);

  // Group values: distinct categories of the GROUP BY column.
  std::vector<std::optional<std::string>> groups;
  int group_col = -1;
  if (!query.stmt.group_by.empty()) {
    const sql::Expr& g = *query.stmt.group_by[0];
    if (g.kind != sql::ExprKind::kColumnRef) {
      return Status::NotImplemented("GROUP BY expression for SPN");
    }
    group_col = g.col_idx;
    const storage::Column& col = table_->column(group_col);
    if (col.type() != storage::ValueType::kString) {
      return Status::NotImplemented("numeric GROUP BY for SPN");
    }
    for (uint32_t code = 0; code < col.dict_size(); ++code) {
      groups.emplace_back(col.dict_entry(code));
    }
  } else {
    groups.emplace_back(std::nullopt);  // single global group
  }

  for (const auto& group_value : groups) {
    std::vector<ColumnPredicate> preds = predicates;
    if (group_value.has_value()) {
      ColumnPredicate gp;
      gp.col = group_col;
      gp.categories.insert(*group_value);
      preds.push_back(std::move(gp));
    }
    const double count = EstimateCount(preds);
    if (group_value.has_value() && count < 0.5) continue;  // empty group

    std::vector<storage::Value> row;
    for (const sql::SelectItem& item : query.stmt.items) {
      switch (item.agg) {
        case sql::AggFunc::kNone:
          // if/else instead of a ternary: GCC 12's -O2 maybe-uninitialized
          // pass false-positives on the ternary's moved-from variant
          // temporary.
          if (group_value.has_value()) {
            row.emplace_back(*group_value);
          } else {
            row.emplace_back();
          }
          break;
        case sql::AggFunc::kCount:
          row.emplace_back(static_cast<int64_t>(std::llround(count)));
          break;
        case sql::AggFunc::kSum: {
          if (!item.expr || item.expr->kind != sql::ExprKind::kColumnRef) {
            return Status::NotImplemented("SUM over expression for SPN");
          }
          row.emplace_back(EstimateSum(item.expr->col_idx, preds));
          break;
        }
        case sql::AggFunc::kAvg: {
          if (!item.expr || item.expr->kind != sql::ExprKind::kColumnRef) {
            return Status::NotImplemented("AVG over expression for SPN");
          }
          row.emplace_back(EstimateAvg(item.expr->col_idx, preds));
          break;
        }
        case sql::AggFunc::kMin:
        case sql::AggFunc::kMax: {
          if (!item.expr || item.expr->kind != sql::ExprKind::kColumnRef) {
            return Status::NotImplemented("MIN/MAX over expression for SPN");
          }
          row.emplace_back(item.agg == sql::AggFunc::kMin
                               ? EstimateMin(item.expr->col_idx, preds)
                               : EstimateMax(item.expr->col_idx, preds));
          break;
        }
        default:
          return Status::NotImplemented("unsupported aggregate for SPN");
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace aqp
}  // namespace asqp
