// Sum-Product Network over one table — the DeepDB-style comparator
// [Hilprecht et al.] of Section 6.4. Structure learning alternates row
// clustering (sum nodes) and independence-based column partitioning
// (product nodes); leaves hold per-column histograms plus per-column
// means, from which COUNT / SUM / AVG aggregates under conjunctive
// predicates are estimated without touching the data.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "exec/result_set.h"
#include "sql/binder.h"
#include "storage/table.h"
#include "util/status.h"

namespace asqp {
namespace aqp {

struct SpnOptions {
  /// Leaves are created below this many rows.
  size_t min_instances = 512;
  /// Absolute correlation above which two columns are dependent.
  double correlation_threshold = 0.3;
  size_t max_depth = 10;
  size_t num_histogram_bins = 32;
  uint64_t seed = 1;
};

/// \brief Conjunctive predicate on one column, the form the estimator
/// understands: a numeric interval and/or a categorical value set.
struct ColumnPredicate {
  int col = -1;
  // Numeric interval [lo, hi] (defaults = unbounded).
  double lo = -1e300;
  double hi = 1e300;
  // Categorical membership (empty = any).
  std::set<std::string> categories;
  bool negate_categories = false;
};

class Spn {
 public:
  /// Learn an SPN from `table`.
  [[nodiscard]] static util::Result<Spn> Learn(const storage::Table& table,
                                 const SpnOptions& options);

  /// P(conjunction of predicates) under the model.
  double Probability(const std::vector<ColumnPredicate>& predicates) const;

  /// Estimated COUNT(*) under the predicates.
  double EstimateCount(const std::vector<ColumnPredicate>& predicates) const;

  /// Estimated SUM(measure_col) under the predicates.
  double EstimateSum(int measure_col,
                     const std::vector<ColumnPredicate>& predicates) const;

  /// Estimated AVG(measure_col) under the predicates.
  double EstimateAvg(int measure_col,
                     const std::vector<ColumnPredicate>& predicates) const;

  /// Estimated MIN/MAX(measure_col) under the predicates: the extreme
  /// histogram bin with appreciable surviving mass across the mixture.
  double EstimateMin(int measure_col,
                     const std::vector<ColumnPredicate>& predicates) const;
  double EstimateMax(int measure_col,
                     const std::vector<ColumnPredicate>& predicates) const;

  /// Estimate a bound single-table aggregate query (COUNT/SUM/AVG items,
  /// optional single-column GROUP BY) into a ResultSet shaped like the
  /// executor's output, so metric::RelativeError can compare them.
  [[nodiscard]] util::Result<exec::ResultSet> EstimateAggregateQuery(
      const sql::BoundQuery& query) const;

  /// Convert a bound query's single-table filters into ColumnPredicates.
  /// Fails on predicate forms outside the supported conjunctive subset.
  [[nodiscard]] static util::Result<std::vector<ColumnPredicate>> PredicatesFromQuery(
      const sql::BoundQuery& query);

  size_t num_nodes() const { return num_nodes_; }
  size_t table_rows() const { return total_rows_; }

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Histogram {
    // Numeric: equi-width bins with counts plus per-bin measure means.
    bool is_numeric = false;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<double> counts;  // per bin / per category
    std::vector<std::string> categories;  // categorical labels
    size_t total = 0;
    size_t nulls = 0;

    /// P(predicate) under this 1-D marginal.
    double Selectivity(const ColumnPredicate& predicate) const;
  };

  struct Node {
    enum class Kind { kLeaf, kSum, kProduct } kind = Kind::kLeaf;
    size_t rows = 0;
    // Sum: weighted children over the same columns.
    std::vector<NodePtr> children;
    std::vector<double> weights;
    // Product: children over disjoint column sets.
    std::vector<std::vector<int>> child_columns;
    // Leaf: per-column marginals + numeric means (indexed by column id).
    std::vector<int> columns;
    std::vector<Histogram> histograms;   // aligned with `columns`
    std::vector<double> numeric_means;   // aligned with `columns`
  };

  /// E[ measure * 1(predicates) ] contribution, relative (per row).
  struct Moment {
    double probability = 0.0;
    double expected_measure = 0.0;  // E[measure * indicator]
  };
  Moment Evaluate(const Node& node,
                  const std::vector<ColumnPredicate>& predicates,
                  int measure_col) const;

  struct ExtremeResult {
    double probability = 0.0;
    bool has_value = false;
    double value = 0.0;
  };
  ExtremeResult EvaluateExtreme(const Node& node, int measure_col,
                                const std::vector<ColumnPredicate>& predicates,
                                bool want_min) const;

  NodePtr root_;
  size_t total_rows_ = 0;
  size_t num_nodes_ = 0;
  const storage::Table* table_ = nullptr;  // schema reference only
  storage::Schema schema_;
};

}  // namespace aqp
}  // namespace asqp
