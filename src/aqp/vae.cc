#include "aqp/vae.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace aqp {

std::vector<float> TabularVae::EncodeRow(const storage::Table& table,
                                         size_t row) const {
  std::vector<float> x;
  x.reserve(input_dim_);
  for (size_t c = 0; c < codecs_.size(); ++c) {
    const ColumnCodec& codec = codecs_[c];
    const storage::Column& col = table.column(c);
    if (codec.is_numeric) {
      const double v = col.IsNull(row) ? codec.mean : col.NumericAt(row);
      x.push_back(static_cast<float>((v - codec.mean) / codec.stddev));
    } else {
      // One-hot over top values + trailing "other" slot.
      size_t slot = codec.values.size();  // other
      if (!col.IsNull(row)) {
        const std::string& v = col.StringAt(row);
        for (size_t i = 0; i < codec.values.size(); ++i) {
          if (codec.values[i] == v) {
            slot = i;
            break;
          }
        }
      }
      for (size_t i = 0; i <= codec.values.size(); ++i) {
        x.push_back(i == slot ? 1.0f : 0.0f);
      }
    }
  }
  return x;
}

util::Result<TabularVae> TabularVae::Fit(const storage::Table& table,
                                         const VaeOptions& options) {
  if (table.num_rows() == 0) {
    return util::Status::InvalidArgument("cannot fit a VAE to an empty table");
  }
  TabularVae vae;
  vae.table_name_ = table.name();
  vae.schema_ = table.schema();
  vae.options_ = options;

  // Column codecs from statistics.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const storage::Column& col = table.column(c);
    ColumnCodec codec;
    if (col.type() == storage::ValueType::kString) {
      codec.is_numeric = false;
      // Frequency-ranked top values.
      std::vector<std::pair<size_t, uint32_t>> freq;
      std::vector<size_t> counts(col.dict_size(), 0);
      for (size_t r = 0; r < col.size(); ++r) {
        if (!col.IsNull(r)) ++counts[col.StringCodeAt(r)];
      }
      for (uint32_t code = 0; code < counts.size(); ++code) {
        if (counts[code] > 0) freq.emplace_back(counts[code], code);
      }
      std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      const size_t keep = std::min(options.max_categories, freq.size());
      for (size_t i = 0; i < keep; ++i) {
        codec.values.push_back(col.dict_entry(freq[i].second));
      }
      vae.input_dim_ += codec.values.size() + 1;
    } else {
      codec.is_numeric = true;
      double sum = 0.0, sumsq = 0.0;
      size_t n = 0;
      for (size_t r = 0; r < col.size(); ++r) {
        if (col.IsNull(r)) continue;
        const double v = col.NumericAt(r);
        sum += v;
        sumsq += v * v;
        ++n;
      }
      if (n > 0) {
        codec.mean = sum / static_cast<double>(n);
        codec.stddev = std::sqrt(std::max(
            1e-9, sumsq / static_cast<double>(n) - codec.mean * codec.mean));
      }
      if (codec.stddev < 1e-9) codec.stddev = 1.0;
      vae.input_dim_ += 1;
    }
    vae.codecs_.push_back(std::move(codec));
  }

  const size_t latent = options.latent_dim;
  vae.encoder_ = std::make_shared<nn::Mlp>(
      std::vector<size_t>{vae.input_dim_, options.hidden_dim, 2 * latent},
      nn::Activation::kTanh, options.seed);
  vae.decoder_ = std::make_shared<nn::Mlp>(
      std::vector<size_t>{latent, options.hidden_dim, vae.input_dim_},
      nn::Activation::kTanh, options.seed ^ 0xDECULL);

  nn::Adam::Options opt;
  opt.lr = options.learning_rate;
  nn::Adam enc_opt(vae.encoder_.get(), opt);
  nn::Adam dec_opt(vae.decoder_.get(), opt);

  util::Rng rng(options.seed);
  std::vector<size_t> rows = rng.SampleIndices(
      table.num_rows(), std::min(table.num_rows(), options.max_training_rows));

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&rows);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < rows.size(); start += options.batch_size) {
      const size_t end = std::min(rows.size(), start + options.batch_size);
      const float inv_b = 1.0f / static_cast<float>(end - start);
      double batch_loss = 0.0;
      vae.encoder_->ZeroGrad();
      vae.decoder_->ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        const std::vector<float> x = vae.EncodeRow(table, rows[i]);
        nn::Mlp::Cache enc_cache;
        const std::vector<float> enc_out =
            vae.encoder_->Forward(x, &enc_cache);
        // Reparameterization.
        std::vector<float> z(latent), eps(latent), sigma(latent);
        for (size_t l = 0; l < latent; ++l) {
          const float mu = enc_out[l];
          const float logvar = std::clamp(enc_out[latent + l], -8.0f, 8.0f);
          sigma[l] = std::exp(0.5f * logvar);
          eps[l] = static_cast<float>(rng.Normal());
          z[l] = mu + sigma[l] * eps[l];
        }
        nn::Mlp::Cache dec_cache;
        const std::vector<float> xhat =
            vae.decoder_->Forward(z, &dec_cache);

        // Reconstruction loss + gradient wrt decoder output.
        std::vector<float> dxhat(vae.input_dim_, 0.0f);
        size_t offset = 0;
        double recon = 0.0;
        for (const ColumnCodec& codec : vae.codecs_) {
          if (codec.is_numeric) {
            const float err = xhat[offset] - x[offset];
            recon += 0.5 * err * err;
            dxhat[offset] = err;
            ++offset;
          } else {
            // Softmax cross-entropy over the one-hot block.
            const size_t card = codec.values.size() + 1;
            float max_logit = xhat[offset];
            for (size_t s = 1; s < card; ++s) {
              max_logit = std::max(max_logit, xhat[offset + s]);
            }
            double total = 0.0;
            for (size_t s = 0; s < card; ++s) {
              total += std::exp(xhat[offset + s] - max_logit);
            }
            for (size_t s = 0; s < card; ++s) {
              const double p =
                  std::exp(xhat[offset + s] - max_logit) / total;
              dxhat[offset + s] = static_cast<float>(p - x[offset + s]);
              if (x[offset + s] > 0.5f) recon -= std::log(std::max(p, 1e-12));
            }
            offset += card;
          }
        }
        for (float& g : dxhat) g *= inv_b;
        vae.decoder_->Backward(dec_cache, dxhat);

        // Gradient into the latent (input-only pass: Backward above
        // already accumulated the decoder's parameter gradients).
        const std::vector<float> dz =
            vae.decoder_->BackwardInput(dec_cache, dxhat);

        // KL divergence + encoder gradients.
        std::vector<float> denc(2 * latent, 0.0f);
        double kl = 0.0;
        for (size_t l = 0; l < latent; ++l) {
          const float mu = enc_out[l];
          const float logvar = std::clamp(enc_out[latent + l], -8.0f, 8.0f);
          kl += 0.5 * (mu * mu + std::exp(logvar) - 1.0 - logvar);
          // dz/dmu = 1 ; dz/dlogvar = 0.5 * sigma * eps.
          denc[l] = dz[l] + static_cast<float>(options.beta) * mu * inv_b;
          denc[latent + l] =
              dz[l] * 0.5f * sigma[l] * eps[l] +
              static_cast<float>(options.beta) * 0.5f *
                  (std::exp(logvar) - 1.0f) * inv_b;
        }
        vae.encoder_->Backward(enc_cache, denc);
        batch_loss += recon + options.beta * kl;
      }
      enc_opt.Step();
      dec_opt.Step();
      epoch_loss += batch_loss / static_cast<double>(end - start);
      ++batches;
    }
    vae.final_loss_ = epoch_loss / std::max<size_t>(1, batches);
  }
  return vae;
}

util::Result<std::shared_ptr<storage::Table>> TabularVae::Generate(
    size_t n, uint64_t seed) const {
  util::Rng rng(seed);
  auto out = std::make_shared<storage::Table>(table_name_, schema_);
  const size_t latent = options_.latent_dim;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> z(latent);
    for (float& v : z) v = static_cast<float>(rng.Normal());
    const std::vector<float> xhat = decoder_->Forward(z);
    std::vector<storage::Value> row;
    size_t offset = 0;
    for (size_t c = 0; c < codecs_.size(); ++c) {
      const ColumnCodec& codec = codecs_[c];
      if (codec.is_numeric) {
        const double v =
            static_cast<double>(xhat[offset]) * codec.stddev + codec.mean;
        if (schema_.field(c).type == storage::ValueType::kInt64) {
          row.emplace_back(static_cast<int64_t>(std::llround(v)));
        } else {
          row.emplace_back(v);
        }
        ++offset;
      } else {
        const size_t card = codec.values.size() + 1;
        // Sample from the softmax over the block.
        float max_logit = xhat[offset];
        for (size_t s = 1; s < card; ++s) {
          max_logit = std::max(max_logit, xhat[offset + s]);
        }
        std::vector<double> weights(card);
        for (size_t s = 0; s < card; ++s) {
          weights[s] = std::exp(xhat[offset + s] - max_logit);
        }
        size_t slot = rng.WeightedIndex(weights);
        if (slot >= codec.values.size()) slot = 0;  // "other" -> mode
        row.emplace_back(codec.values.empty() ? std::string("?")
                                              : codec.values[slot]);
        offset += card;
      }
    }
    ASQP_RETURN_NOT_OK(out->AppendRow(row));
  }
  return out;
}

}  // namespace aqp
}  // namespace asqp
