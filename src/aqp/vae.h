// Tabular Variational Autoencoder — the gAQP-style generative AQP
// comparator [Thirumuruganathan et al.] and the VAE baseline of Figure 2.
// Numeric columns are standardized; categorical columns are one-hot over
// their top values. Encoder/decoder are small MLPs trained with the
// reparameterization trick; Generate() decodes Gaussian latents into a
// synthetic table with the same schema, on which queries are executed
// with the real engine.
#pragma once

#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "storage/table.h"
#include "util/status.h"

namespace asqp {
namespace aqp {

struct VaeOptions {
  size_t latent_dim = 8;
  size_t hidden_dim = 64;
  size_t epochs = 20;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  /// KL weight (beta-VAE).
  double beta = 0.5;
  /// Categorical columns keep this many top values (+ "other").
  size_t max_categories = 24;
  /// Training rows are subsampled to this cap.
  size_t max_training_rows = 20000;
  uint64_t seed = 1;
};

class TabularVae {
 public:
  /// Fit a VAE to `table`.
  [[nodiscard]] static util::Result<TabularVae> Fit(const storage::Table& table,
                                      const VaeOptions& options);

  /// Decode `n` Gaussian latents into a synthetic table named like the
  /// original (same schema).
  [[nodiscard]] util::Result<std::shared_ptr<storage::Table>> Generate(size_t n,
                                                         uint64_t seed) const;

  /// Mean training loss of the final epoch (reconstruction + beta * KL).
  double final_loss() const { return final_loss_; }

 private:
  struct ColumnCodec {
    bool is_numeric = false;
    // Numeric: standardization.
    double mean = 0.0;
    double stddev = 1.0;
    // Categorical: top values; last slot is "other".
    std::vector<std::string> values;
  };

  std::string table_name_;
  storage::Schema schema_;
  std::vector<ColumnCodec> codecs_;
  size_t input_dim_ = 0;
  VaeOptions options_;
  std::shared_ptr<nn::Mlp> encoder_;  // x -> (mu, logvar)
  std::shared_ptr<nn::Mlp> decoder_;  // z -> x_hat
  double final_loss_ = 0.0;

  std::vector<float> EncodeRow(const storage::Table& table, size_t row) const;
};

}  // namespace aqp
}  // namespace asqp
