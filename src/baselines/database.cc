// Database-domain baselines: CACH (LRU cache simulation), QRD (query
// result diversification), SKY (layered skyline), VERD (VerdictDB-style
// variational sampling), QUIK (QuickR-style catalog sampling).
#include <algorithm>
#include <list>
#include <map>
#include <unordered_map>

#include "baselines/provenance_pool.h"
#include "baselines/selector.h"
#include "cluster/kmeans.h"
#include "embed/embedder.h"
#include "exec/evaluator.h"
#include "sample/sampler.h"
#include "sql/binder.h"
#include "util/string_util.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace baselines {

namespace {

using storage::ApproximationSet;
using util::Result;

}  // namespace

// ------------------------------------------------------------------ CACH

/// Simulate a database buffer cache: replay the workload in order (the
/// paper's realistic multi-user setting: interleaved interests), inserting
/// each query's result tuples into an LRU of capacity k. The final cache
/// content is the subset.
class CacheSelector : public SubsetSelector {
 public:
  std::string name() const override { return "CACH"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    ASQP_ASSIGN_OR_RETURN(
        ProvenancePool pool,
        CollectProvenance(*context.db, *context.workload, context.frame_size,
                          /*max_combos_per_query=*/20000));
    using Key = std::pair<uint32_t, uint32_t>;
    std::list<Key> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Key>::iterator> index;
    auto hash = [](const Key& key) {
      return (static_cast<uint64_t>(key.first) << 32) | key.second;
    };

    // Interleave queries (round-robin over their combos) to model
    // concurrent users rather than one neatly-ordered session.
    util::Rng rng(context.seed);
    std::vector<size_t> query_order(pool.combos.size());
    for (size_t i = 0; i < query_order.size(); ++i) query_order[i] = i;
    rng.Shuffle(&query_order);

    for (size_t q : query_order) {
      for (const Combo& combo : pool.combos[q]) {
        for (const Key& row : combo.rows) {
          const uint64_t h = hash(row);
          auto it = index.find(h);
          if (it != index.end()) {
            lru.splice(lru.begin(), lru, it->second);  // touch
            continue;
          }
          lru.push_front(row);
          index.emplace(h, lru.begin());
          if (lru.size() > context.k) {
            index.erase(hash(lru.back()));
            lru.pop_back();
          }
        }
      }
    }
    ApproximationSet out;
    for (const Key& row : lru) {
      out.Add(pool.table_names[row.first], row.second);
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------- QRD

/// Query result diversification [Liu & Jagadish]: cluster a sample of the
/// data in embedding space and select medoid-centered, evenly-spread
/// tuples. Workload-agnostic.
class DiversificationSelector : public SubsetSelector {
 public:
  std::string name() const override { return "QRD"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    util::Rng rng(context.seed);
    const embed::TupleEmbedder embedder(64);

    // Candidate sample: up to 8k tuples across tables (proportional).
    std::vector<std::pair<std::string, uint32_t>> candidates;
    const size_t total = context.db->TotalRows();
    const size_t cap = 8000;
    for (const std::string& name : context.db->TableNames()) {
      auto t = context.db->GetTable(name).value();
      const size_t share = std::max<size_t>(
          1, cap * t->num_rows() / std::max<size_t>(1, total));
      for (size_t r : rng.SampleIndices(t->num_rows(), share)) {
        candidates.emplace_back(name, static_cast<uint32_t>(r));
      }
    }
    std::vector<embed::Vector> points;
    points.reserve(candidates.size());
    for (const auto& [name, row] : candidates) {
      auto t = context.db->GetTable(name).value();
      points.push_back(embedder.EmbedRow(*t, row));
    }
    const size_t num_clusters =
        std::min<size_t>(64, std::max<size_t>(2, context.k / 16));
    cluster::KMeansOptions opts;
    opts.seed = context.seed;
    opts.max_iters = 20;
    ASQP_ASSIGN_OR_RETURN(cluster::ClusteringResult clustering,
                          cluster::KMeans(points, num_clusters, opts));
    // Evenly spread the budget across clusters (diversity objective).
    const std::vector<size_t> picks = sample::StratifiedSample(
        clustering.assignment, num_clusters, context.k, &rng);
    ApproximationSet out;
    for (size_t i : picks) {
      out.Add(candidates[i].first, candidates[i].second);
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------- SKY

/// Layered skyline: per table, map every column to a numeric "preference"
/// (numerics as-is, categoricals by frequency — the paper's extension),
/// then peel skyline layers until the per-table budget is filled.
class SkylineSelector : public SubsetSelector {
 public:
  std::string name() const override { return "SKY"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    const workloadgen::DatabaseStats stats =
        workloadgen::DatabaseStats::Collect(*context.db);
    ApproximationSet out;
    const size_t total = context.db->TotalRows();

    for (const std::string& name : context.db->TableNames()) {
      auto table = context.db->GetTable(name).value();
      const size_t budget = std::max<size_t>(
          1, context.k * table->num_rows() / std::max<size_t>(1, total));
      const workloadgen::TableStats* ts = stats.FindTable(name);
      if (ts == nullptr || table->num_rows() == 0) continue;

      // Cap the candidate rows for dominance checks (skyline is O(n^2)).
      util::Rng rng(context.seed ^ util::Fnv1a(name));
      const size_t cap = std::min<size_t>(table->num_rows(), 4000);
      std::vector<size_t> rows = rng.SampleIndices(table->num_rows(), cap);

      // Preference vectors.
      const size_t dims = table->num_columns();
      std::vector<std::vector<double>> prefs(rows.size(),
                                             std::vector<double>(dims, 0.0));
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t c = 0; c < dims; ++c) {
          const storage::Column& col = table->column(c);
          if (col.IsNull(rows[i])) {
            prefs[i][c] = -1e18;
          } else if (col.type() == storage::ValueType::kString) {
            prefs[i][c] = static_cast<double>(
                ts->columns[c].ValueFrequency(col.StringAt(rows[i])));
          } else {
            prefs[i][c] = col.NumericAt(rows[i]);
          }
        }
      }

      // Peel layers until the budget is met.
      std::vector<bool> taken(rows.size(), false);
      size_t selected = 0;
      while (selected < budget) {
        std::vector<size_t> layer;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (taken[i]) continue;
          bool dominated = false;
          for (size_t j = 0; j < rows.size() && !dominated; ++j) {
            if (taken[j] || i == j) continue;
            bool ge_all = true, gt_any = false;
            for (size_t c = 0; c < dims; ++c) {
              if (prefs[j][c] < prefs[i][c]) {
                ge_all = false;
                break;
              }
              if (prefs[j][c] > prefs[i][c]) gt_any = true;
            }
            dominated = ge_all && gt_any;
          }
          if (!dominated) layer.push_back(i);
        }
        if (layer.empty()) break;
        for (size_t i : layer) {
          taken[i] = true;
          if (selected < budget) {
            out.Add(name, static_cast<uint32_t>(rows[i]));
            ++selected;
          }
        }
      }
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------ VERD

/// VerdictDB-style variational sampling: per workload-relevant table,
/// stratify rows by the table's most selective categorical column and
/// draw a sqrt-allocated stratified sample sized by the table's share of
/// the workload.
class VerdictSelector : public SubsetSelector {
 public:
  std::string name() const override { return "VERD"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    util::Rng rng(context.seed);
    // Table usage frequency in the workload.
    std::map<std::string, size_t> usage;
    for (const auto& q : context.workload->queries()) {
      for (const auto& t : q.stmt.from) ++usage[t.table];
    }
    if (usage.empty()) {
      for (const std::string& name : context.db->TableNames()) usage[name] = 1;
    }
    size_t usage_total = 0;
    for (const auto& [_, u] : usage) usage_total += u;

    ApproximationSet out;
    for (const auto& [name, use_count] : usage) {
      auto table_result = context.db->GetTable(name);
      if (!table_result.ok()) continue;
      const storage::Table& table = *table_result.value();
      const size_t budget =
          std::max<size_t>(1, context.k * use_count / usage_total);

      // Stratify by the lowest-cardinality string column (if any).
      int strat_col = -1;
      size_t best_card = SIZE_MAX;
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (table.column(c).type() == storage::ValueType::kString) {
          const size_t card = table.column(c).dict_size();
          if (card > 1 && card < best_card) {
            best_card = card;
            strat_col = static_cast<int>(c);
          }
        }
      }
      if (strat_col < 0) {
        for (size_t r : rng.SampleIndices(table.num_rows(), budget)) {
          out.Add(name, static_cast<uint32_t>(r));
        }
        continue;
      }
      const storage::Column& col = table.column(strat_col);
      std::vector<size_t> strata(table.num_rows(), 0);
      for (size_t r = 0; r < table.num_rows(); ++r) {
        strata[r] = col.IsNull(r) ? 0 : col.StringCodeAt(r);
      }
      for (size_t r : sample::StratifiedSample(strata, col.dict_size() + 1,
                                               budget, &rng)) {
        out.Add(name, static_cast<uint32_t>(r));
      }
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------ QUIK

/// QuickR-style: maintain a catalog of per-table uniform samples whose
/// sizes follow table frequency in the workload *and* per-table
/// selectivity statistics (bigger samples for tables whose predicates are
/// more selective, so enough rows survive filtering).
class QuickrSelector : public SubsetSelector {
 public:
  std::string name() const override { return "QUIK"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    util::Rng rng(context.seed ^ 0x511CULL);

    // Per-table demand: usage count / estimated filter selectivity.
    std::map<std::string, double> demand;
    for (const auto& wq : context.workload->queries()) {
      auto bound = sql::Bind(wq.stmt, *context.db);
      if (!bound.ok()) continue;
      const sql::BoundQuery& q = bound.value();
      for (size_t t = 0; t < q.num_tables(); ++t) {
        const storage::Table& table = *q.tables[t];
        double selectivity = 1.0;
        if (!q.filters[t].empty() && table.num_rows() > 0) {
          // Sample-based selectivity estimate of the table's conjuncts.
          const size_t sample = std::min<size_t>(table.num_rows(), 200);
          size_t pass = 0;
          std::vector<uint32_t> row_ids(q.num_tables(), 0);
          exec::JoinedRow jr{&q.tables, row_ids.data()};
          for (size_t s = 0; s < sample; ++s) {
            row_ids[t] =
                static_cast<uint32_t>(rng.NextBounded(table.num_rows()));
            bool ok = true;
            for (const sql::ExprPtr& f : q.filters[t]) {
              if (!exec::EvaluatePredicate(*f, jr)) {
                ok = false;
                break;
              }
            }
            if (ok) ++pass;
          }
          selectivity =
              std::max(0.02, static_cast<double>(pass) /
                                 static_cast<double>(sample));
        }
        demand[table.name()] += 1.0 / selectivity;
      }
    }
    if (demand.empty()) {
      for (const std::string& name : context.db->TableNames()) {
        demand[name] = 1.0;
      }
    }
    double total_demand = 0.0;
    for (const auto& [_, d] : demand) total_demand += d;

    ApproximationSet out;
    for (const auto& [name, d] : demand) {
      auto table_result = context.db->GetTable(name);
      if (!table_result.ok()) continue;
      const size_t budget = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(context.k) * d /
                                 total_demand));
      for (size_t r : rng.SampleIndices(table_result.value()->num_rows(),
                                        budget)) {
        out.Add(name, static_cast<uint32_t>(r));
      }
    }
    out.Seal();
    return out;
  }
};

std::unique_ptr<SubsetSelector> MakeCach() {
  return std::make_unique<CacheSelector>();
}
std::unique_ptr<SubsetSelector> MakeQrd() {
  return std::make_unique<DiversificationSelector>();
}
std::unique_ptr<SubsetSelector> MakeSky() {
  return std::make_unique<SkylineSelector>();
}
std::unique_ptr<SubsetSelector> MakeVerd() {
  return std::make_unique<VerdictSelector>();
}
std::unique_ptr<SubsetSelector> MakeQuik() {
  return std::make_unique<QuickrSelector>();
}

}  // namespace baselines
}  // namespace asqp
