// Naive baselines: RAN (random sampling), TOP (top queried tuples),
// BRT (time-capped brute force), GRE (time-capped greedy).
#include <algorithm>
#include <map>
#include <unordered_map>

#include "baselines/provenance_pool.h"
#include "baselines/selector.h"
#include "util/exec_context.h"

namespace asqp {
namespace baselines {

namespace {

using storage::ApproximationSet;
using util::Result;

/// Helper: all (table, row) pairs of the database, deterministic order.
std::vector<std::pair<std::string, uint32_t>> AllTuples(
    const storage::Database& db) {
  std::vector<std::pair<std::string, uint32_t>> out;
  for (const std::string& name : db.TableNames()) {
    auto t = db.GetTable(name).value();
    for (uint32_t r = 0; r < t->num_rows(); ++r) out.emplace_back(name, r);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------------- RAN

class RandomSelector : public SubsetSelector {
 public:
  std::string name() const override { return "RAN"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    util::Rng rng(context.seed);
    const auto all = AllTuples(*context.db);
    ApproximationSet out;
    for (size_t i : rng.SampleIndices(all.size(), context.k)) {
      out.Add(all[i].first, all[i].second);
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------- TOP

/// Rank base tuples by how many workload queries' results they appear in;
/// keep the most-queried tuples first.
class TopQueriedSelector : public SubsetSelector {
 public:
  std::string name() const override { return "TOP"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    ASQP_ASSIGN_OR_RETURN(
        ProvenancePool pool,
        CollectProvenance(*context.db, *context.workload, context.frame_size,
                          /*max_combos_per_query=*/20000));
    // Count distinct queries per base tuple.
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> query_count;
    for (size_t q = 0; q < pool.combos.size(); ++q) {
      std::map<std::pair<uint32_t, uint32_t>, bool> seen_in_q;
      for (const Combo& combo : pool.combos[q]) {
        for (const auto& row : combo.rows) {
          if (!seen_in_q.count(row)) {
            seen_in_q.emplace(row, true);
            ++query_count[row];
          }
        }
      }
    }
    std::vector<std::pair<uint32_t, std::pair<uint32_t, uint32_t>>> ranked;
    ranked.reserve(query_count.size());
    for (const auto& [row, count] : query_count) ranked.emplace_back(count, row);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    ApproximationSet out;
    size_t taken = 0;
    for (const auto& [count, row] : ranked) {
      if (taken >= context.k) break;
      out.Add(pool.table_names[row.first], row.second);
      ++taken;
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------- BRT

/// Exhaustive search, necessarily time-capped: enumerate random candidate
/// subsets of result combos (the only tuples that can ever score) and keep
/// the best under the pool's coverage score. With an unlimited deadline
/// this converges to the optimum; in practice the cap binds long before.
class BruteForceSelector : public SubsetSelector {
 public:
  std::string name() const override { return "BRT"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    ASQP_ASSIGN_OR_RETURN(
        ProvenancePool pool,
        CollectProvenance(*context.db, *context.workload, context.frame_size,
                          /*max_combos_per_query=*/5000));
    util::Rng rng(context.seed);

    // Flatten combos.
    struct Entry {
      size_t query;
      const Combo* combo;
      uint32_t cost;
    };
    std::vector<Entry> entries;
    for (size_t q = 0; q < pool.combos.size(); ++q) {
      for (const Combo& c : pool.combos[q]) {
        entries.push_back({q, &c, static_cast<uint32_t>(c.rows.size())});
      }
    }
    if (entries.empty()) {
      ApproximationSet empty;
      empty.Seal();
      return empty;
    }

    std::vector<size_t> best_selection;
    double best_score = -1.0;
    size_t trials = 0;
    // Keep trying random budget-filling subsets until the deadline. The
    // first trial always runs (an already-expired deadline still yields a
    // valid, if low-quality, selection); afterwards the shared ticker
    // amortizes the clock reads.
    util::DeadlineTicker ticker(context.deadline, /*stride=*/32);
    while (trials == 0 || (!ticker.Expired("BRT search") && trials < 1000000)) {
      ++trials;
      std::vector<size_t> order(entries.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(&order);

      std::vector<size_t> chosen_per_query(pool.combos.size(), 0);
      std::vector<size_t> selection;
      size_t used = 0;
      for (size_t idx : order) {
        const Entry& e = entries[idx];
        if (used + e.cost > context.k) continue;
        used += e.cost;  // upper bound: ignores sharing across combos
        selection.push_back(idx);
        ++chosen_per_query[e.query];
        if (used >= context.k) break;
      }
      const double score = pool.Score(chosen_per_query);
      if (score > best_score) {
        best_score = score;
        best_selection = std::move(selection);
      }
    }

    ApproximationSet out;
    for (size_t idx : best_selection) {
      for (const auto& [t, r] : entries[idx].combo->rows) {
        out.Add(pool.table_names[t], r);
      }
    }
    out.Seal();
    return out;
  }
};

// ------------------------------------------------------------------- GRE

/// Greedy marginal gain: repeatedly add the result combo with the best
/// score-gain per tuple cost, until the budget or the deadline binds.
class GreedySelector : public SubsetSelector {
 public:
  std::string name() const override { return "GRE"; }

  Result<ApproximationSet> Select(const SelectorContext& context) const override {
    ASQP_ASSIGN_OR_RETURN(
        ProvenancePool pool,
        CollectProvenance(*context.db, *context.workload, context.frame_size,
                          /*max_combos_per_query=*/5000));
    struct Entry {
      size_t query;
      const Combo* combo;
      bool taken = false;
    };
    std::vector<Entry> entries;
    for (size_t q = 0; q < pool.combos.size(); ++q) {
      for (const Combo& c : pool.combos[q]) entries.push_back({q, &c, false});
    }

    ApproximationSet out;
    std::vector<size_t> chosen_per_query(pool.combos.size(), 0);
    std::map<std::pair<uint32_t, uint32_t>, bool> in_set;
    size_t used = 0;

    // Each greedy round scans every entry, so poll the clock every round.
    util::DeadlineTicker ticker(context.deadline, /*stride=*/1);
    while (used < context.k && !ticker.Expired("GRE search")) {
      double best_gain = 0.0;
      size_t best_idx = entries.size();
      size_t best_new_tuples = 0;
      for (size_t i = 0; i < entries.size(); ++i) {
        const Entry& e = entries[i];
        if (e.taken) continue;
        // Marginal score gain of finishing this combo.
        const double before =
            std::min(1.0, static_cast<double>(chosen_per_query[e.query]) /
                              pool.targets[e.query]);
        const double after =
            std::min(1.0, static_cast<double>(chosen_per_query[e.query] + 1) /
                              pool.targets[e.query]);
        const double gain = pool.weights[e.query] * (after - before);
        if (gain <= 0.0) continue;
        size_t new_tuples = 0;
        for (const auto& row : e.combo->rows) {
          if (!in_set.count(row)) ++new_tuples;
        }
        if (used + new_tuples > context.k) continue;
        // Gain per *new* tuple (free combos — fully shared — rank first).
        const double ratio =
            gain / (new_tuples == 0 ? 0.1 : static_cast<double>(new_tuples));
        if (ratio > best_gain) {
          best_gain = ratio;
          best_idx = i;
          best_new_tuples = new_tuples;
        }
      }
      if (best_idx == entries.size()) break;
      Entry& e = entries[best_idx];
      e.taken = true;
      ++chosen_per_query[e.query];
      for (const auto& row : e.combo->rows) {
        if (!in_set.count(row)) {
          in_set.emplace(row, true);
          out.Add(pool.table_names[row.first], row.second);
        }
      }
      used += best_new_tuples;
    }
    out.Seal();
    return out;
  }
};

std::unique_ptr<SubsetSelector> MakeRan() {
  return std::make_unique<RandomSelector>();
}
std::unique_ptr<SubsetSelector> MakeTop() {
  return std::make_unique<TopQueriedSelector>();
}
std::unique_ptr<SubsetSelector> MakeBrt() {
  return std::make_unique<BruteForceSelector>();
}
std::unique_ptr<SubsetSelector> MakeGre() {
  return std::make_unique<GreedySelector>();
}

}  // namespace baselines
}  // namespace asqp
