#include "baselines/provenance_pool.h"

#include <algorithm>
#include <map>

#include "exec/executor.h"
#include "sql/binder.h"

namespace asqp {
namespace baselines {

util::Result<ProvenancePool> CollectProvenance(
    const storage::Database& db, const metric::Workload& workload,
    int frame_size, size_t max_combos_per_query) {
  ProvenancePool pool;
  exec::QueryEngine engine;
  storage::DatabaseView view(&db);
  std::map<std::string, uint32_t> table_ids;

  const metric::Workload spj = workload.ToSpjWorkload();
  pool.combos.resize(spj.size());
  pool.targets.assign(spj.size(), 1.0);
  pool.weights.resize(spj.size());

  for (size_t q = 0; q < spj.size(); ++q) {
    pool.weights[q] = spj.query(q).weight;
    sql::SelectStatement stmt = spj.query(q).stmt.Clone();
    stmt.limit = -1;
    stmt.order_by.clear();
    auto bound = sql::Bind(stmt, db);
    if (!bound.ok()) continue;
    auto prov = engine.ExecuteWithProvenance(bound.value(), view, 0);
    if (!prov.ok()) continue;

    const size_t full_size = prov.value().tuples.size();
    pool.targets[q] = static_cast<double>(std::max<size_t>(
        1, std::min<size_t>(full_size == 0 ? 1 : full_size,
                            static_cast<size_t>(frame_size))));

    std::vector<uint32_t> ids(prov.value().table_names.size());
    for (size_t t = 0; t < ids.size(); ++t) {
      const std::string& name = prov.value().table_names[t];
      auto [it, inserted] =
          table_ids.emplace(name, static_cast<uint32_t>(table_ids.size()));
      if (inserted) pool.table_names.push_back(name);
      ids[t] = it->second;
    }
    const size_t keep = max_combos_per_query == 0
                            ? full_size
                            : std::min(full_size, max_combos_per_query);
    pool.combos[q].reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      Combo combo;
      combo.rows.reserve(ids.size());
      for (size_t t = 0; t < ids.size(); ++t) {
        combo.rows.emplace_back(ids[t], prov.value().tuples[i][t]);
      }
      // Deterministic dedupe within the combo (self-joins repeat tables).
      std::sort(combo.rows.begin(), combo.rows.end());
      combo.rows.erase(std::unique(combo.rows.begin(), combo.rows.end()),
                       combo.rows.end());
      pool.combos[q].push_back(std::move(combo));
    }
  }
  return pool;
}

}  // namespace baselines
}  // namespace asqp
