// Shared helper for the query-aware baselines (TOP, GRE, BRT, CACH):
// execute the training workload with provenance and expose each query's
// result combos (joined base tuples) plus the metric targets, so the
// baselines can reason about coverage without re-running SQL.
#pragma once

#include <string>
#include <vector>

#include "metric/workload.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace baselines {

/// One result row of some workload query, as its base tuples.
struct Combo {
  std::vector<std::pair<uint32_t, uint32_t>> rows;  // (table id, row id)
};

struct ProvenancePool {
  std::vector<std::string> table_names;  // table id -> name

  /// combos[q] = result combos of workload query q (possibly capped).
  std::vector<std::vector<Combo>> combos;
  /// min(F, |q(T)|) per query (uncapped result size), >= 1.
  std::vector<double> targets;
  std::vector<double> weights;

  /// Coverage score of choosing `chosen[q]` combos per query:
  /// sum_q w_q min(1, chosen_q / target_q).
  double Score(const std::vector<size_t>& chosen) const {
    double total = 0.0;
    for (size_t q = 0; q < targets.size(); ++q) {
      total += weights[q] *
               std::min(1.0, static_cast<double>(chosen[q]) / targets[q]);
    }
    return total;
  }
};

/// Execute every workload query with provenance. `max_combos_per_query`
/// caps stored combos (0 = unlimited). Queries that fail to execute get an
/// empty combo list and target 1.
[[nodiscard]] util::Result<ProvenancePool> CollectProvenance(const storage::Database& db,
                                               const metric::Workload& workload,
                                               int frame_size,
                                               size_t max_combos_per_query);

}  // namespace baselines
}  // namespace asqp
