#include "baselines/selector.h"

#include "util/string_util.h"

namespace asqp {
namespace baselines {

// Factories defined in naive.cc / database.cc.
std::unique_ptr<SubsetSelector> MakeRan();
std::unique_ptr<SubsetSelector> MakeTop();
std::unique_ptr<SubsetSelector> MakeBrt();
std::unique_ptr<SubsetSelector> MakeGre();
std::unique_ptr<SubsetSelector> MakeCach();
std::unique_ptr<SubsetSelector> MakeQrd();
std::unique_ptr<SubsetSelector> MakeSky();
std::unique_ptr<SubsetSelector> MakeVerd();
std::unique_ptr<SubsetSelector> MakeQuik();

util::Result<std::unique_ptr<SubsetSelector>> MakeBaseline(
    const std::string& code) {
  const std::string upper = [&] {
    std::string s = util::ToLower(code);
    for (char& c : s) c = static_cast<char>(std::toupper(c));
    return s;
  }();
  if (upper == "RAN") return MakeRan();
  if (upper == "TOP") return MakeTop();
  if (upper == "BRT") return MakeBrt();
  if (upper == "GRE") return MakeGre();
  if (upper == "CACH") return MakeCach();
  if (upper == "QRD") return MakeQrd();
  if (upper == "SKY") return MakeSky();
  if (upper == "VERD") return MakeVerd();
  if (upper == "QUIK") return MakeQuik();
  return util::Status::NotFound(
      util::Format("unknown baseline '%s'", code.c_str()));
}

std::vector<std::unique_ptr<SubsetSelector>> AllBaselines() {
  std::vector<std::unique_ptr<SubsetSelector>> out;
  out.push_back(MakeCach());
  out.push_back(MakeRan());
  out.push_back(MakeQuik());
  out.push_back(MakeVerd());
  out.push_back(MakeSky());
  out.push_back(MakeBrt());
  out.push_back(MakeQrd());
  out.push_back(MakeTop());
  out.push_back(MakeGre());
  return out;
}

}  // namespace baselines
}  // namespace asqp
