// Baseline subset selectors (Section 6.1): every competitor from Figure 2
// that selects *real* tuples implements SubsetSelector. (The VAE
// generative baseline does not select real tuples; it lives in src/aqp and
// is scored by result-intersection in the bench harness.)
//
//   RAN  random sampling                     TOP  top queried tuples
//   BRT  time-capped brute force             GRE  time-capped greedy
//   CACH LRU cache simulation                QRD  result diversification
//   SKY  skyline (layered)                   VERD VerdictDB-style sampling
//   QUIK QuickR-style catalog sampling
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metric/workload.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace asqp {
namespace baselines {

struct SelectorContext {
  const storage::Database* db = nullptr;
  /// Training workload (used by query-aware baselines; ignored by RAN,
  /// QRD, SKY).
  const metric::Workload* workload = nullptr;
  /// Memory budget k (total tuples).
  size_t k = 1000;
  /// Frame size F of the quality metric.
  int frame_size = 50;
  uint64_t seed = 1;
  /// Time cap for the search-based baselines (BRT, GRE). The paper caps
  /// them at 48 hours; the bench harness uses seconds.
  util::Deadline deadline = util::Deadline::Unlimited();
};

class SubsetSelector {
 public:
  virtual ~SubsetSelector() = default;
  virtual std::string name() const = 0;
  [[nodiscard]] virtual util::Result<storage::ApproximationSet> Select(
      const SelectorContext& context) const = 0;
};

/// Construct a baseline by its Figure 2 code (case-insensitive):
/// RAN, BRT, GRE, TOP, CACH, QRD, SKY, VERD, QUIK.
[[nodiscard]] util::Result<std::unique_ptr<SubsetSelector>> MakeBaseline(
    const std::string& code);

/// All tuple-selecting baselines, in the paper's Figure 2 order.
std::vector<std::unique_ptr<SubsetSelector>> AllBaselines();

}  // namespace baselines
}  // namespace asqp
