#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

namespace asqp {
namespace cluster {

namespace {

using embed::L2Distance;
using embed::Vector;

/// k-means++ seeding: first center uniform, then proportional to squared
/// distance from the nearest chosen center.
std::vector<size_t> PlusPlusSeeds(const std::vector<Vector>& points, size_t k,
                                  util::Rng* rng) {
  std::vector<size_t> seeds;
  seeds.push_back(rng->NextBounded(points.size()));
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (seeds.size() < k) {
    const Vector& last = points[seeds.back()];
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = L2Distance(points[i], last);
      d2[i] = std::min(d2[i], static_cast<double>(d) * d);
    }
    const size_t next = rng->WeightedIndex(d2);
    seeds.push_back(next);
  }
  return seeds;
}

size_t NearestCentroid(const Vector& p, const std::vector<Vector>& centroids) {
  size_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    const float d = L2Distance(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double Inertia(const std::vector<Vector>& points,
               const std::vector<size_t>& assignment,
               const std::vector<Vector>& centroids) {
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const float d = L2Distance(points[i], centroids[assignment[i]]);
    total += static_cast<double>(d) * d;
  }
  return total;
}

}  // namespace

util::Result<ClusteringResult> KMeans(const std::vector<Vector>& points,
                                      size_t k, KMeansOptions options) {
  if (points.empty()) {
    return util::Status::InvalidArgument("k-means over empty point set");
  }
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  k = std::min(k, points.size());
  const size_t dim = points[0].size();

  util::Rng rng(options.seed);
  ClusteringResult result;
  const std::vector<size_t> seeds = PlusPlusSeeds(points, k, &rng);
  result.centroids.reserve(k);
  for (size_t s : seeds) result.centroids.push_back(points[s]);
  result.assignment.assign(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = NearestCentroid(points[i], result.centroids);
      if (c != result.assignment[i]) {
        result.assignment[i] = c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    std::vector<Vector> sums(k, Vector(dim, 0.0f));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      embed::AddInPlace(&sums[result.assignment[i]], points[i]);
      ++counts[result.assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextBounded(points.size())];
        continue;
      }
      embed::ScaleInPlace(&sums[c], 1.0f / static_cast<float>(counts[c]));
      result.centroids[c] = std::move(sums[c]);
    }
  }

  // Nearest point to each centroid doubles as a medoid.
  result.medoids.assign(k, 0);
  std::vector<float> best(k, std::numeric_limits<float>::infinity());
  for (size_t i = 0; i < points.size(); ++i) {
    const size_t c = result.assignment[i];
    const float d = L2Distance(points[i], result.centroids[c]);
    if (d < best[c]) {
      best[c] = d;
      result.medoids[c] = i;
    }
  }
  result.inertia = Inertia(points, result.assignment, result.centroids);
  return result;
}

util::Result<ClusteringResult> KMedoids(const std::vector<Vector>& points,
                                        size_t k, KMeansOptions options) {
  if (points.empty()) {
    return util::Status::InvalidArgument("k-medoids over empty point set");
  }
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  k = std::min(k, points.size());

  util::Rng rng(options.seed);
  std::vector<size_t> medoids = PlusPlusSeeds(points, k, &rng);
  std::vector<size_t> assignment(points.size(), 0);

  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    // Assign each point to the nearest medoid.
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = 0;
      float best_d = std::numeric_limits<float>::infinity();
      for (size_t m = 0; m < k; ++m) {
        const float d = L2Distance(points[i], points[medoids[m]]);
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      assignment[i] = best;
    }
    // Update each medoid to the in-cluster point minimizing total distance.
    bool changed = false;
    for (size_t m = 0; m < k; ++m) {
      std::vector<size_t> members;
      for (size_t i = 0; i < points.size(); ++i) {
        if (assignment[i] == m) members.push_back(i);
      }
      if (members.empty()) continue;
      size_t best_point = medoids[m];
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t candidate : members) {
        double cost = 0.0;
        for (size_t other : members) {
          cost += L2Distance(points[candidate], points[other]);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_point = candidate;
        }
      }
      if (best_point != medoids[m]) {
        medoids[m] = best_point;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
  }

  ClusteringResult result;
  result.assignment = std::move(assignment);
  result.medoids = medoids;
  result.centroids.reserve(k);
  for (size_t m : medoids) result.centroids.push_back(points[m]);
  result.inertia = Inertia(points, result.assignment, result.centroids);
  return result;
}

}  // namespace cluster
}  // namespace asqp
