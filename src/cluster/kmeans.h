// k-means++ and PAM-style k-medoids over embedding vectors. Used for query
// representative selection (pre-processing), the QRD baseline, and the
// interest-drift experiment's workload partitioning.
#pragma once

#include <cstddef>
#include <vector>

#include "embed/vector_ops.h"
#include "util/random.h"
#include "util/status.h"

namespace asqp {
namespace cluster {

struct ClusteringResult {
  /// assignment[i] = cluster of point i.
  std::vector<size_t> assignment;
  std::vector<embed::Vector> centroids;
  /// For k-medoids: index of each cluster's medoid point. For k-means:
  /// index of the point nearest each centroid.
  std::vector<size_t> medoids;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
};

struct KMeansOptions {
  size_t max_iters = 50;
  uint64_t seed = 17;
};

/// Lloyd's algorithm with k-means++ seeding. `k` is clamped to the number
/// of points; fails only on empty input or k == 0.
[[nodiscard]] util::Result<ClusteringResult> KMeans(const std::vector<embed::Vector>& points,
                                      size_t k, KMeansOptions options = {});

/// k-medoids via k-means++ seeding followed by alternating
/// assignment / medoid-update (Voronoi iteration). Distances are L2.
[[nodiscard]] util::Result<ClusteringResult> KMedoids(
    const std::vector<embed::Vector>& points, size_t k,
    KMeansOptions options = {});

}  // namespace cluster
}  // namespace asqp
