#include "core/config.h"

#include <algorithm>

namespace asqp {
namespace core {

const char* EnvKindName(EnvKind kind) {
  switch (kind) {
    case EnvKind::kGsl: return "GSL";
    case EnvKind::kDrp: return "DRP";
    case EnvKind::kHybrid: return "DRP+GSL";
  }
  return "?";
}

AsqpConfig AsqpConfig::Light() {
  AsqpConfig config;
  config.representative_fraction = 0.25;
  config.trainer.learning_rate = 5e-3;  // the paper's "high learning rate"
  config.trainer.iterations = std::max<size_t>(8, config.trainer.iterations / 2);
  config.trainer.early_stop_patience = 3;
  config.trainer.early_stop_min_delta = 5e-3;
  config.pool_target = 800;
  return config;
}

AsqpConfig AsqpConfig::FromTimeBudget(double budget_fraction) {
  budget_fraction = std::clamp(budget_fraction, 0.05, 1.0);
  const AsqpConfig full;
  const AsqpConfig light = Light();
  AsqpConfig config;
  auto lerp = [budget_fraction](double lo, double hi) {
    return lo + (hi - lo) * budget_fraction;
  };
  config.representative_fraction =
      lerp(light.representative_fraction, full.representative_fraction);
  config.pool_target = static_cast<size_t>(
      lerp(static_cast<double>(light.pool_target),
           static_cast<double>(full.pool_target)));
  config.trainer.iterations = static_cast<size_t>(
      lerp(static_cast<double>(light.trainer.iterations),
           static_cast<double>(full.trainer.iterations)));
  config.trainer.learning_rate =
      lerp(light.trainer.learning_rate, full.trainer.learning_rate);
  if (budget_fraction < 0.75) {
    config.trainer.early_stop_patience = light.trainer.early_stop_patience;
    config.trainer.early_stop_min_delta = light.trainer.early_stop_min_delta;
  }
  return config;
}

}  // namespace core
}  // namespace asqp
