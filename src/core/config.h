// Configuration of the full ASQP-RL system, including the ASQP-Light
// preset and the adaptive time-budget configuration (Section 4.5).
#pragma once

#include <cstdint>
#include <string>

#include "relax/relax.h"
#include "rl/trainer.h"

namespace asqp {
namespace core {

enum class EnvKind { kGsl, kDrp, kHybrid };

const char* EnvKindName(EnvKind kind);

struct AsqpConfig {
  /// Memory budget k: total base tuples in the approximation set.
  size_t k = 1000;
  /// Frame size F: result tuples a user can cognitively process.
  int frame_size = 50;

  // ---- Pre-processing (Section 4.2).
  /// Number of query representatives selected by clustering the embedded
  /// generalized workload. The fraction actually executed is
  /// `representative_fraction` (ASQP-Light executes fewer).
  size_t num_representatives = 24;
  double representative_fraction = 1.0;
  /// Pool size after variational subsampling. Per-query coverage
  /// reservations (up to 3F satisfying tuples per representative) may push
  /// the final pool slightly above this target.
  size_t pool_target = 1500;
  /// Cap on joined tuples collected per executed representative.
  size_t max_tuples_per_rep = 5000;
  /// Pool tuples grouped per action.
  size_t action_group_size = 4;
  /// Reserve up to 3F satisfying tuples per representative before
  /// variational subsampling (prevents the subsample from starving a
  /// query of coverage). Disable only for ablation.
  bool reserve_query_quota = true;
  /// Embedding dimensionality (queries and tuples).
  size_t embed_dim = 64;
  relax::RelaxOptions relax;
  /// Statistics-generated exploration queries appended (at low weight) to
  /// the training workload before clustering — together with relaxation,
  /// the C4 generalization mechanism for future, unseen queries.
  size_t exploration_queries = 4;
  double exploration_weight = 0.05;

  // ---- Environment (Section 5.2).
  EnvKind env = EnvKind::kGsl;
  size_t drp_horizon = 64;
  size_t hybrid_refine_horizon = 32;
  /// Queries per training batch (each episode is rewarded on one batch).
  size_t batch_queries = 8;

  // ---- RL (Section 5.1).
  rl::TrainerConfig trainer;

  // ---- Inference (Section 4.4).
  /// Answerability threshold: estimates >= this are served from the
  /// approximation set.
  double answerable_threshold = 0.5;
  /// Interest drift: fine-tune after this many out-of-distribution queries
  /// whose deviation confidence exceeds `drift_confidence`.
  size_t drift_trigger = 3;
  double drift_confidence = 0.8;
  /// Per-query deadline for the approximation-set execution path in
  /// Answer() (seconds; 0 = unlimited). On timeout the mediator falls back
  /// to an unbounded full-database execution and flags the result.
  double answer_deadline_seconds = 0.0;
  /// Execution threads for the mediator's query engine and the
  /// pre-processing representative executions (morsel-parallel scans +
  /// hash-join probe; see exec::ExecOptions::num_threads). 1 = sequential
  /// (the default — callers opt in to parallel answering explicitly).
  /// Results are identical across thread counts.
  size_t exec_threads = 1;
  /// Rows per execution morsel (see exec::ExecOptions::morsel_rows). The
  /// morsel decomposition is part of the deterministic plan: aggregation
  /// folds per-morsel partials in morsel order even sequentially, so this
  /// knob — unlike exec_threads — can affect the last ulp of a
  /// floating-point SUM/AVG. 0 = engine default (16384).
  size_t exec_morsel_rows = 0;
  /// Run the cost-based planner (src/plan) on the mediator's executions:
  /// filter pushdown, constant folding, and cost-ordered joins driven by
  /// column statistics collected at model construction. Results are
  /// byte-identical either way (see exec::ExecOptions::enable_planner);
  /// off is for A/B comparison.
  bool planner = true;
  /// Build ordered secondary indexes (storage::IndexCatalog) over every
  /// column of the approximation set at MaterializeSet / FineTune, stamped
  /// with the model generation. The set is bounded by k tuples and rebuilt
  /// only on fine-tune, so exhaustive indexing is nearly free; the
  /// planner's access-path rule picks per-query whether an index range
  /// scan beats the full scan. Results are byte-identical either way. Has
  /// no effect when `planner` is false (access paths are a planner rule).
  bool index_auto = true;
  /// Explicit index spec: comma-separated "table.column" pairs (column by
  /// name) overriding index_auto's every-column default. An unparsable or
  /// unresolvable spec degrades to no indexes (full scans), never to an
  /// error — index presence must not gate answering.
  std::string index_columns;

  // ---- Serving (serve::ServeEngine).
  /// Concurrent Answer() calls admitted into execution at once; further
  /// sessions queue FIFO behind them (see serve_queue_capacity). Bounds
  /// how many queries share the process-wide execution pool.
  size_t serve_max_inflight = 4;
  /// Sessions allowed to queue for admission once serve_max_inflight
  /// queries are executing; arrivals beyond this are rejected immediately
  /// with kResourceExhausted (back-pressure, not unbounded queueing).
  size_t serve_queue_capacity = 16;
  /// Worker threads in the serving layer's shared execution pool (total
  /// morsel concurrency = workers + the calling session's thread). 0 =
  /// derive from exec_threads.
  size_t serve_pool_threads = 0;
  /// Byte budget for the fingerprint-keyed answer cache (LRU within the
  /// budget; 0 disables caching).
  size_t cache_bytes = 64ull << 20;

  // ---- Degradation ladder (aqp::LearnedFallback + AsqpModel::Answer).
  /// Fit an ML-AQP-style learned answerer over the approximation set at
  /// model-build / fine-tune time, and use it as the tier between the
  /// approximation set and the full database when the full-database
  /// fallback is unaffordable (deadline budget, tripped breaker).
  bool fallback_learned_enabled = true;
  /// Bounded retries of the approximation-set attempt on *transient*
  /// failures (resource exhaustion, injected faults, internal errors; never
  /// deadline/cancellation). 0 disables retrying.
  size_t fallback_retry_attempts = 2;
  /// Base backoff before the first retry; doubles per retry, jittered
  /// deterministically (util::RetryPolicy).
  double fallback_retry_backoff_seconds = 0.001;
  /// Consecutive late full-database fallbacks (finished after the caller's
  /// deadline had already expired) that trip the circuit breaker guarding
  /// the full-database tier. 0 disables the breaker.
  size_t fallback_breaker_threshold = 5;
  /// Seconds the tripped breaker stays open before a half-open trial.
  double fallback_breaker_cooldown_seconds = 2.0;
  /// Cost gate for the full-database tier: estimated scan throughput in
  /// rows/second. The tier is attempted only when
  /// (rows in the query's tables) / this <= the caller's remaining
  /// deadline budget. 0 = no gate (always afford, matching the pre-ladder
  /// behavior of an unlimited degraded execution).
  double fallback_full_db_rows_per_second = 0.0;
  /// Serving layer: when admission fails (queue full, deadline expired
  /// while queued, cancelled while queued), answer supported aggregate
  /// queries from the learned fallback instead of erroring (load
  /// shedding). Unsupported queries keep the typed admission error.
  bool serve_shed_to_learned = true;
  /// Gather window for batched multi-query execution (milliseconds): an
  /// admitted query waits up to this long for peers touching the same
  /// table set before its batch executes as one shared scan pass per
  /// table. 0 disables batching (every query executes individually, the
  /// pre-batching behavior). Results are byte-identical either way.
  double serve_batch_window_ms = 0.0;
  /// Upper bound on queries grouped into one batch; a group that fills up
  /// executes immediately without waiting out the gather window.
  size_t serve_batch_max_queries = 8;
  /// Run the serving layer's sessions through the async completion path
  /// (ServeEngine::AnswerAsync): tickets queue to the batch scheduler and
  /// callers wait on an AnswerFuture instead of pinning a thread through
  /// admission + execution. Requires serve_batch_window_ms handling via
  /// the scheduler; with batching disabled the future resolves on the
  /// caller's thread (synchronous semantics, async interface).
  bool serve_async = false;

  uint64_t seed = 1;

  /// ASQP-Light (Section 4.5): 25% of representatives executed, higher
  /// learning rate, aggressive early stopping. ~2x faster setup for ~10%
  /// quality loss.
  static AsqpConfig Light();

  /// Adaptive configuration: interpolate between Light and the default
  /// given a relative time budget in (0, 1]; 1 = full quality.
  static AsqpConfig FromTimeBudget(double budget_fraction);
};

}  // namespace core
}  // namespace asqp
