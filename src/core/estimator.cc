#include "core/estimator.h"

#include <algorithm>
#include <cmath>

namespace asqp {
namespace core {

AnswerabilityEstimator::AnswerabilityEstimator(
    embed::QueryEmbedder embedder,
    std::vector<embed::Vector> representative_embeddings,
    std::vector<double> representative_coverage)
    : embedder_(std::move(embedder)),
      embeddings_(std::move(representative_embeddings)),
      coverage_(std::move(representative_coverage)) {
  coverage_.resize(embeddings_.size(), 0.0);
}

void AnswerabilityEstimator::SetCoverage(size_t idx, double coverage) {
  if (idx < coverage_.size()) {
    coverage_[idx] = std::clamp(coverage, 0.0, 1.0);
  }
}

double AnswerabilityEstimator::Similarity(
    const sql::SelectStatement& stmt) const {
  if (embeddings_.empty()) return 0.0;
  const embed::Vector v = embedder_.Embed(stmt);
  float best = -1.0f;
  for (const embed::Vector& e : embeddings_) {
    best = std::max(best, embed::Cosine(v, e));
  }
  // Negative cosine means "unrelated" for these hashed embeddings.
  return std::clamp(static_cast<double>(best), 0.0, 1.0);
}

double AnswerabilityEstimator::Estimate(
    const sql::SelectStatement& stmt) const {
  if (embeddings_.empty()) return 0.0;
  const embed::Vector v = embedder_.Embed(stmt);

  // Softmax-weighted coverage of the nearest representatives, sharpened so
  // that the top match dominates, then gated by raw similarity: a query
  // unlike anything seen in training scores near zero even if training
  // coverage was perfect.
  double best_sim = -1.0;
  double num = 0.0;
  double den = 0.0;
  constexpr double kTemp = 8.0;
  for (size_t i = 0; i < embeddings_.size(); ++i) {
    const double sim = static_cast<double>(embed::Cosine(v, embeddings_[i]));
    best_sim = std::max(best_sim, sim);
    const double w = std::exp(kTemp * sim);
    num += w * coverage_[i];
    den += w;
  }
  const double weighted_coverage = den > 0.0 ? num / den : 0.0;
  // Similarity gate: smoothstep from 0 at cos<=0.3 to 1 at cos>=0.95, so
  // same-table queries with different predicate semantics are gated down.
  const double t = std::clamp((best_sim - 0.3) / 0.65, 0.0, 1.0);
  const double gate = t * t * (3.0 - 2.0 * t);
  return std::clamp(gate * weighted_coverage, 0.0, 1.0);
}

}  // namespace core
}  // namespace asqp
