// Answerability estimation (Section 4.4): given an incoming query, decide
// whether the approximation set is likely to answer it, *without* running
// the query. The estimate blends (a) the query's embedding similarity to
// the training representatives and (b) the system's measured coverage of
// the nearest representatives — a query close to well-covered training
// queries is answerable; anything far from the training distribution is
// not.
#pragma once

#include <vector>

#include "embed/embedder.h"
#include "sql/ast.h"

namespace asqp {
namespace core {

class AnswerabilityEstimator {
 public:
  AnswerabilityEstimator(embed::QueryEmbedder embedder,
                         std::vector<embed::Vector> representative_embeddings,
                         std::vector<double> representative_coverage);

  /// Estimated probability in [0, 1] that the approximation set covers
  /// this query's frame.
  double Estimate(const sql::SelectStatement& stmt) const;

  /// Deviation confidence = how certain we are the query is
  /// out-of-distribution (drives drift detection): the complement of the
  /// coverage-gated answerability estimate.
  double DeviationConfidence(const sql::SelectStatement& stmt) const {
    return 1.0 - Estimate(stmt);
  }

  /// Max cosine similarity (mapped to [0,1]) to any training representative.
  double Similarity(const sql::SelectStatement& stmt) const;

  /// Record the measured coverage of representative `idx` (updated after
  /// training / fine-tuning so estimates track real performance).
  void SetCoverage(size_t idx, double coverage);

  size_t num_representatives() const { return embeddings_.size(); }

 private:
  embed::QueryEmbedder embedder_;
  std::vector<embed::Vector> embeddings_;
  std::vector<double> coverage_;
};

}  // namespace core
}  // namespace asqp
