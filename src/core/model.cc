#include "core/model.h"

#include <algorithm>

#include "core/trainer.h"
#include "metric/score.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "util/thread_pool.h"

namespace asqp {
namespace core {

namespace {

exec::ExecOptions ExecOptionsFor(const AsqpConfig& config) {
  exec::ExecOptions options;
  options.num_threads = config.exec_threads;
  if (config.exec_morsel_rows > 0) options.morsel_rows = config.exec_morsel_rows;
  return options;
}

}  // namespace

AsqpModel::AsqpModel(const storage::Database* db, AsqpConfig config,
                     PreprocessResult preprocess, rl::Policy policy)
    : db_(db),
      config_(std::move(config)),
      preprocess_(std::move(preprocess)),
      policy_(std::move(policy)),
      engine_(ExecOptionsFor(config_)) {
  std::vector<double> coverage(preprocess_.representative_embeddings.size(),
                               0.0);
  estimator_ = std::make_unique<AnswerabilityEstimator>(
      embed::QueryEmbedder(config_.embed_dim),
      preprocess_.representative_embeddings, std::move(coverage));
}

std::unique_ptr<rl::Env> AsqpModel::MakeEnv() const {
  return MakeEnvFactory(&preprocess_.space, config_)();
}

storage::ApproximationSet AsqpModel::GenerateApproximationSet(
    size_t req_size) const {
  const size_t budget = req_size == 0 ? config_.k : req_size;
  // Algorithm 2: sample actions from pi until |S| reaches req_size. We run
  // the greedy (argmax) variant: at inference there is no exploration
  // benefit, and greedy selection is deterministic for the user.
  rl::GslEnv env(&preprocess_.space, /*batch_size=*/0);
  util::Rng rng(config_.seed ^ 0xABCDEF01ULL);
  env.Reset(0, &rng);
  storage::ApproximationSet out;
  size_t steps = 0;
  const size_t max_steps = preprocess_.space.num_actions() + 1;
  while (steps < max_steps) {
    bool any_valid = false;
    for (uint8_t m : env.action_mask()) {
      if (m) {
        any_valid = true;
        break;
      }
    }
    if (!any_valid) break;
    const rl::Policy::ActResult act =
        policy_.Act(env.state(), env.action_mask(), &rng, /*greedy=*/true);
    const rl::StepResult step = env.Step(act.action);
    ++steps;
    // Track the realized set size against the requested budget.
    out = preprocess_.space.Materialize(env.SelectedActions());
    if (out.TotalTuples() >= budget || step.done) break;
  }
  return out;
}

void AsqpModel::MaterializeSet() { set_ = GenerateApproximationSet(config_.k); }

void AsqpModel::CalibrateEstimator() {
  // Measure real per-representative coverage of the materialized set; the
  // estimator interpolates these measurements for unseen queries.
  metric::ScoreEvaluator evaluator(
      db_, metric::ScoreOptions{.frame_size = config_.frame_size});
  for (size_t i = 0; i < preprocess_.representatives.size(); ++i) {
    auto score =
        evaluator.QueryScore(preprocess_.representatives.query(i).stmt, set_);
    estimator_->SetCoverage(i, score.ok() ? score.value() : 0.0);
  }
}

double AsqpModel::EstimateAnswerability(
    const sql::SelectStatement& stmt) const {
  // Aggregates are estimated through their SPJ skeleton (Section 4.4).
  if (stmt.HasAggregates()) {
    return estimator_->Estimate(metric::StripAggregates(stmt));
  }
  return estimator_->Estimate(stmt);
}

util::Result<AnswerResult> AsqpModel::Answer(const sql::SelectStatement& stmt) {
  return Answer(stmt, util::ExecContext());
}

util::Result<AnswerResult> AsqpModel::Answer(const sql::SelectStatement& stmt,
                                             const util::ExecContext& context) {
  AnswerResult result;
  result.answerability = EstimateAnswerability(stmt);

  // Drift bookkeeping (Section 4.4): confidently out-of-distribution
  // queries accumulate until fine-tuning is triggered. Concurrent
  // sessions record through one mutex; everything else in this function
  // reads immutable inference state.
  const sql::SelectStatement spj = stmt.HasAggregates()
                                       ? metric::StripAggregates(stmt)
                                       : stmt.Clone();
  if (estimator_->DeviationConfidence(spj) > config_.drift_confidence) {
    std::lock_guard<std::mutex> lock(drift_mu_);
    drifted_queries_.push_back(spj.Clone());
  }

  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *db_));
  if (result.answerability >= config_.answerable_threshold) {
    storage::DatabaseView view(db_, &set_);
    // The caller's context bounds the approximation attempt when it
    // carries a deadline/cancellation; otherwise the configured per-query
    // deadline applies.
    util::ExecContext approx_context = context;
    if (context.deadline().IsUnlimited() &&
        config_.answer_deadline_seconds > 0.0) {
      approx_context.set_deadline(
          util::Deadline::AfterSeconds(config_.answer_deadline_seconds));
    }
    util::Result<exec::ResultSet> approx =
        engine_.Execute(bound, view, approx_context);
    if (approx.ok()) {
      result.result = std::move(approx).value();
      result.used_approximation = true;
      answered_.fetch_add(1, std::memory_order_relaxed);
      approx_served_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    // Degradation path: a deadline, cancellation, or resource limit on the
    // approximation-set execution falls back to the unbounded full
    // database rather than failing the user's query. Genuine query errors
    // (bad SQL semantics, internal faults) still propagate.
    switch (approx.status().code()) {
      case util::StatusCode::kDeadlineExceeded:
      case util::StatusCode::kCancelled:
      case util::StatusCode::kResourceExhausted:
      case util::StatusCode::kExecutionError:
        result.fell_back = true;
        result.fallback_reason = approx.status().ToString();
        break;
      default:
        return approx.status();
    }
  }
  // Full-database path: deadline-free (degradation must be able to
  // finish) but still cooperatively cancellable by the caller.
  util::ExecContext full_context = context;
  full_context.set_deadline(util::Deadline::Unlimited());
  storage::DatabaseView view(db_);
  ASQP_ASSIGN_OR_RETURN(result.result,
                        engine_.Execute(bound, view, full_context));
  result.used_approximation = false;
  answered_.fetch_add(1, std::memory_order_relaxed);
  if (result.fell_back) fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void AsqpModel::SetExecutionPool(std::shared_ptr<util::ThreadPool> pool) {
  exec::ExecOptions options = ExecOptionsFor(config_);
  options.shared_pool = std::move(pool);
  engine_ = exec::QueryEngine(options);
}

util::Result<AnswerResult> AsqpModel::AnswerSql(const std::string& sql) {
  ASQP_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  return Answer(stmt);
}

bool AsqpModel::NeedsFineTuning() const {
  std::lock_guard<std::mutex> lock(drift_mu_);
  return drifted_queries_.size() >= config_.drift_trigger;
}

util::Status AsqpModel::FineTune(const metric::Workload& new_queries) {
  // Merge the drifted / provided queries with the existing representatives
  // (recent interests weighted up) and retrain with a shortened schedule.
  // FineTune is a writer (it swaps the policy/estimator/approximation
  // set): callers serialize it against concurrent Answer()s — the drift
  // lock below only protects the vector itself.
  size_t drift_count = 0;
  metric::Workload merged;
  for (const metric::WeightedQuery& q :
       preprocess_.representatives.queries()) {
    merged.Add(q.stmt.Clone(), q.weight);
  }
  const double boost =
      2.0 / std::max<size_t>(1, new_queries.size());
  for (const metric::WeightedQuery& q : new_queries.queries()) {
    merged.Add(q.stmt.Clone(), boost);
  }
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    for (const sql::SelectStatement& q : drifted_queries_) {
      merged.Add(q.Clone(), boost);
    }
    drift_count = drifted_queries_.size();
  }
  merged.NormalizeWeights();

  AsqpConfig tune_config = config_;
  tune_config.trainer.iterations =
      std::max<size_t>(4, config_.trainer.iterations / 2);
  tune_config.seed = config_.seed + 1 + drift_count;

  ASQP_ASSIGN_OR_RETURN(PreprocessResult preprocess,
                        Preprocess(*db_, merged, tune_config));
  rl::TrainerConfig trainer_config = tune_config.trainer;
  trainer_config.seed ^= tune_config.seed;
  ASQP_ASSIGN_OR_RETURN(
      rl::TrainResult trained,
      rl::Train(MakeEnvFactory(&preprocess.space, tune_config),
                trainer_config));

  preprocess_ = std::move(preprocess);
  policy_ = std::move(trained.policy);
  estimator_ = std::make_unique<AnswerabilityEstimator>(
      embed::QueryEmbedder(config_.embed_dim),
      preprocess_.representative_embeddings,
      std::vector<double>(preprocess_.representative_embeddings.size(), 0.0));
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    drifted_queries_.clear();
  }
  MaterializeSet();
  CalibrateEstimator();
  // Publish the new approximation-set generation last: a cached answer
  // stamped with the old generation is stale from this point on.
  generation_.fetch_add(1, std::memory_order_release);
  return util::Status::OK();
}

}  // namespace core
}  // namespace asqp
