#include "core/model.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "aqp/learned_fallback.h"
#include "core/trainer.h"
#include "metric/score.h"
#include "plan/plan_reuse.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "storage/index.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace asqp {
namespace core {

namespace {

exec::ExecOptions ExecOptionsFor(
    const AsqpConfig& config,
    std::shared_ptr<const plan::StatsCatalog> stats) {
  exec::ExecOptions options;
  options.num_threads = config.exec_threads;
  if (config.exec_morsel_rows > 0) options.morsel_rows = config.exec_morsel_rows;
  options.enable_planner = config.planner;
  options.planner_stats = std::move(stats);
  return options;
}

/// Resolve the configured index columns and build the catalog over `view`
/// (the approximation-set scope). Returns null — full scans everywhere —
/// when indexing is disabled or the explicit spec does not resolve:
/// index presence must never gate answering.
std::shared_ptr<const storage::IndexCatalog> BuildIndexCatalogFor(
    const AsqpConfig& config, const storage::Database& db,
    const storage::DatabaseView& view, uint64_t generation) {
  std::vector<storage::IndexColumnSpec> specs;
  if (!config.index_columns.empty()) {
    auto parsed = storage::ParseIndexColumns(config.index_columns, db);
    if (!parsed.ok()) return nullptr;
    specs = std::move(parsed).value();
  } else if (config.index_auto) {
    specs = storage::AllIndexColumns(db);
  }
  if (specs.empty()) return nullptr;
  return std::make_shared<const storage::IndexCatalog>(
      storage::IndexCatalog::Build(view, specs, generation));
}

util::CircuitBreaker::Options BreakerOptionsFor(const AsqpConfig& config) {
  return util::CircuitBreaker::Options{
      .failure_threshold = config.fallback_breaker_threshold,
      .cooldown_seconds = config.fallback_breaker_cooldown_seconds};
}

/// The failure classes the ladder degrades on; anything else (bad SQL
/// semantics, internal invariant violations surfaced as typed errors) is
/// the caller's problem and propagates unchanged.
bool IsDegradationClass(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
    case util::StatusCode::kCancelled:
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kExecutionError:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* AnswerTierName(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kApproximation: return "approximation";
    case AnswerTier::kFullDatabase: return "full_database";
    case AnswerTier::kLearned: return "learned";
  }
  return "unknown";
}

std::string FallbackReasonFromStatus(const util::Status& status) {
  const std::string& msg = status.message();
  // Injected faults name their point: "injected fault(<point>): ...".
  static constexpr char kFaultPrefix[] = "injected fault(";
  const size_t fault = msg.find(kFaultPrefix);
  if (fault != std::string::npos) {
    const size_t open = fault + sizeof(kFaultPrefix) - 1;
    const size_t close = msg.find(')', open);
    if (close != std::string::npos) {
      return "fault:" + msg.substr(open, close - open);
    }
  }
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
      return "deadline";
    case util::StatusCode::kCancelled:
      return "cancelled";
    case util::StatusCode::kResourceExhausted:
      return msg.find("row budget") != std::string::npos ? "row_budget"
                                                         : "resource_exhausted";
    case util::StatusCode::kExecutionError:
      return "exec_error";
    default: {
      std::string name = util::Status::CodeName(status.code());
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return name;
    }
  }
}

AsqpModel::AsqpModel(const storage::Database* db, AsqpConfig config,
                     PreprocessResult preprocess, rl::Policy policy)
    : db_(db),
      config_(std::move(config)),
      preprocess_(std::move(preprocess)),
      policy_(std::move(policy)),
      planner_stats_(db != nullptr ? std::make_shared<const plan::StatsCatalog>(
                                         plan::StatsCatalog::Collect(*db))
                                   : nullptr),
      engine_(ExecOptionsFor(config_, planner_stats_)),
      breaker_(BreakerOptionsFor(config_)) {
  std::vector<double> coverage(preprocess_.representative_embeddings.size(),
                               0.0);
  estimator_ = std::make_unique<AnswerabilityEstimator>(
      embed::QueryEmbedder(config_.embed_dim),
      preprocess_.representative_embeddings, std::move(coverage));
}

std::unique_ptr<rl::Env> AsqpModel::MakeEnv() const {
  return MakeEnvFactory(&preprocess_.space, config_)();
}

storage::ApproximationSet AsqpModel::GenerateApproximationSet(
    size_t req_size) const {
  const size_t budget = req_size == 0 ? config_.k : req_size;
  // Algorithm 2: sample actions from pi until |S| reaches req_size. We run
  // the greedy (argmax) variant: at inference there is no exploration
  // benefit, and greedy selection is deterministic for the user.
  rl::GslEnv env(&preprocess_.space, /*batch_size=*/0);
  util::Rng rng(config_.seed ^ 0xABCDEF01ULL);
  env.Reset(0, &rng);
  storage::ApproximationSet out;
  size_t steps = 0;
  const size_t max_steps = preprocess_.space.num_actions() + 1;
  while (steps < max_steps) {
    bool any_valid = false;
    for (uint8_t m : env.action_mask()) {
      if (m) {
        any_valid = true;
        break;
      }
    }
    if (!any_valid) break;
    const rl::Policy::ActResult act =
        policy_.Act(env.state(), env.action_mask(), &rng, /*greedy=*/true);
    const rl::StepResult step = env.Step(act.action);
    ++steps;
    // Track the realized set size against the requested budget.
    out = preprocess_.space.Materialize(env.SelectedActions());
    if (out.TotalTuples() >= budget || step.done) break;
  }
  return out;
}

void AsqpModel::MaterializeSet() {
  set_ = GenerateApproximationSet(config_.k);
  // Refit the learned fallback tier over the fresh approximation set (a
  // stale synopsis would answer with the *previous* generation's bias).
  learned_.reset();
  if (config_.fallback_learned_enabled) {
    aqp::LearnedFallbackOptions options;
    options.seed = config_.seed ^ 0x1ea51edfa11ULL;
    util::Result<aqp::LearnedFallback> fitted =
        aqp::LearnedFallback::Fit(*db_, set_, options);
    // A failed fit degrades gracefully: the ladder simply skips tier 1.
    if (fitted.ok()) {
      learned_ = std::make_shared<const aqp::LearnedFallback>(
          std::move(fitted).value());
    }
  }
  // Fresh set, fresh indexes: a stale catalog would binary-search ordinals
  // of the previous generation's subset. (FineTune re-stamps the catalog
  // after it publishes the bumped generation.)
  RebuildIndexes();
}

void AsqpModel::RebuildIndexes() {
  index_catalog_ = BuildIndexCatalogFor(
      config_, *db_, storage::DatabaseView(db_, &set_), generation());
  RebuildEngine();
}

void AsqpModel::RebuildEngine() {
  exec::ExecOptions options = ExecOptionsFor(config_, planner_stats_);
  options.shared_pool = exec_pool_;
  options.index_catalog = index_catalog_;
  engine_ = exec::QueryEngine(options);
}

void AsqpModel::CalibrateEstimator() {
  // Measure real per-representative coverage of the materialized set; the
  // estimator interpolates these measurements for unseen queries.
  metric::ScoreEvaluator evaluator(
      db_, metric::ScoreOptions{.frame_size = config_.frame_size});
  for (size_t i = 0; i < preprocess_.representatives.size(); ++i) {
    auto score =
        evaluator.QueryScore(preprocess_.representatives.query(i).stmt, set_);
    estimator_->SetCoverage(i, score.ok() ? score.value() : 0.0);
  }
}

double AsqpModel::EstimateAnswerability(
    const sql::SelectStatement& stmt) const {
  // Aggregates are estimated through their SPJ skeleton (Section 4.4).
  if (stmt.HasAggregates()) {
    return estimator_->Estimate(metric::StripAggregates(stmt));
  }
  return estimator_->Estimate(stmt);
}

util::Result<AnswerResult> AsqpModel::Answer(const sql::SelectStatement& stmt) {
  return Answer(stmt, util::ExecContext());
}

util::Result<AnswerResult> AsqpModel::Answer(const sql::SelectStatement& stmt,
                                             const util::ExecContext& context) {
  ASQP_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(stmt));
  return AnswerPrepared(prepared, context);
}

util::Result<AsqpModel::PreparedQuery> AsqpModel::PrepareQuery(
    const sql::SelectStatement& stmt) {
  PreparedQuery prepared;
  prepared.answerability = EstimateAnswerability(stmt);

  // Drift bookkeeping (Section 4.4): confidently out-of-distribution
  // queries accumulate until fine-tuning is triggered. Concurrent
  // sessions record through one mutex; everything else on the answer
  // path reads immutable inference state.
  const sql::SelectStatement spj = stmt.HasAggregates()
                                       ? metric::StripAggregates(stmt)
                                       : stmt.Clone();
  if (estimator_->DeviationConfidence(spj) > config_.drift_confidence) {
    std::lock_guard<std::mutex> lock(drift_mu_);
    drifted_queries_.push_back(spj.Clone());
  }

  ASQP_ASSIGN_OR_RETURN(prepared.bound, sql::Bind(stmt, *db_));
  return prepared;
}

util::ExecContext AsqpModel::ApproxContextFor(
    const util::ExecContext& context) const {
  // The caller's context bounds the approximation attempt when it
  // carries a deadline/cancellation; otherwise the configured per-query
  // deadline applies.
  util::ExecContext approx_context = context;
  if (context.deadline().IsUnlimited() &&
      config_.answer_deadline_seconds > 0.0) {
    approx_context.set_deadline(
        util::Deadline::AfterSeconds(config_.answer_deadline_seconds));
  }
  return approx_context;
}

util::Result<AnswerResult> AsqpModel::AnswerPrepared(
    const PreparedQuery& prepared, const util::ExecContext& context) {
  AnswerResult result;
  result.answerability = prepared.answerability;
  const sql::BoundQuery& bound = prepared.bound;

  if (result.answerability >= config_.answerable_threshold) {
    storage::DatabaseView view(db_, &set_);
    util::ExecContext approx_context = ApproxContextFor(context);
    // Tier 0 with bounded retries: transient failures (allocation
    // pressure, injected faults) get a jittered backoff and another
    // attempt, as long as the remaining deadline affords the sleep.
    // Deadline expiry and cancellation never retry.
    const util::RetryPolicy retry(
        util::RetryPolicy::Options{
            .max_retries = config_.fallback_retry_attempts,
            .base_backoff_seconds = config_.fallback_retry_backoff_seconds},
        config_.seed);
    util::Status failure = util::Status::OK();
    for (size_t attempt = 0;; ++attempt) {
      util::Result<exec::ResultSet> approx =
          engine_.Execute(bound, view, approx_context);
      if (approx.ok()) {
        result.result = std::move(approx).value();
        result.used_approximation = true;
        result.tier = AnswerTier::kApproximation;
        answered_.fetch_add(1, std::memory_order_relaxed);
        approx_served_.fetch_add(1, std::memory_order_relaxed);
        return result;
      }
      failure = approx.status();
      if (attempt >= retry.max_retries() ||
          !util::RetryPolicy::IsTransient(failure) ||
          approx_context.IsCancelled()) {
        break;
      }
      const double backoff = retry.BackoffSeconds(attempt + 1);
      if (approx_context.deadline().RemainingSeconds() <= backoff) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    // Degradation path: a deadline, cancellation, or resource limit on the
    // approximation-set execution degrades down the ladder rather than
    // failing the user's query. Genuine query errors (bad SQL semantics,
    // internal faults) still propagate.
    if (!IsDegradationClass(failure)) return failure;
    return DegradeFrom(bound, context, failure, std::move(result));
  }

  // Estimator-routed full-database path (answerability below the
  // threshold): not a degradation — deadline-free but still
  // cooperatively cancellable, errors propagate, breaker uninvolved.
  util::ExecContext full_context = context;
  full_context.set_deadline(util::Deadline::Unlimited());
  storage::DatabaseView view(db_);
  ASQP_ASSIGN_OR_RETURN(result.result,
                        engine_.Execute(bound, view, full_context));
  result.used_approximation = false;
  result.tier = AnswerTier::kFullDatabase;
  answered_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

util::Result<AnswerResult> AsqpModel::DegradeFrom(
    const sql::BoundQuery& bound, const util::ExecContext& context,
    const util::Status& failure, AnswerResult result) {
  result.fell_back = true;
  result.fallback_reason = FallbackReasonFromStatus(failure);
  util::Status degrade_cause = failure;

  // Tier 2, the full database, is attempted only when (a) the cost gate
  // says the remaining deadline budget affords a full scan and (b) the
  // circuit breaker is not open. The gate is evaluated *before* the
  // breaker: Allow() on a half-open breaker claims the single trial slot,
  // and a tier skipped after claiming it would leave the slot stuck.
  bool affordable = true;
  if (config_.fallback_full_db_rows_per_second > 0.0) {
    double rows = 0.0;
    for (const auto& table : bound.tables) {
      rows += static_cast<double>(table->num_rows());
    }
    affordable = rows / config_.fallback_full_db_rows_per_second <=
                 context.deadline().RemainingSeconds();
  }
  if (affordable && breaker_.Allow()) {
    // Deadline-free (degradation must be able to finish) but still
    // cooperatively cancellable by the caller.
    util::ExecContext full_context = context;
    full_context.set_deadline(util::Deadline::Unlimited());
    storage::DatabaseView view(db_);
    util::Result<exec::ResultSet> full =
        engine_.Execute(bound, view, full_context);
    // Breaker bookkeeping: a degraded full-database execution "fails" when
    // the caller's *original* deadline has expired by the time it
    // resolves — the answer arrived too late to matter, and consecutive
    // late answers mean the tier is overloaded. Raw Expired() here, never
    // Check(): the latter fires the exec.deadline fault point and would
    // trip the breaker for healthy clients under chaos testing.
    const bool late = context.deadline().Expired();
    if (full.ok()) {
      if (late) {
        breaker_.RecordFailure();
      } else {
        breaker_.RecordSuccess();
      }
      result.result = std::move(full).value();
      result.used_approximation = false;
      result.tier = AnswerTier::kFullDatabase;
      answered_.fetch_add(1, std::memory_order_relaxed);
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    if (!IsDegradationClass(full.status())) {
      // Genuine error: release a possibly-claimed half-open trial slot
      // (the tier itself is not overloaded) and propagate.
      breaker_.RecordSuccess();
      return full.status();
    }
    if (late) {
      breaker_.RecordFailure();
    } else {
      breaker_.RecordSuccess();
    }
    degrade_cause = full.status();
  }

  // Tier 1: the learned answerer — reached when the full database is
  // unaffordable, breaker-blocked, or itself degraded.
  util::Result<AnswerResult> learned =
      AnswerLearnedTier(bound, degrade_cause, std::move(result));
  if (learned.ok()) {
    answered_.fetch_add(1, std::memory_order_relaxed);
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return learned;
}

std::vector<util::Result<AnswerResult>> AsqpModel::AnswerBatch(
    const std::vector<BatchQuery>& queries, plan::PlanReuseCache* plan_cache,
    BatchStats* stats_out) {
  const size_t n = queries.size();
  BatchStats stats;
  stats.members = n;
  std::vector<std::optional<util::Result<AnswerResult>>> results(n);
  std::vector<std::optional<PreparedQuery>> prepared(n);
  for (size_t i = 0; i < n; ++i) {
    util::Result<PreparedQuery> p = PrepareQuery(*queries[i].stmt);
    if (!p.ok()) {
      results[i] = p.status();
      continue;
    }
    prepared[i] = std::move(p).value();
  }

  storage::DatabaseView view(db_, &set_);
  const uint64_t gen = generation();

  // Plan every answerable member once — through the fingerprint-keyed
  // reuse cache when the caller provides one (same canonical text =>
  // same bound structure => same deterministic plan) — and mark it for
  // the shared scan. Below-threshold members are estimator-routed to the
  // full database and execute individually: the shared scan is an
  // approximation-set pass.
  std::vector<std::shared_ptr<const sql::BoundQuery>> planned(n);
  std::vector<util::ExecContext> approx(n);
  std::vector<size_t> batched;
  for (size_t i = 0; i < n; ++i) {
    if (results[i].has_value() || !prepared[i].has_value()) continue;
    if (prepared[i]->answerability < config_.answerable_threshold) {
      results[i] = AnswerPrepared(*prepared[i], queries[i].context);
      ++stats.solo;
      continue;
    }
    std::shared_ptr<const sql::BoundQuery> plan;
    const bool cacheable =
        plan_cache != nullptr && queries[i].plan_key != nullptr;
    if (cacheable) plan = plan_cache->Lookup(*queries[i].plan_key, gen);
    if (plan == nullptr) {
      plan = std::make_shared<const sql::BoundQuery>(
          engine_.PlanForView(prepared[i]->bound, view));
      if (cacheable) plan_cache->Insert(*queries[i].plan_key, gen, plan);
    }
    planned[i] = std::move(plan);
    approx[i] = ApproxContextFor(queries[i].context);
    batched.push_back(i);
  }

  // Group (member, FROM index) pairs by table and scan each table once.
  // std::map: deterministic scan order regardless of pointer layout.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> groups;
  for (size_t i : batched) {
    for (size_t t = 0; t < planned[i]->num_tables(); ++t) {
      groups[planned[i]->tables[t]->name()].push_back({i, t});
    }
  }

  // The scan runs under the batch's most generous member deadline: a
  // tighter member's own context still bounds its ExecutePlanned below,
  // so per-member deadlines hold; a generous member is never truncated
  // by a tight peer.
  util::ExecContext scan_context;
  double max_remaining = 0.0;
  bool any_unlimited = batched.empty();
  for (size_t i : batched) {
    if (approx[i].deadline().IsUnlimited()) {
      any_unlimited = true;
      break;
    }
    max_remaining =
        std::max(max_remaining, approx[i].deadline().RemainingSeconds());
  }
  if (!any_unlimited) {
    scan_context.set_deadline(util::Deadline::AfterSeconds(max_remaining));
  }

  std::vector<std::vector<exec::ScanSelection>> selections(n);
  for (size_t i : batched) selections[i].resize(planned[i]->num_tables());
  util::Status scan_status = util::Status::OK();
  for (auto& group : groups) {
    std::vector<std::pair<size_t, size_t>>& entries = group.second;
    const storage::Table& table =
        *planned[entries[0].first]->tables[entries[0].second];
    std::vector<exec::SharedScanMember> members;
    members.reserve(entries.size());
    for (const auto& entry : entries) {
      members.push_back(
          exec::SharedScanMember{planned[entry.first].get(), entry.second});
    }
    std::vector<std::vector<uint32_t>> rows;
    scan_status =
        engine_.SharedFilterScan(view, table, members, scan_context, &rows);
    if (!scan_status.ok()) break;
    for (size_t e = 0; e < entries.size(); ++e) {
      selections[entries[e].first][entries[e].second] =
          std::make_shared<const std::vector<uint32_t>>(std::move(rows[e]));
    }
    if (entries.size() >= 2) {
      ++stats.shared_tables;
      stats.scans_saved += entries.size() - 1;
    }
  }

  for (size_t i : batched) {
    if (!scan_status.ok()) {
      // The shared pass itself failed (batch-wide deadline, injected scan
      // fault): every member falls back to its individual path, which
      // re-runs the full ladder under its own budget.
      results[i] = AnswerPrepared(*prepared[i], queries[i].context);
      ++stats.solo;
      continue;
    }
    if (ASQP_FAULT_POINT("serve.batch")) {
      // A faulted member degrades alone — straight down the ladder with a
      // machine-readable reason — while its peers keep their shared-scan
      // answers untouched.
      AnswerResult result;
      result.answerability = prepared[i]->answerability;
      results[i] = DegradeFrom(
          prepared[i]->bound, queries[i].context,
          util::Status::ExecutionError(
              "injected fault(serve.batch): batched member execution failed"),
          std::move(result));
      continue;
    }
    util::Result<exec::ResultSet> r =
        engine_.ExecutePlanned(*planned[i], view, selections[i], approx[i]);
    if (r.ok()) {
      AnswerResult result;
      result.answerability = prepared[i]->answerability;
      result.result = std::move(r).value();
      result.used_approximation = true;
      result.tier = AnswerTier::kApproximation;
      answered_.fetch_add(1, std::memory_order_relaxed);
      approx_served_.fetch_add(1, std::memory_order_relaxed);
      results[i] = std::move(result);
      ++stats.batched_tier0;
      continue;
    }
    if (!IsDegradationClass(r.status())) {
      results[i] = r.status();
      continue;
    }
    // A degradation-class member failure (deadline, transient resource
    // pressure) retries individually: AnswerPrepared re-runs tier 0 with
    // the solo path's retry policy, then walks the ladder — identical
    // semantics to never having been batched.
    results[i] = AnswerPrepared(*prepared[i], queries[i].context);
    ++stats.solo;
  }

  std::vector<util::Result<AnswerResult>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(results[i]).value_or(
        util::Status::Internal("batch member never resolved")));
  }
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

util::Result<AnswerResult> AsqpModel::AnswerLearnedTier(
    const sql::BoundQuery& bound, const util::Status& cause,
    AnswerResult result) const {
  // Snapshot the pointer: FineTune swaps learned_ under the serving
  // layer's writer lock, but model-level callers may race MaterializeSet
  // in tests — a local shared_ptr keeps the synopsis alive regardless.
  const std::shared_ptr<const aqp::LearnedFallback> learned = learned_;
  if (learned != nullptr && learned->CanAnswer(bound)) {
    util::Result<aqp::LearnedAnswer> answer = learned->Answer(bound);
    if (answer.ok()) {
      result.result = std::move(answer.value().result);
      result.used_approximation = false;
      result.tier = AnswerTier::kLearned;
      result.fell_back = true;
      result.error_estimate = answer.value().error_estimate;
      if (result.fallback_reason.empty()) {
        result.fallback_reason = FallbackReasonFromStatus(cause);
      }
      learned_served_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }
  return util::Status::Degraded(
      "every degradation tier exhausted (reason: " +
      FallbackReasonFromStatus(cause) + "); last failure: " +
      cause.ToString());
}

util::Result<AnswerResult> AsqpModel::TryLearnedAnswer(
    const sql::SelectStatement& stmt) const {
  const std::shared_ptr<const aqp::LearnedFallback> learned = learned_;
  if (learned == nullptr) {
    return util::Status::NotFound("no learned fallback fitted");
  }
  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *db_));
  if (!learned->CanAnswer(bound)) {
    return util::Status::InvalidArgument(
        "query outside the learned fallback's supported class");
  }
  ASQP_ASSIGN_OR_RETURN(aqp::LearnedAnswer answer, learned->Answer(bound));
  AnswerResult result;
  result.result = std::move(answer.result);
  result.used_approximation = false;
  result.tier = AnswerTier::kLearned;
  result.fell_back = true;
  result.error_estimate = answer.error_estimate;
  learned_served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

void AsqpModel::SetExecutionPool(std::shared_ptr<util::ThreadPool> pool) {
  // Rebuilding the engine keeps the planner configuration, statistics, and
  // index catalog: routing execution through a shared pool must not change
  // plans (or bytes — the serving layer's cached answers assume both).
  exec_pool_ = std::move(pool);
  RebuildEngine();
}

util::Result<AnswerResult> AsqpModel::AnswerSql(const std::string& sql) {
  ASQP_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  return Answer(stmt);
}

bool AsqpModel::NeedsFineTuning() const {
  std::lock_guard<std::mutex> lock(drift_mu_);
  return drifted_queries_.size() >= config_.drift_trigger;
}

util::Status AsqpModel::FineTune(const metric::Workload& new_queries) {
  // Merge the drifted / provided queries with the existing representatives
  // (recent interests weighted up) and retrain with a shortened schedule.
  // FineTune is a writer (it swaps the policy/estimator/approximation
  // set): callers serialize it against concurrent Answer()s — the drift
  // lock below only protects the vector itself.
  size_t drift_count = 0;
  metric::Workload merged;
  for (const metric::WeightedQuery& q :
       preprocess_.representatives.queries()) {
    merged.Add(q.stmt.Clone(), q.weight);
  }
  const double boost =
      2.0 / std::max<size_t>(1, new_queries.size());
  for (const metric::WeightedQuery& q : new_queries.queries()) {
    merged.Add(q.stmt.Clone(), boost);
  }
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    for (const sql::SelectStatement& q : drifted_queries_) {
      merged.Add(q.Clone(), boost);
    }
    drift_count = drifted_queries_.size();
  }
  merged.NormalizeWeights();

  AsqpConfig tune_config = config_;
  tune_config.trainer.iterations =
      std::max<size_t>(4, config_.trainer.iterations / 2);
  tune_config.seed = config_.seed + 1 + drift_count;

  ASQP_ASSIGN_OR_RETURN(PreprocessResult preprocess,
                        Preprocess(*db_, merged, tune_config));
  rl::TrainerConfig trainer_config = tune_config.trainer;
  trainer_config.seed ^= tune_config.seed;
  ASQP_ASSIGN_OR_RETURN(
      rl::TrainResult trained,
      rl::Train(MakeEnvFactory(&preprocess.space, tune_config),
                trainer_config));

  preprocess_ = std::move(preprocess);
  policy_ = std::move(trained.policy);
  estimator_ = std::make_unique<AnswerabilityEstimator>(
      embed::QueryEmbedder(config_.embed_dim),
      preprocess_.representative_embeddings,
      std::vector<double>(preprocess_.representative_embeddings.size(), 0.0));
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    drifted_queries_.clear();
  }
  MaterializeSet();
  CalibrateEstimator();
  // Publish the new approximation-set generation last: a cached answer
  // stamped with the old generation is stale from this point on.
  generation_.fetch_add(1, std::memory_order_release);
  // Re-stamp the index catalog with the generation it now serves (the
  // rebuild inside MaterializeSet ran before the bump). FineTune is
  // serialized against Answer, so nothing executes between the two swaps;
  // the second build over the <= k-tuple set is cheap.
  RebuildIndexes();
  return util::Status::OK();
}

}  // namespace core
}  // namespace asqp
