// The trained ASQP-RL model: inference (Algorithm 2), the user-facing
// Answer() mediator, interest-drift detection, and fine-tuning.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/estimator.h"
#include "core/preprocess.h"
#include "exec/executor.h"
#include "metric/workload.h"
#include "plan/stats.h"
#include "rl/policy.h"
#include "storage/database.h"
#include "util/annotations.h"
#include "util/retry.h"
#include "util/status.h"

namespace asqp {

namespace aqp {
class LearnedFallback;
}  // namespace aqp

namespace storage {
class IndexCatalog;
}  // namespace storage

namespace plan {
class PlanReuseCache;
}  // namespace plan

namespace core {

/// Which tier of the degradation ladder produced an answer.
enum class AnswerTier {
  kApproximation = 0,  ///< tier 0: the approximation set
  kFullDatabase = 1,   ///< tier 2: degraded full-database execution
  kLearned = 2,        ///< tier 1: the learned (ML-AQP-style) answerer
};

const char* AnswerTierName(AnswerTier tier);

/// Normalize a failure Status into the machine-readable degradation
/// vocabulary carried by AnswerResult::fallback_reason:
///   kDeadlineExceeded                  -> "deadline"
///   kCancelled                         -> "cancelled"
///   kResourceExhausted ("row budget")  -> "row_budget"
///   any message "injected fault(<p>)"  -> "fault:<p>"
///   kResourceExhausted (other)         -> "resource_exhausted"
///   kExecutionError                    -> "exec_error"
///   anything else                      -> lowercase code name
std::string FallbackReasonFromStatus(const util::Status& status);

/// \brief Outcome of answering one user query through the mediator.
struct AnswerResult {
  exec::ResultSet result;
  /// True when served from the approximation set, false when the estimator
  /// routed the query to the full database.
  bool used_approximation = false;
  /// The ladder tier that produced `result` (kApproximation also covers
  /// the estimator-routed full-database path when `fell_back` is false —
  /// check `tier` for the executing tier).
  AnswerTier tier = AnswerTier::kApproximation;
  /// The estimator's answerability score for this query.
  double answerability = 0.0;
  /// True when the approximation-set execution was attempted but abandoned
  /// (deadline, cancellation, or resource exhaustion) and the result came
  /// from a degraded tier (full database or learned answerer) instead.
  bool fell_back = false;
  /// Why the mediator degraded, normalized by FallbackReasonFromStatus
  /// ("deadline", "cancelled", "row_budget", "fault:<point>", ...; the
  /// serving layer's shed paths use "shed:<cause>"). Empty when
  /// `fell_back` is false.
  std::string fallback_reason;
  /// Estimated relative error of `result`: 0 for exact tiers
  /// (approximation set answers are exact over the subset; full-database
  /// answers are exact, period), the calibrated per-category bound for
  /// learned answers (aqp::LearnedFallback).
  double error_estimate = 0.0;
  /// True when the serving layer returned a cached answer without
  /// executing (serve::ServeEngine; always false from AsqpModel::Answer).
  bool from_cache = false;
};

class AsqpModel {
 public:
  AsqpModel(const storage::Database* db, AsqpConfig config,
            PreprocessResult preprocess, rl::Policy policy);

  /// Algorithm 2: sample tuple-group actions from the learned policy until
  /// `req_size` base tuples are selected (0 = the configured budget k).
  storage::ApproximationSet GenerateApproximationSet(size_t req_size = 0) const;

  /// The approximation set materialized at construction (greedy rollout).
  const storage::ApproximationSet& approximation_set() const { return set_; }

  /// Answerability estimate in [0, 1] for a query (Section 4.4).
  double EstimateAnswerability(const sql::SelectStatement& stmt) const;

  /// Answer a query through the mediator: approximation set when the
  /// estimator deems it answerable (estimate >= threshold), otherwise the
  /// full database. Aggregate queries are estimated via their SPJ skeleton
  /// but executed as written. Records drift statistics.
  ///
  /// Thread safety: concurrent Answer() calls are safe (the serving layer
  /// runs many sessions against one model) — inference state is read-only
  /// and drift bookkeeping is internally synchronized. FineTune() and
  /// SetExecutionPool() are *writers* and must be externally serialized
  /// against every concurrent Answer (serve::ServeEngine holds a
  /// reader-writer lock for exactly this).
  [[nodiscard]] util::Result<AnswerResult> Answer(const sql::SelectStatement& stmt);
  /// As above, but the caller's ExecContext (deadline / cancellation)
  /// bounds the approximation-set attempt; when it is unlimited the
  /// configured answer_deadline_seconds applies instead. The degraded
  /// full-database fallback still honors cancellation but not the
  /// deadline (degradation must be able to finish).
  [[nodiscard]] util::Result<AnswerResult> Answer(const sql::SelectStatement& stmt,
                                                  const util::ExecContext& context);
  [[nodiscard]] util::Result<AnswerResult> AnswerSql(const std::string& sql);

  /// One member of a batched Answer (see AnswerBatch).
  struct BatchQuery {
    /// The statement to answer; must outlive the AnswerBatch call.
    const sql::SelectStatement* stmt = nullptr;
    /// Per-member deadline/cancellation, honored exactly as Answer()'s.
    util::ExecContext context;
    /// Canonical fingerprint text used as the plan-reuse key; null (or a
    /// null cache) plans the member without consulting the cache.
    const std::string* plan_key = nullptr;
  };

  /// Bookkeeping for one AnswerBatch call.
  struct BatchStats {
    size_t members = 0;        ///< queries handed to the batch
    size_t shared_tables = 0;  ///< tables scanned once for >= 2 members
    size_t scans_saved = 0;    ///< per-table scan passes avoided (sum k-1)
    size_t batched_tier0 = 0;  ///< members answered off the shared scan
    size_t solo = 0;           ///< members answered individually instead
  };

  /// Answer a batch of queries with multi-query optimization: every
  /// answerable member's approximation-set execution shares one filter
  /// scan pass per table (exec::QueryEngine::SharedFilterScan) instead of
  /// scanning per member, and plans are reused across equal fingerprints
  /// via `plan_cache` (nullable). Results are byte-identical to calling
  /// Answer() per member: the shared scan reproduces each member's own
  /// filtered-scan output exactly, and members the batch cannot serve
  /// (answerability below threshold, a failed shared scan, a per-member
  /// execution failure) fall back to the individual path — a faulted
  /// member (serve.batch fault point, or any degradation-class failure)
  /// degrades alone, never its batch peers. Returns one Result per input,
  /// index-aligned.
  ///
  /// Thread safety: a *reader*, same contract as Answer().
  [[nodiscard]] std::vector<util::Result<AnswerResult>> AnswerBatch(
      const std::vector<BatchQuery>& queries,
      plan::PlanReuseCache* plan_cache = nullptr,
      BatchStats* stats = nullptr);

  /// Answer `stmt` from the learned fallback tier alone (no execution, no
  /// admission): used by the serving layer to shed load when a query
  /// cannot be admitted. Fails (kNotFound / kInvalidArgument) when the
  /// learned answerer is absent or the query is outside its class.
  ///
  /// Thread safety: a *reader* — the serving layer calls it under the same
  /// reader lock as Answer() (FineTune swaps the learned answerer).
  [[nodiscard]] util::Result<AnswerResult> TryLearnedAnswer(
      const sql::SelectStatement& stmt) const;

  /// Interest drift (C5): true once `drift_trigger` out-of-distribution
  /// queries with deviation confidence > `drift_confidence` accumulated.
  bool NeedsFineTuning() const;

  /// Fine-tune on the drifted workload: merge `new_queries` with the
  /// training representatives, re-run pre-processing and a shortened
  /// training run, and swap in the improved policy/approximation set.
  [[nodiscard]] util::Status FineTune(const metric::Workload& new_queries);

  const AnswerabilityEstimator& estimator() const { return *estimator_; }
  const rl::Policy& policy() const { return policy_; }
  const metric::Workload& representatives() const {
    return preprocess_.representatives;
  }
  const AsqpConfig& config() const { return config_; }
  /// The underlying full database this model mediates over.
  const storage::Database* database() const { return db_; }
  /// Mutable access for post-training knobs (e.g. answer_deadline_seconds).
  AsqpConfig& mutable_config() { return config_; }
  size_t drifted_query_count() const {
    std::lock_guard<std::mutex> lock(drift_mu_);
    return drifted_queries_.size();
  }

  /// Monotonic approximation-set generation: bumped every time FineTune
  /// swaps in a new policy/approximation set. The serving layer stamps
  /// cached answers with this and treats a mismatch as invalidation.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Route this model's query execution through an externally owned pool
  /// (the serving layer's process-wide pool; see ExecOptions::shared_pool).
  /// Writer: must not run concurrently with Answer().
  void SetExecutionPool(std::shared_ptr<util::ThreadPool> pool);

  /// Cumulative Answer() bookkeeping (monotonic, thread-safe).
  struct AnswerStats {
    uint64_t answered = 0;        ///< completed Answer() calls
    uint64_t approx_served = 0;   ///< served from the approximation set
    uint64_t fallbacks = 0;       ///< degraded off the approximation set
    uint64_t retries = 0;         ///< approximation-tier retry attempts
    uint64_t learned_served = 0;  ///< answered by the learned fallback
  };
  AnswerStats answer_stats() const {
    return AnswerStats{answered_.load(std::memory_order_relaxed),
                       approx_served_.load(std::memory_order_relaxed),
                       fallbacks_.load(std::memory_order_relaxed),
                       retries_.load(std::memory_order_relaxed),
                       learned_served_.load(std::memory_order_relaxed)};
  }

  /// The learned fallback answerer (null until MaterializeSet has run or
  /// when fallback_learned_enabled is false).
  std::shared_ptr<const aqp::LearnedFallback> learned_fallback() const {
    return learned_;
  }

  /// Ordered secondary indexes over the current approximation set, stamped
  /// with the generation they serve (null until MaterializeSet has run or
  /// when indexing is disabled). FineTune swaps in a freshly built catalog
  /// stamped with the bumped generation — reader threads holding the old
  /// shared_ptr keep a consistent (db, set, indexes) snapshot.
  std::shared_ptr<const storage::IndexCatalog> index_catalog() const {
    return index_catalog_;
  }

  /// The circuit breaker guarding the full-database tier (tests drive its
  /// clock; see util::CircuitBreaker::SetNowFnForTest).
  util::CircuitBreaker& circuit_breaker() { return breaker_; }

 private:
  friend class AsqpTrainer;

  /// Build the env for this model's configuration.
  std::unique_ptr<rl::Env> MakeEnv() const;
  void MaterializeSet();
  void CalibrateEstimator();
  /// Rebuild the secondary-index catalog over the current approximation
  /// set (stamped with the current generation) and swap in an engine that
  /// carries it. Writer: same serialization contract as FineTune.
  void RebuildIndexes();
  /// Rebuild engine_ from config_, preserving the planner statistics, the
  /// index catalog, and any injected execution pool.
  void RebuildEngine();

  /// Answer()'s pre-execution half: answerability estimate, drift
  /// bookkeeping, and binding — everything that happens once per
  /// statement regardless of how (solo or batched) it then executes.
  struct PreparedQuery {
    sql::BoundQuery bound;
    double answerability = 0.0;
  };
  [[nodiscard]] util::Result<PreparedQuery> PrepareQuery(
      const sql::SelectStatement& stmt);

  /// Answer()'s execution half: the full degradation ladder over an
  /// already-prepared query. Answer(stmt, ctx) ==
  /// AnswerPrepared(PrepareQuery(stmt), ctx).
  [[nodiscard]] util::Result<AnswerResult> AnswerPrepared(
      const PreparedQuery& prepared, const util::ExecContext& context);

  /// The ladder below tier 0: cost-gated, breaker-guarded full database,
  /// then the learned answerer, then typed kDegraded. `failure` is the
  /// tier-0 failure that forced degradation; `result` carries the
  /// answerability already computed. Increments the answered/fallback
  /// counters for whichever tier serves.
  [[nodiscard]] util::Result<AnswerResult> DegradeFrom(
      const sql::BoundQuery& bound, const util::ExecContext& context,
      const util::Status& failure, AnswerResult result);

  /// The context bounding a tier-0 (approximation set) attempt: the
  /// caller's when it carries a deadline, else the configured
  /// answer_deadline_seconds.
  util::ExecContext ApproxContextFor(const util::ExecContext& context) const;

  /// Tier 1 of the ladder: answer `bound` from the learned fallback.
  /// `cause` is the failure that forced degradation past the full
  /// database; when the learned answerer cannot take the query either,
  /// the ladder ends in Status::Degraded carrying both failures.
  [[nodiscard]] util::Result<AnswerResult> AnswerLearnedTier(
      const sql::BoundQuery& bound, const util::Status& cause,
      AnswerResult result) const;

  const storage::Database* db_;
  AsqpConfig config_;
  PreprocessResult preprocess_;
  rl::Policy policy_;
  storage::ApproximationSet set_;
  std::unique_ptr<AnswerabilityEstimator> estimator_;
  /// Column statistics over the full database for the cost-based planner,
  /// collected once at construction and shared with every engine rebuild
  /// (SetExecutionPool). Declared before engine_: the constructor feeds it
  /// into the engine's ExecOptions.
  std::shared_ptr<const plan::StatsCatalog> planner_stats_;
  /// Ordered indexes over (db_, set_), rebuilt with the set (see
  /// index_catalog()). Declared before engine_: engine rebuilds carry it.
  std::shared_ptr<const storage::IndexCatalog> index_catalog_;
  /// Externally injected execution pool (SetExecutionPool); preserved
  /// across engine rebuilds so MaterializeSet cannot silently detach the
  /// serving layer's shared pool.
  std::shared_ptr<util::ThreadPool> exec_pool_;
  exec::QueryEngine engine_;
  /// Learned fallback tier, rebuilt by MaterializeSet (FineTune swaps it;
  /// the serving layer's reader lock covers the swap).
  std::shared_ptr<const aqp::LearnedFallback> learned_;
  /// Breaker guarding degradation-path full-database executions.
  util::CircuitBreaker breaker_;

  /// Out-of-distribution queries observed since the last fine-tune
  /// (Answer() may run on many threads at once).
  mutable std::mutex drift_mu_;
  std::vector<sql::SelectStatement> drifted_queries_ ASQP_GUARDED_BY(drift_mu_);

  /// Approximation-set generation (see generation()).
  std::atomic<uint64_t> generation_{0};

  /// Monotonic Answer() counters (see answer_stats()).
  std::atomic<uint64_t> answered_{0};
  std::atomic<uint64_t> approx_served_{0};
  std::atomic<uint64_t> fallbacks_{0};
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> learned_served_{0};
};

}  // namespace core
}  // namespace asqp
