// The trained ASQP-RL model: inference (Algorithm 2), the user-facing
// Answer() mediator, interest-drift detection, and fine-tuning.
#pragma once

#include <memory>
#include <string>

#include "core/config.h"
#include "core/estimator.h"
#include "core/preprocess.h"
#include "exec/executor.h"
#include "metric/workload.h"
#include "rl/policy.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace core {

/// \brief Outcome of answering one user query through the mediator.
struct AnswerResult {
  exec::ResultSet result;
  /// True when served from the approximation set, false when the estimator
  /// routed the query to the full database.
  bool used_approximation = false;
  /// The estimator's answerability score for this query.
  double answerability = 0.0;
  /// True when the approximation-set execution was attempted but abandoned
  /// (deadline, cancellation, or resource exhaustion) and the result came
  /// from the degraded full-database path instead.
  bool fell_back = false;
  /// Why the mediator degraded (empty when `fell_back` is false).
  std::string fallback_reason;
};

class AsqpModel {
 public:
  AsqpModel(const storage::Database* db, AsqpConfig config,
            PreprocessResult preprocess, rl::Policy policy);

  /// Algorithm 2: sample tuple-group actions from the learned policy until
  /// `req_size` base tuples are selected (0 = the configured budget k).
  storage::ApproximationSet GenerateApproximationSet(size_t req_size = 0) const;

  /// The approximation set materialized at construction (greedy rollout).
  const storage::ApproximationSet& approximation_set() const { return set_; }

  /// Answerability estimate in [0, 1] for a query (Section 4.4).
  double EstimateAnswerability(const sql::SelectStatement& stmt) const;

  /// Answer a query through the mediator: approximation set when the
  /// estimator deems it answerable (estimate >= threshold), otherwise the
  /// full database. Aggregate queries are estimated via their SPJ skeleton
  /// but executed as written. Records drift statistics.
  [[nodiscard]] util::Result<AnswerResult> Answer(const sql::SelectStatement& stmt);
  [[nodiscard]] util::Result<AnswerResult> AnswerSql(const std::string& sql);

  /// Interest drift (C5): true once `drift_trigger` out-of-distribution
  /// queries with deviation confidence > `drift_confidence` accumulated.
  bool NeedsFineTuning() const;

  /// Fine-tune on the drifted workload: merge `new_queries` with the
  /// training representatives, re-run pre-processing and a shortened
  /// training run, and swap in the improved policy/approximation set.
  [[nodiscard]] util::Status FineTune(const metric::Workload& new_queries);

  const AnswerabilityEstimator& estimator() const { return *estimator_; }
  const rl::Policy& policy() const { return policy_; }
  const metric::Workload& representatives() const {
    return preprocess_.representatives;
  }
  const AsqpConfig& config() const { return config_; }
  /// Mutable access for post-training knobs (e.g. answer_deadline_seconds).
  AsqpConfig& mutable_config() { return config_; }
  size_t drifted_query_count() const { return drifted_queries_.size(); }

 private:
  friend class AsqpTrainer;

  /// Build the env for this model's configuration.
  std::unique_ptr<rl::Env> MakeEnv() const;
  void MaterializeSet();
  void CalibrateEstimator();

  const storage::Database* db_;
  AsqpConfig config_;
  PreprocessResult preprocess_;
  rl::Policy policy_;
  storage::ApproximationSet set_;
  std::unique_ptr<AnswerabilityEstimator> estimator_;
  exec::QueryEngine engine_;

  /// Out-of-distribution queries observed since the last fine-tune.
  std::vector<sql::SelectStatement> drifted_queries_;
};

}  // namespace core
}  // namespace asqp
