#include "core/preprocess.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "cluster/kmeans.h"
#include "exec/evaluator.h"
#include "exec/executor.h"
#include "relax/relax.h"
#include "sample/sampler.h"
#include "workloadgen/generator.h"
#include "sql/binder.h"
#include "util/random.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace core {

namespace {

using storage::Table;
using util::Result;
using util::Status;

/// A pool tuple under construction: rows keyed by table name.
struct RawTuple {
  std::map<std::string, uint32_t> rows;

  std::string Key() const {
    std::string key;
    for (const auto& [table, row] : rows) {
      key += table;
      key += ':';
      key += std::to_string(row);
      key += '|';
    }
    return key;
  }
};

/// Does `tuple` satisfy bound query `q`? Requires the tuple to cover every
/// FROM table of q; evaluates filters, equi-joins, and residuals.
bool Satisfies(const sql::BoundQuery& q, const RawTuple& tuple) {
  const size_t n = q.num_tables();
  std::vector<uint32_t> row_ids(n, 0);
  for (size_t t = 0; t < n; ++t) {
    auto it = tuple.rows.find(q.tables[t]->name());
    if (it == tuple.rows.end()) return false;
    row_ids[t] = it->second;
  }
  exec::JoinedRow jr{&q.tables, row_ids.data()};
  for (const auto& table_filters : q.filters) {
    for (const sql::ExprPtr& f : table_filters) {
      if (!exec::EvaluatePredicate(*f, jr)) return false;
    }
  }
  for (const sql::JoinPredicate& jp : q.joins) {
    const storage::Value l =
        q.tables[jp.left_table]->column(jp.left_col).ValueAt(row_ids[jp.left_table]);
    const storage::Value r =
        q.tables[jp.right_table]->column(jp.right_col).ValueAt(row_ids[jp.right_table]);
    if (l.is_null() || r.is_null() || l.Compare(r) != 0) return false;
  }
  for (const sql::ExprPtr& res : q.residual) {
    if (!exec::EvaluatePredicate(*res, jr)) return false;
  }
  return true;
}

}  // namespace

Result<PreprocessResult> Preprocess(const storage::Database& db,
                                    const metric::Workload& workload,
                                    const AsqpConfig& config) {
  if (workload.empty()) {
    return Status::InvalidArgument("pre-processing requires a non-empty workload");
  }
  util::Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const workloadgen::DatabaseStats stats = workloadgen::DatabaseStats::Collect(db);

  // Aggregates are rewritten to their SPJ skeletons first (Section 3).
  metric::Workload spj_workload = workload.ToSpjWorkload();

  // Exploration queries (C4): a few statistics-generated single-table
  // queries appended at low weight, so the pool (and the reward) reach a
  // little beyond the observed workload.
  if (config.exploration_queries > 0) {
    const workloadgen::QueryGenerator generator(&db, &stats, {});
    workloadgen::QueryGenOptions gen_options;
    gen_options.max_joins = 0;
    gen_options.max_predicates = 2;
    const metric::Workload exploration = generator.GenerateWorkload(
        config.exploration_queries, gen_options, config.seed ^ 0xE47ULL);
    const double total_weight =
        config.exploration_weight / std::max<size_t>(1, exploration.size());
    for (const metric::WeightedQuery& q : exploration.queries()) {
      spj_workload.Add(q.stmt.Clone(), total_weight);
    }
    spj_workload.NormalizeWeights();
  }

  // ---- 1+2: relax, embed, cluster -> representatives.
  const embed::QueryEmbedder query_embedder(config.embed_dim);
  std::vector<sql::SelectStatement> relaxed;
  std::vector<embed::Vector> embeddings;
  relaxed.reserve(spj_workload.size());
  for (const metric::WeightedQuery& q : spj_workload.queries()) {
    relaxed.push_back(relax::RelaxQuery(q.stmt, stats, config.relax, &rng));
    embeddings.push_back(query_embedder.Embed(relaxed.back()));
  }

  const size_t num_reps =
      std::min(config.num_representatives, spj_workload.size());
  cluster::KMeansOptions cluster_options;
  cluster_options.seed = config.seed;
  ASQP_ASSIGN_OR_RETURN(cluster::ClusteringResult clustering,
                        cluster::KMedoids(embeddings, num_reps, cluster_options));

  PreprocessResult result;
  // Representative weight = total original weight of its cluster.
  std::vector<double> cluster_weight(clustering.medoids.size(), 0.0);
  for (size_t i = 0; i < spj_workload.size(); ++i) {
    cluster_weight[clustering.assignment[i]] += spj_workload.query(i).weight;
  }
  for (size_t c = 0; c < clustering.medoids.size(); ++c) {
    const size_t medoid = clustering.medoids[c];
    result.representatives.Add(spj_workload.query(medoid).stmt.Clone(),
                               cluster_weight[c]);
    // The estimator compares incoming queries against the *original*
    // statements: relaxed embeddings would blur exactly the predicate
    // semantics that distinguish a drifted interest.
    result.representative_embeddings.push_back(
        query_embedder.Embed(spj_workload.query(medoid).stmt));
  }
  result.representatives.NormalizeWeights();

  // ---- 3: execute relaxed representatives with provenance.
  const size_t execute_count = std::max<size_t>(
      1, static_cast<size_t>(config.representative_fraction *
                             static_cast<double>(clustering.medoids.size())));
  // Representative executions are the exec-heavy part of setup; they run
  // morsel-parallel when the configuration opts in (config.exec_threads).
  exec::ExecOptions exec_options;
  exec_options.num_threads = config.exec_threads;
  if (config.exec_morsel_rows > 0) {
    exec_options.morsel_rows = config.exec_morsel_rows;
  }
  exec::QueryEngine engine(exec_options);
  storage::DatabaseView full_view(&db);

  std::vector<RawTuple> raw_pool;
  std::unordered_map<std::string, size_t> pool_index;
  size_t executed = 0;
  for (size_t c = 0; c < clustering.medoids.size() && executed < execute_count;
       ++c) {
    const sql::SelectStatement& relaxed_stmt = relaxed[clustering.medoids[c]];
    auto bound = sql::Bind(relaxed_stmt, db);
    if (!bound.ok()) continue;
    auto prov = engine.ExecuteWithProvenance(bound.value(), full_view,
                                             config.max_tuples_per_rep);
    if (!prov.ok()) continue;
    ++executed;
    result.joined_tuples_collected += prov.value().tuples.size();
    for (const auto& tuple_rows : prov.value().tuples) {
      RawTuple raw;
      for (size_t t = 0; t < prov.value().table_names.size(); ++t) {
        raw.rows[prov.value().table_names[t]] = tuple_rows[t];
      }
      const std::string key = raw.Key();
      if (pool_index.emplace(key, raw_pool.size()).second) {
        raw_pool.push_back(std::move(raw));
      }
    }
  }
  result.representatives_executed = executed;
  if (raw_pool.empty()) {
    return Status::ExecutionError(
        "pre-processing collected no tuples: every representative failed or "
        "returned empty results");
  }

  // Bind the ORIGINAL representative statements (incidence + targets are
  // measured against what the user actually asked, not the relaxation).
  std::vector<sql::BoundQuery> bound_reps;
  std::vector<size_t> rep_of_bound;  // representative index per bound entry
  for (size_t c = 0; c < result.representatives.size(); ++c) {
    auto bound = sql::Bind(result.representatives.query(c).stmt, db);
    if (!bound.ok()) continue;
    bound_reps.push_back(std::move(bound).value());
    rep_of_bound.push_back(c);
  }
  if (bound_reps.empty()) {
    return Status::ExecutionError("no representative query could be bound");
  }
  const size_t num_queries = bound_reps.size();

  // Raw incidence: which raw tuples satisfy which representatives.
  std::vector<uint8_t> raw_incidence(raw_pool.size() * num_queries, 0);
  for (size_t p = 0; p < raw_pool.size(); ++p) {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      if (Satisfies(bound_reps[qi], raw_pool[p])) {
        raw_incidence[p * num_queries + qi] = 1;
      }
    }
  }

  // Targets min(F, |q(T)|) and weights (needed for the quota below).
  std::vector<float> query_target(num_queries);
  std::vector<float> query_weight(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    sql::SelectStatement counting =
        result.representatives.query(rep_of_bound[qi]).stmt.Clone();
    counting.limit = -1;
    counting.order_by.clear();
    auto bound = sql::Bind(counting, db);
    size_t full_size = 0;
    if (bound.ok()) {
      auto prov = engine.ExecuteWithProvenance(bound.value(), full_view, 0);
      if (prov.ok()) full_size = prov.value().tuples.size();
    }
    const size_t target =
        std::max<size_t>(1, std::min<size_t>(full_size == 0 ? 1 : full_size,
                                             static_cast<size_t>(config.frame_size)));
    query_target[qi] = static_cast<float>(target);
    query_weight[qi] =
        static_cast<float>(result.representatives.query(rep_of_bound[qi]).weight);
  }

  // ---- 4a: pool selection. Subsampling must not starve any query of the
  // tuples it needs: reserve up to 3x each representative's frame target
  // from its satisfying tuples, then fill the remaining pool budget by
  // variational subsampling over the rest (generalization mass).
  std::vector<size_t> kept(raw_pool.size());
  for (size_t i = 0; i < kept.size(); ++i) kept[i] = i;
  if (raw_pool.size() > config.pool_target) {
    std::vector<uint8_t> reserved(raw_pool.size(), 0);
    size_t reserved_count = 0;
    if (config.reserve_query_quota) {
      util::Rng quota_rng(config.seed ^ 0xC0FFEEULL);
      for (size_t qi = 0; qi < num_queries; ++qi) {
        std::vector<size_t> satisfying;
        for (size_t p = 0; p < raw_pool.size(); ++p) {
          if (raw_incidence[p * num_queries + qi] && !reserved[p]) {
            satisfying.push_back(p);
          }
        }
        const size_t quota = std::min<size_t>(
            satisfying.size(), static_cast<size_t>(query_target[qi]) * 3);
        for (size_t s : quota_rng.SampleIndices(satisfying.size(), quota)) {
          if (!reserved[satisfying[s]]) {
            reserved[satisfying[s]] = 1;
            ++reserved_count;
          }
        }
      }
    }
    std::vector<size_t> rest;
    for (size_t p = 0; p < raw_pool.size(); ++p) {
      if (!reserved[p]) rest.push_back(p);
    }
    kept.clear();
    for (size_t p = 0; p < raw_pool.size(); ++p) {
      if (reserved[p]) kept.push_back(p);
    }
    const size_t fill = config.pool_target > reserved_count
                            ? config.pool_target - reserved_count
                            : 0;
    if (fill > 0 && !rest.empty()) {
      const embed::TupleEmbedder tuple_embedder(config.embed_dim);
      std::vector<embed::Vector> tuple_vecs;
      tuple_vecs.reserve(rest.size());
      std::map<std::string, std::shared_ptr<Table>> table_cache;
      for (size_t p : rest) {
        std::vector<const Table*> tables;
        std::vector<uint32_t> rows;
        for (const auto& [name, row] : raw_pool[p].rows) {
          auto it = table_cache.find(name);
          if (it == table_cache.end()) {
            auto t = db.GetTable(name);
            if (!t.ok()) continue;
            it = table_cache.emplace(name, t.value()).first;
          }
          tables.push_back(it->second.get());
          rows.push_back(row);
        }
        tuple_vecs.push_back(tuple_embedder.EmbedJoined(tables, rows));
      }
      sample::VariationalOptions vopts;
      vopts.seed = config.seed ^ 0x5bd1e995ULL;
      vopts.num_strata = std::min<size_t>(16, rest.size());
      ASQP_ASSIGN_OR_RETURN(std::vector<size_t> extra,
                            sample::VariationalSubsample(tuple_vecs, fill, vopts));
      for (size_t i : extra) kept.push_back(rest[i]);
    }
    std::sort(kept.begin(), kept.end());
  }

  // ---- 4b: build the ActionSpace: pool, incidence, actions.
  rl::ActionSpace& space = result.space;
  space.budget = config.k;

  // Table name -> dense index.
  std::map<std::string, uint32_t> table_ids;
  for (size_t ki : kept) {
    for (const auto& [name, _] : raw_pool[ki].rows) {
      if (table_ids.emplace(name, static_cast<uint32_t>(table_ids.size())).second) {
        space.table_names.push_back(name);
      }
    }
  }
  // Re-map: table_ids insertion order matches push_back order only if we
  // rebuild; rebuild names deterministically from the map.
  space.table_names.clear();
  space.table_names.resize(table_ids.size());
  {
    uint32_t next = 0;
    for (auto& [name, id] : table_ids) {
      id = next++;
      space.table_names[id] = name;
    }
  }

  space.pool.reserve(kept.size());
  for (size_t ki : kept) {
    rl::PoolTuple p;
    for (const auto& [name, row] : raw_pool[ki].rows) {
      p.rows.emplace_back(table_ids[name], row);
    }
    space.pool.push_back(std::move(p));
  }

  space.num_queries = num_queries;
  space.query_target = query_target;
  space.query_weight = query_weight;

  // Incidence restricted to the kept pool (precomputed on the raw pool).
  const size_t pool_size = space.pool.size();
  std::vector<uint8_t> incidence(pool_size * space.num_queries, 0);
  for (size_t p = 0; p < pool_size; ++p) {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      incidence[p * space.num_queries + qi] =
          raw_incidence[kept[p] * num_queries + qi];
    }
  }

  // Actions: group pool tuples by their first covering representative so
  // an action bundles tuples that answer the same query, chunked to
  // `action_group_size`.
  std::vector<std::vector<uint32_t>> by_rep(space.num_queries + 1);
  for (size_t p = 0; p < pool_size; ++p) {
    size_t owner = space.num_queries;  // "covers nothing" bucket
    for (size_t qi = 0; qi < space.num_queries; ++qi) {
      if (incidence[p * space.num_queries + qi]) {
        owner = qi;
        break;
      }
    }
    by_rep[owner].push_back(static_cast<uint32_t>(p));
  }
  const size_t group = std::max<size_t>(1, config.action_group_size);
  for (const auto& bucket : by_rep) {
    for (size_t start = 0; start < bucket.size(); start += group) {
      const size_t end = std::min(bucket.size(), start + group);
      space.action_tuples.emplace_back(bucket.begin() + start,
                                       bucket.begin() + end);
    }
  }

  // Costs and contributions per action.
  const size_t num_actions = space.action_tuples.size();
  space.action_cost.resize(num_actions);
  space.contribution.assign(num_actions * space.num_queries, 0.0f);
  for (size_t a = 0; a < num_actions; ++a) {
    // Distinct base tuples.
    std::vector<std::pair<uint32_t, uint32_t>> base;
    for (uint32_t p : space.action_tuples[a]) {
      for (const auto& row : space.pool[p].rows) base.push_back(row);
      for (size_t qi = 0; qi < space.num_queries; ++qi) {
        space.contribution[a * space.num_queries + qi] +=
            static_cast<float>(incidence[p * space.num_queries + qi]);
      }
    }
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());
    space.action_cost[a] = static_cast<uint32_t>(base.size());
  }
  return result;
}

}  // namespace core
}  // namespace asqp
