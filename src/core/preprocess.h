// The pre-processing pipeline of Algorithm 1, lines 1-4 (Section 4.2):
//
//   1. relax every training query (query generalization),
//   2. embed the generalized queries and cluster them; the cluster medoids
//      become the *query representatives* Q-hat,
//   3. execute (a configurable fraction of) the relaxed representatives
//      over the full database with provenance, keeping the joined base
//      tuples,
//   4. variationally subsample the union into the tuple *pool*, group pool
//      tuples into actions, and precompute the action x query contribution
//      matrix used as the training reward model.
//
// Incidence is exact: a pool tuple contributes a result row to a
// representative query iff the tuple covers the query's FROM tables and
// its rows satisfy all of the query's predicates (checked with the real
// expression evaluator on the original, un-relaxed statement).
#pragma once

#include <vector>

#include "core/config.h"
#include "embed/embedder.h"
#include "metric/workload.h"
#include "rl/action_space.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace core {

/// \brief Everything pre-processing hands to training and inference.
struct PreprocessResult {
  rl::ActionSpace space;
  /// The selected representatives (original statements) with weights; the
  /// reward model columns are aligned with this order.
  metric::Workload representatives;
  /// Embedding of every representative (for the answerability estimator).
  std::vector<embed::Vector> representative_embeddings;
  /// Pool statistics for reporting.
  size_t joined_tuples_collected = 0;
  size_t representatives_executed = 0;
};

/// Run the pipeline. Fails if no representative query can be executed.
[[nodiscard]] util::Result<PreprocessResult> Preprocess(const storage::Database& db,
                                          const metric::Workload& workload,
                                          const AsqpConfig& config);

}  // namespace core
}  // namespace asqp
