#include "core/trainer.h"

#include "util/stopwatch.h"
#include "workloadgen/generator.h"

namespace asqp {
namespace core {

rl::EnvFactory MakeEnvFactory(const rl::ActionSpace* space,
                              const AsqpConfig& config) {
  const EnvKind kind = config.env;
  const size_t batch = config.batch_queries;
  const size_t drp_horizon = config.drp_horizon;
  const size_t refine = config.hybrid_refine_horizon;
  return [space, kind, batch, drp_horizon, refine]() -> std::unique_ptr<rl::Env> {
    switch (kind) {
      case EnvKind::kGsl:
        return std::make_unique<rl::GslEnv>(space, batch);
      case EnvKind::kDrp:
        return std::make_unique<rl::DrpEnv>(space, batch, drp_horizon);
      case EnvKind::kHybrid:
        return std::make_unique<rl::HybridEnv>(space, batch, refine);
    }
    return nullptr;
  };
}

util::Result<TrainReport> AsqpTrainer::Train(
    const storage::Database& db, const metric::Workload& workload) const {
  util::Stopwatch watch;
  ASQP_ASSIGN_OR_RETURN(PreprocessResult preprocess,
                        Preprocess(db, workload, config_));

  // The model owns the action space; train against it in place.
  auto model = std::make_unique<AsqpModel>(&db, config_, std::move(preprocess),
                                           rl::Policy{});
  rl::TrainerConfig trainer_config = config_.trainer;
  trainer_config.seed ^= config_.seed;
  ASQP_ASSIGN_OR_RETURN(
      rl::TrainResult trained,
      rl::Train(MakeEnvFactory(&model->preprocess_.space, config_),
                trainer_config));

  model->policy_ = std::move(trained.policy);
  model->MaterializeSet();
  model->CalibrateEstimator();

  TrainReport report;
  report.iteration_scores = std::move(trained.iteration_scores);
  report.episodes = trained.episodes_run;
  report.model = std::move(model);
  report.setup_seconds = watch.ElapsedSeconds();
  return report;
}

util::Result<TrainReport> AsqpTrainer::TrainWithoutWorkload(
    const storage::Database& db, const std::vector<workloadgen::FkEdge>& fks,
    size_t generated_queries, const metric::Workload* user_queries) const {
  const workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(db);
  const workloadgen::QueryGenerator generator(&db, &stats, fks);
  workloadgen::QueryGenOptions options;
  options.max_joins = 1;
  metric::Workload workload =
      generator.GenerateWorkload(generated_queries, options, config_.seed);
  if (user_queries != nullptr) {
    // User-contributed queries carry extra weight: they are evidence of
    // actual interest, whereas generated queries only cover the space.
    for (const metric::WeightedQuery& q : user_queries->queries()) {
      workload.Add(q.stmt.Clone(), 3.0 * q.weight * generated_queries);
    }
  }
  workload.NormalizeWeights();
  return Train(db, workload);
}

}  // namespace core
}  // namespace asqp
