// Algorithm 1: end-to-end ASQP-RL training. Pre-process the database and
// workload into an action space, train the configured agent in the
// configured environment, and wrap the result in an AsqpModel.
#pragma once

#include "core/config.h"
#include "core/model.h"
#include "metric/workload.h"
#include "storage/database.h"
#include "util/status.h"
#include "workloadgen/generator.h"

namespace asqp {
namespace core {

struct TrainReport {
  std::unique_ptr<AsqpModel> model;
  /// Training curve (mean end-of-episode score per iteration).
  std::vector<double> iteration_scores;
  double setup_seconds = 0.0;
  size_t episodes = 0;
};

class AsqpTrainer {
 public:
  explicit AsqpTrainer(AsqpConfig config) : config_(std::move(config)) {}

  /// Train on a known workload. `db` must outlive the returned model.
  [[nodiscard]] util::Result<TrainReport> Train(const storage::Database& db,
                                  const metric::Workload& workload) const;

  /// Unknown-workload mode (Section 4.5): generate a statistics-driven
  /// workload of `generated_queries` queries over the FK graph and train
  /// on it (optionally merged with whatever user queries exist so far).
  [[nodiscard]] util::Result<TrainReport> TrainWithoutWorkload(
      const storage::Database& db,
      const std::vector<workloadgen::FkEdge>& fks, size_t generated_queries,
      const metric::Workload* user_queries = nullptr) const;

  const AsqpConfig& config() const { return config_; }

 private:
  AsqpConfig config_;
};

/// Helper shared by AsqpTrainer and AsqpModel::FineTune: build an env
/// factory over `space` for the configured environment kind.
rl::EnvFactory MakeEnvFactory(const rl::ActionSpace* space,
                              const AsqpConfig& config);

}  // namespace core
}  // namespace asqp
