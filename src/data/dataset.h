// Synthetic dataset bundles standing in for the paper's evaluation data
// (see DESIGN.md, "Substitutions"): IMDB-JOB, MAS, and FLIGHTS. Each bundle
// carries the database, its foreign-key join graph, and a paper-shaped
// query workload. All generation is deterministic in (scale, seed).
#pragma once

#include <memory>
#include <vector>

#include "metric/workload.h"
#include "storage/database.h"
#include "workloadgen/generator.h"

namespace asqp {
namespace data {

struct DatasetBundle {
  std::shared_ptr<storage::Database> db;
  std::vector<workloadgen::FkEdge> fks;
  /// SPJ workload (the paper's non-aggregate exploration queries).
  metric::Workload workload;
  std::string name;
};

struct DatasetOptions {
  /// Linear size multiplier. scale=1 targets laptop-friendly sizes
  /// (10^4-10^5 rows per large table); the bench harness raises it for
  /// paper-shaped runs.
  double scale = 1.0;
  uint64_t seed = 42;
  /// Number of workload queries to generate.
  size_t workload_size = 60;
};

/// IMDB-JOB-like: movies / companies / people with skewed join fan-out.
/// Tables: title, company, movie_companies, person, cast_info.
DatasetBundle MakeImdbJob(const DatasetOptions& options = {});

/// MAS-like: authors / publications / venues.
/// Tables: author, venue, publication, writes.
DatasetBundle MakeMas(const DatasetOptions& options = {});

/// FLIGHTS-like (IDEBench-style): a fact table plus two small dimensions.
/// Tables: flights, airports, carriers.
DatasetBundle MakeFlights(const DatasetOptions& options = {});

/// Aggregate workload over the FLIGHTS bundle (Section 6.4): GROUP BY +
/// SUM / AVG / COUNT queries, split evenly across operators.
metric::Workload MakeFlightsAggregateWorkload(const DatasetBundle& flights,
                                              size_t count, uint64_t seed);

}  // namespace data
}  // namespace asqp
