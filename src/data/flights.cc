// FLIGHTS-like synthetic dataset (IDEBench-style): one wide fact table of
// flight records plus airport / carrier dimensions. Delays are bimodal
// (mostly near zero, a long late tail), correlated with carrier and month —
// the structure the aggregate workload of Section 6.4 groups over.
#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace data {

namespace {

using sql::Expr;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

const char* kCarriers[] = {"aa", "dl", "ua", "wn", "b6", "as", "nk", "f9"};
const char* kAirports[] = {"atl", "lax", "ord", "dfw", "den", "jfk", "sfo",
                           "sea", "mia", "bos", "phx", "iah", "clt", "las"};
const char* kStates[] = {"ga", "ca", "il", "tx", "co", "ny", "ca",
                         "wa", "fl", "ma", "az", "tx", "nc", "nv"};

}  // namespace

DatasetBundle MakeFlights(const DatasetOptions& options) {
  util::Rng rng(options.seed + 2);
  const auto scaled = [&](size_t base) {
    return static_cast<size_t>(static_cast<double>(base) * options.scale) + 1;
  };
  const size_t num_flights = scaled(50000);

  DatasetBundle bundle;
  bundle.name = "flights";
  bundle.db = std::make_shared<storage::Database>();

  // airports(code, city, state)
  auto airports = std::make_shared<Table>(
      "airports", Schema({{"code", ValueType::kString},
                          {"city", ValueType::kString},
                          {"state", ValueType::kString}}));
  for (size_t i = 0; i < std::size(kAirports); ++i) {
    (void)airports->AppendRow({Value(std::string(kAirports[i])),
                               Value(util::Format("city_%zu", i)),
                               Value(std::string(kStates[i]))});
  }

  // carriers(code, name)
  auto carriers = std::make_shared<Table>(
      "carriers", Schema({{"code", ValueType::kString},
                          {"name", ValueType::kString}}));
  for (size_t i = 0; i < std::size(kCarriers); ++i) {
    (void)carriers->AppendRow({Value(std::string(kCarriers[i])),
                               Value(util::Format("carrier_%zu", i))});
  }

  // flights(id, carrier, origin, dest, month, day_of_week, distance,
  //         dep_delay, arr_delay, air_time)
  auto flights = std::make_shared<Table>(
      "flights", Schema({{"id", ValueType::kInt64},
                         {"carrier", ValueType::kString},
                         {"origin", ValueType::kString},
                         {"dest", ValueType::kString},
                         {"month", ValueType::kInt64},
                         {"day_of_week", ValueType::kInt64},
                         {"distance", ValueType::kInt64},
                         {"dep_delay", ValueType::kDouble},
                         {"arr_delay", ValueType::kDouble},
                         {"air_time", ValueType::kDouble}}));
  // Per-carrier punctuality offset.
  double carrier_bias[std::size(kCarriers)];
  for (double& b : carrier_bias) b = rng.Normal(0.0, 4.0);

  for (size_t i = 0; i < num_flights; ++i) {
    const size_t carrier = rng.Zipf(std::size(kCarriers), 0.7);
    const size_t origin = rng.Zipf(std::size(kAirports), 0.8);
    size_t dest = rng.Zipf(std::size(kAirports), 0.8);
    if (dest == origin) dest = (dest + 1) % std::size(kAirports);
    const int64_t month = 1 + static_cast<int64_t>(rng.NextBounded(12));
    const int64_t dow = 1 + static_cast<int64_t>(rng.NextBounded(7));
    const int64_t distance =
        static_cast<int64_t>(std::clamp(std::exp(rng.Normal(6.5, 0.7)), 100.0,
                                        5000.0));
    // Bimodal delays: 75% near-on-time, 25% late tail; summer/winter worse.
    const double season = (month == 7 || month == 8 || month == 12) ? 8.0 : 0.0;
    double dep_delay;
    if (rng.Bernoulli(0.75)) {
      dep_delay = rng.Normal(-2.0, 6.0);
    } else {
      dep_delay = std::exp(rng.Normal(3.2, 0.8));
    }
    dep_delay += carrier_bias[carrier] + season;
    const double air_time = static_cast<double>(distance) / 8.0 +
                            rng.Normal(0.0, 10.0);
    const double arr_delay = dep_delay + rng.Normal(0.0, 8.0);
    (void)flights->AppendRow(
        {Value(static_cast<int64_t>(i)), Value(std::string(kCarriers[carrier])),
         Value(std::string(kAirports[origin])),
         Value(std::string(kAirports[dest])), Value(month), Value(dow),
         Value(distance), Value(dep_delay), Value(arr_delay),
         Value(std::max(10.0, air_time))});
  }

  (void)bundle.db->AddTable(airports);
  (void)bundle.db->AddTable(carriers);
  (void)bundle.db->AddTable(flights);

  bundle.fks = {
      {"flights", "carrier", "carriers", "code"},
      {"flights", "origin", "airports", "code"},
  };

  workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  workloadgen::QueryGenerator gen(bundle.db.get(), &stats, bundle.fks);
  workloadgen::QueryGenOptions qopts;
  qopts.max_joins = 1;
  qopts.max_predicates = 3;
  bundle.workload =
      gen.GenerateWorkload(options.workload_size, qopts, options.seed ^ 0xF11ULL);
  return bundle;
}

metric::Workload MakeFlightsAggregateWorkload(const DatasetBundle& /*flights*/,
                                              size_t count, uint64_t seed) {
  // IDEBench-style aggregates over the fact table: SUM / AVG / COUNT of a
  // numeric measure, half with a GROUP BY over a categorical dimension,
  // always behind 1-2 selective predicates.
  util::Rng rng(seed);

  metric::Workload out;
  const char* kMeasures[] = {"dep_delay", "arr_delay", "distance", "air_time"};
  const char* kDims[] = {"carrier", "origin", "dest"};
  for (size_t i = 0; i < count; ++i) {
    // Queries cycle deterministically through the six operator categories
    // of Figure 12: {SUM, AVG, CNT} x {group, no group}, each behind 1-2
    // selective predicates on the fact table.
    sql::SelectStatement stmt;
    stmt.from.push_back(sql::TableRef{"flights", ""});
    std::vector<sql::ExprPtr> conjuncts;
    conjuncts.push_back(sql::Expr::Binary(
        sql::BinOp::kEq, Expr::ColumnRef("flights", "month"),
        Expr::Literal(Value(static_cast<int64_t>(1 + rng.NextBounded(12))))));
    if (rng.Bernoulli(0.5)) {
      conjuncts.push_back(sql::Expr::Binary(
          sql::BinOp::kGe, Expr::ColumnRef("flights", "distance"),
          Expr::Literal(Value(static_cast<int64_t>(rng.UniformInt(200, 1500))))));
    }
    stmt.where = sql::AndAll(conjuncts);

    const bool grouped = (i % 2) == 0;
    const int op = static_cast<int>((i / 2) % 3);  // 0=SUM 1=AVG 2=CNT
    if (grouped) {
      const char* dim = kDims[rng.NextBounded(std::size(kDims))];
      stmt.group_by.push_back(Expr::ColumnRef("flights", dim));
      sql::SelectItem key;
      key.expr = Expr::ColumnRef("flights", dim);
      stmt.items.push_back(std::move(key));
    }
    sql::SelectItem agg;
    if (op == 2) {
      agg.agg = sql::AggFunc::kCount;
      agg.star = true;
    } else {
      agg.agg = op == 0 ? sql::AggFunc::kSum : sql::AggFunc::kAvg;
      agg.expr = Expr::ColumnRef(
          "flights", kMeasures[rng.NextBounded(std::size(kMeasures))]);
    }
    stmt.items.push_back(std::move(agg));
    out.Add(std::move(stmt));
  }
  out.NormalizeWeights();
  return out;
}

}  // namespace data
}  // namespace asqp
