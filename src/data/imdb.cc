// IMDB-JOB-like synthetic dataset. Mirrors the join shape of the JOB
// benchmark schema: a central `title` fact table, a many-to-many link to
// companies (`movie_companies`), and a skewed many-to-many cast relation
// (`cast_info`). Categorical distributions are Zipf-skewed and production
// years correlate with ratings so range predicates are selective in
// interesting ways.
#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace data {

namespace {

using storage::Field;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

const char* kKinds[] = {"movie", "tv_series", "short", "documentary",
                        "video_game"};
const char* kCountries[] = {"us", "uk", "fr", "de", "jp", "in", "it", "ca",
                            "es", "kr"};
const char* kGenres[] = {"drama", "comedy", "action", "thriller", "horror",
                         "romance", "sci_fi", "animation", "crime", "war"};
const char* kRoles[] = {"actor", "actress", "director", "producer", "writer",
                        "composer"};

}  // namespace

DatasetBundle MakeImdbJob(const DatasetOptions& options) {
  util::Rng rng(options.seed);
  const auto scaled = [&](size_t base) {
    return static_cast<size_t>(static_cast<double>(base) * options.scale) + 1;
  };
  const size_t num_titles = scaled(20000);
  const size_t num_companies = scaled(800);
  const size_t num_people = scaled(6000);
  const size_t num_movie_companies = scaled(30000);
  const size_t num_cast = scaled(60000);

  DatasetBundle bundle;
  bundle.name = "imdb";
  bundle.db = std::make_shared<storage::Database>();

  // company(id, name, country)
  auto company = std::make_shared<Table>(
      "company", Schema({{"id", ValueType::kInt64},
                         {"name", ValueType::kString},
                         {"country", ValueType::kString}}));
  for (size_t i = 0; i < num_companies; ++i) {
    const size_t country = rng.Zipf(std::size(kCountries), 0.9);
    (void)company->AppendRow({Value(static_cast<int64_t>(i)),
                              Value(util::Format("studio_%zu", i)),
                              Value(std::string(kCountries[country]))});
  }

  // person(id, name, birth_year)
  auto person = std::make_shared<Table>(
      "person", Schema({{"id", ValueType::kInt64},
                        {"name", ValueType::kString},
                        {"birth_year", ValueType::kInt64}}));
  for (size_t i = 0; i < num_people; ++i) {
    const int64_t birth =
        static_cast<int64_t>(std::clamp(rng.Normal(1965.0, 18.0), 1900.0, 2005.0));
    (void)person->AppendRow({Value(static_cast<int64_t>(i)),
                             Value(util::Format("person_%zu", i)),
                             Value(birth)});
  }

  // title(id, name, kind, genre, production_year, rating, votes)
  auto title = std::make_shared<Table>(
      "title", Schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"kind", ValueType::kString},
                       {"genre", ValueType::kString},
                       {"production_year", ValueType::kInt64},
                       {"rating", ValueType::kDouble},
                       {"votes", ValueType::kInt64}}));
  for (size_t i = 0; i < num_titles; ++i) {
    const size_t kind = rng.Zipf(std::size(kKinds), 1.1);
    const size_t genre = rng.Zipf(std::size(kGenres), 0.8);
    // Production years skew recent.
    const double u = rng.UniformDouble();
    const int64_t year = 1930 + static_cast<int64_t>(93.0 * std::pow(u, 0.5));
    // Ratings correlate weakly with age (older surviving titles rate
    // higher) plus noise.
    const double rating = std::clamp(
        6.2 + (2000.0 - static_cast<double>(year)) * 0.01 + rng.Normal(0.0, 1.1),
        1.0, 10.0);
    const int64_t votes = static_cast<int64_t>(
        std::exp(rng.Normal(6.0, 2.0)));  // log-normal popularity
    (void)title->AppendRow(
        {Value(static_cast<int64_t>(i)), Value(util::Format("film_%zu", i)),
         Value(std::string(kKinds[kind])), Value(std::string(kGenres[genre])),
         Value(year), Value(rating), Value(votes)});
  }

  // movie_companies(movie_id, company_id, note)
  auto movie_companies = std::make_shared<Table>(
      "movie_companies", Schema({{"movie_id", ValueType::kInt64},
                                 {"company_id", ValueType::kInt64},
                                 {"note", ValueType::kString}}));
  const char* kNotes[] = {"production", "distribution", "vfx", "finance"};
  for (size_t i = 0; i < num_movie_companies; ++i) {
    // Popular movies and popular companies attract more links.
    const int64_t movie = static_cast<int64_t>(rng.Zipf(num_titles, 0.6));
    const int64_t comp = static_cast<int64_t>(rng.Zipf(num_companies, 0.9));
    (void)movie_companies->AppendRow(
        {Value(movie), Value(comp),
         Value(std::string(kNotes[rng.NextBounded(std::size(kNotes))]))});
  }

  // cast_info(person_id, movie_id, role)
  auto cast_info = std::make_shared<Table>(
      "cast_info", Schema({{"person_id", ValueType::kInt64},
                           {"movie_id", ValueType::kInt64},
                           {"role", ValueType::kString}}));
  for (size_t i = 0; i < num_cast; ++i) {
    const int64_t p = static_cast<int64_t>(rng.Zipf(num_people, 0.7));
    const int64_t m = static_cast<int64_t>(rng.Zipf(num_titles, 0.6));
    const size_t role = rng.Zipf(std::size(kRoles), 0.9);
    (void)cast_info->AppendRow(
        {Value(p), Value(m), Value(std::string(kRoles[role]))});
  }

  (void)bundle.db->AddTable(company);
  (void)bundle.db->AddTable(person);
  (void)bundle.db->AddTable(title);
  (void)bundle.db->AddTable(movie_companies);
  (void)bundle.db->AddTable(cast_info);

  bundle.fks = {
      {"movie_companies", "movie_id", "title", "id"},
      {"movie_companies", "company_id", "company", "id"},
      {"cast_info", "movie_id", "title", "id"},
      {"cast_info", "person_id", "person", "id"},
  };

  // Paper-shaped workload: complex SPJ queries with 0-2 joins.
  workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  workloadgen::QueryGenerator gen(bundle.db.get(), &stats, bundle.fks);
  workloadgen::QueryGenOptions qopts;
  qopts.max_joins = 2;
  qopts.max_predicates = 3;
  qopts.agg_fraction = 0.0;
  bundle.workload =
      gen.GenerateWorkload(options.workload_size, qopts, options.seed ^ 0x17DBULL);
  return bundle;
}

}  // namespace data
}  // namespace asqp
