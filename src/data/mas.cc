// MAS-like synthetic dataset (Microsoft Academic Search): authors,
// venues, publications, and a many-to-many `writes` relation. Citation
// counts are heavy-tailed and correlate with venue prestige; publication
// years skew recent — the properties the MAS workload queries select on.
#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace data {

namespace {

using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

const char* kAffiliations[] = {"mit",      "stanford", "cmu",     "berkeley",
                               "tel_aviv", "upenn",    "oxford",  "eth",
                               "tsinghua", "waterloo", "columbia", "uw"};
const char* kVenueTypes[] = {"conference", "journal", "workshop"};
const char* kAreas[] = {"databases", "ml", "systems", "theory", "pl",
                        "networks", "security", "hci"};

}  // namespace

DatasetBundle MakeMas(const DatasetOptions& options) {
  util::Rng rng(options.seed + 1);
  const auto scaled = [&](size_t base) {
    return static_cast<size_t>(static_cast<double>(base) * options.scale) + 1;
  };
  const size_t num_authors = scaled(3000);
  const size_t num_venues = scaled(250);
  const size_t num_pubs = scaled(12000);
  const size_t num_writes = scaled(30000);

  DatasetBundle bundle;
  bundle.name = "mas";
  bundle.db = std::make_shared<storage::Database>();

  // venue(id, name, type, area, prestige)
  auto venue = std::make_shared<Table>(
      "venue", Schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"type", ValueType::kString},
                       {"area", ValueType::kString},
                       {"prestige", ValueType::kDouble}}));
  std::vector<double> venue_prestige(num_venues);
  for (size_t i = 0; i < num_venues; ++i) {
    venue_prestige[i] = std::clamp(rng.Normal(0.5, 0.22), 0.0, 1.0);
    (void)venue->AppendRow(
        {Value(static_cast<int64_t>(i)), Value(util::Format("venue_%zu", i)),
         Value(std::string(kVenueTypes[rng.Zipf(std::size(kVenueTypes), 1.0)])),
         Value(std::string(kAreas[rng.Zipf(std::size(kAreas), 0.7)])),
         Value(venue_prestige[i])});
  }

  // author(id, name, affiliation, h_index)
  auto author = std::make_shared<Table>(
      "author", Schema({{"id", ValueType::kInt64},
                        {"name", ValueType::kString},
                        {"affiliation", ValueType::kString},
                        {"h_index", ValueType::kInt64}}));
  for (size_t i = 0; i < num_authors; ++i) {
    const int64_t h = static_cast<int64_t>(std::exp(rng.Normal(2.0, 1.0)));
    (void)author->AppendRow(
        {Value(static_cast<int64_t>(i)), Value(util::Format("author_%zu", i)),
         Value(std::string(
             kAffiliations[rng.Zipf(std::size(kAffiliations), 0.8)])),
         Value(std::min<int64_t>(h, 120))});
  }

  // publication(id, title, year, citations, venue_id)
  auto publication = std::make_shared<Table>(
      "publication", Schema({{"id", ValueType::kInt64},
                             {"title", ValueType::kString},
                             {"year", ValueType::kInt64},
                             {"citations", ValueType::kInt64},
                             {"venue_id", ValueType::kInt64}}));
  for (size_t i = 0; i < num_pubs; ++i) {
    const double u = rng.UniformDouble();
    const int64_t year = 1985 + static_cast<int64_t>(38.0 * std::pow(u, 0.6));
    const int64_t vid = static_cast<int64_t>(rng.Zipf(num_venues, 0.8));
    // Citations: heavy tail boosted by venue prestige.
    const double boost = 1.0 + 2.0 * venue_prestige[static_cast<size_t>(vid)];
    const int64_t cites =
        static_cast<int64_t>(std::exp(rng.Normal(1.5, 1.4)) * boost);
    (void)publication->AppendRow({Value(static_cast<int64_t>(i)),
                                  Value(util::Format("paper_%zu", i)),
                                  Value(year), Value(cites), Value(vid)});
  }

  // writes(author_id, pub_id, author_position)
  auto writes = std::make_shared<Table>(
      "writes", Schema({{"author_id", ValueType::kInt64},
                        {"pub_id", ValueType::kInt64},
                        {"author_position", ValueType::kInt64}}));
  for (size_t i = 0; i < num_writes; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Zipf(num_authors, 0.75));
    const int64_t p = static_cast<int64_t>(rng.NextBounded(num_pubs));
    (void)writes->AppendRow(
        {Value(a), Value(p),
         Value(static_cast<int64_t>(1 + rng.NextBounded(6)))});
  }

  (void)bundle.db->AddTable(venue);
  (void)bundle.db->AddTable(author);
  (void)bundle.db->AddTable(publication);
  (void)bundle.db->AddTable(writes);

  bundle.fks = {
      {"publication", "venue_id", "venue", "id"},
      {"writes", "author_id", "author", "id"},
      {"writes", "pub_id", "publication", "id"},
  };

  workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  workloadgen::QueryGenerator gen(bundle.db.get(), &stats, bundle.fks);
  workloadgen::QueryGenOptions qopts;
  qopts.max_joins = 2;
  qopts.max_predicates = 2;
  bundle.workload =
      gen.GenerateWorkload(options.workload_size, qopts, options.seed ^ 0x3A5ULL);
  return bundle;
}

}  // namespace data
}  // namespace asqp
