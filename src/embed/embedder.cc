#include "embed/embedder.h"

#include <cmath>

#include "util/string_util.h"

namespace asqp {
namespace embed {

void FeatureHasher::Accumulate(std::string_view token, float weight,
                               Vector* vec) const {
  if (vec->size() != dim_) vec->assign(dim_, 0.0f);
  const uint64_t h = util::Fnv1a(token);
  const size_t bucket = h % dim_;
  // Salted second hash decides the sign.
  const uint64_t h2 = util::Fnv1a(std::string(token) + "#sign");
  const float sign = (h2 & 1) ? 1.0f : -1.0f;
  (*vec)[bucket] += sign * weight;
}

std::string QueryEmbedder::ValueBucket(const storage::Value& v) {
  switch (v.type()) {
    case storage::ValueType::kNull:
      return "null";
    case storage::ValueType::kString:
      return "s:" + v.AsString();
    default: {
      // Log-scale magnitude bucket: nearby numeric constants share tokens.
      const double num = v.ToNumeric();
      const double mag = std::fabs(num);
      const int bucket =
          mag < 1.0 ? 0 : static_cast<int>(std::floor(std::log2(mag)));
      return util::Format("n:%s%d", num < 0 ? "-" : "+", bucket);
    }
  }
}

void QueryEmbedder::EmbedExpr(const sql::Expr& expr,
                              const std::string& context, Vector* vec) const {
  using sql::ExprKind;
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      // Categorical constants carry the semantics of an exploration
      // interest ("area = 'ml'" vs "area = 'databases'"), so they dominate
      // the embedding; numeric constants matter less (and are bucketed).
      const float weight =
          expr.literal.type() == storage::ValueType::kString ? 6.0f : 1.0f;
      hasher_.Accumulate("val|" + context + "|" + ValueBucket(expr.literal),
                         weight, vec);
      return;
    }
    case ExprKind::kColumnRef:
      hasher_.Accumulate("col|" + expr.column, 1.0f, vec);
      return;
    case ExprKind::kBinary: {
      std::string ctx = context;
      // Column-anchored context so "year > C" and "year < C" differ but
      // share the column token.
      if (expr.left && expr.left->kind == ExprKind::kColumnRef) {
        ctx = expr.left->column;
      }
      hasher_.Accumulate(
          std::string("op|") + sql::BinOpName(expr.op) + "|" + ctx, 0.75f,
          vec);
      if (expr.left) EmbedExpr(*expr.left, ctx, vec);
      if (expr.right) EmbedExpr(*expr.right, ctx, vec);
      return;
    }
    case ExprKind::kNot:
      hasher_.Accumulate("op|not|" + context, 0.5f, vec);
      if (expr.left) EmbedExpr(*expr.left, context, vec);
      return;
    case ExprKind::kIn: {
      std::string ctx = expr.left && expr.left->kind == ExprKind::kColumnRef
                            ? expr.left->column
                            : context;
      hasher_.Accumulate("op|in|" + ctx, 0.75f, vec);
      if (expr.left) EmbedExpr(*expr.left, ctx, vec);
      for (const storage::Value& v : expr.in_list) {
        const float weight =
            v.type() == storage::ValueType::kString ? 3.0f : 0.5f;
        hasher_.Accumulate("val|" + ctx + "|" + ValueBucket(v), weight, vec);
      }
      return;
    }
    case ExprKind::kBetween: {
      std::string ctx = expr.left && expr.left->kind == ExprKind::kColumnRef
                            ? expr.left->column
                            : context;
      hasher_.Accumulate("op|between|" + ctx, 0.75f, vec);
      if (expr.left) EmbedExpr(*expr.left, ctx, vec);
      hasher_.Accumulate("val|" + ctx + "|" + ValueBucket(expr.between_lo),
                         0.4f, vec);
      hasher_.Accumulate("val|" + ctx + "|" + ValueBucket(expr.between_hi),
                         0.4f, vec);
      return;
    }
    case ExprKind::kLike: {
      std::string ctx = expr.left && expr.left->kind == ExprKind::kColumnRef
                            ? expr.left->column
                            : context;
      hasher_.Accumulate("op|like|" + ctx, 0.75f, vec);
      hasher_.Accumulate("val|" + ctx + "|" + expr.like_pattern, 2.0f, vec);
      if (expr.left) EmbedExpr(*expr.left, ctx, vec);
      return;
    }
    case ExprKind::kIsNull:
      hasher_.Accumulate("op|isnull|" + context, 0.5f, vec);
      if (expr.left) EmbedExpr(*expr.left, context, vec);
      return;
  }
}

Vector QueryEmbedder::Embed(const sql::SelectStatement& stmt) const {
  Vector vec(hasher_.dim(), 0.0f);
  for (const sql::TableRef& t : stmt.from) {
    hasher_.Accumulate("tbl|" + t.table, 1.0f, &vec);
  }
  for (const sql::SelectItem& item : stmt.items) {
    if (item.agg != sql::AggFunc::kNone) {
      hasher_.Accumulate(std::string("agg|") + sql::AggFuncName(item.agg),
                         0.5f, &vec);
    }
    if (item.expr) EmbedExpr(*item.expr, "select", &vec);
  }
  if (stmt.where) EmbedExpr(*stmt.where, "", &vec);
  for (const sql::ExprPtr& g : stmt.group_by) {
    hasher_.Accumulate("groupby", 0.5f, &vec);
    EmbedExpr(*g, "groupby", &vec);
  }
  NormalizeInPlace(&vec);
  return vec;
}

Vector TupleEmbedder::EmbedRow(const storage::Table& table,
                               uint32_t row) const {
  Vector vec(hasher_.dim(), 0.0f);
  hasher_.Accumulate("tbl|" + table.name(), 1.0f, &vec);
  const storage::Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const storage::Field& f = schema.field(c);
    const storage::Column& col = table.column(c);
    if (col.IsNull(row)) {
      hasher_.Accumulate(f.name + "|null", 0.25f, &vec);
      continue;
    }
    // Column name participates in every token.
    switch (f.type) {
      case storage::ValueType::kString:
        hasher_.Accumulate(f.name + "=" + col.StringAt(row), 1.0f, &vec);
        break;
      default: {
        const double num = col.NumericAt(row);
        // Exact-value token (dominant) plus a coarse magnitude token so
        // rows with nearby-but-unequal numerics retain some similarity.
        hasher_.Accumulate(util::Format("%s=%.6g", f.name.c_str(), num), 1.0f,
                           &vec);
        const double mag = std::fabs(num);
        const int bucket =
            mag < 1.0 ? 0 : static_cast<int>(std::floor(std::log2(mag)));
        hasher_.Accumulate(
            util::Format("%s~%s%d", f.name.c_str(), num < 0 ? "-" : "+",
                         bucket),
            0.5f, &vec);
        break;
      }
    }
  }
  NormalizeInPlace(&vec);
  return vec;
}

Vector TupleEmbedder::EmbedJoined(
    const std::vector<const storage::Table*>& tables,
    const std::vector<uint32_t>& rows) const {
  Vector vec(hasher_.dim(), 0.0f);
  for (size_t t = 0; t < tables.size() && t < rows.size(); ++t) {
    const Vector part = EmbedRow(*tables[t], rows[t]);
    AddInPlace(&vec, part);
  }
  NormalizeInPlace(&vec);
  return vec;
}

}  // namespace embed
}  // namespace asqp
