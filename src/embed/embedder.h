// Query and tuple embedders.
//
// The paper embeds queries and tuples with a "modified sentence-BERT". We
// substitute a deterministic feature-hashing embedder (see DESIGN.md): each
// object is decomposed into structural tokens, every token is hashed to a
// (dimension, sign) pair, and the token weights are accumulated and
// L2-normalized. Objects sharing tables / columns / operators / value
// ranges land close in cosine space, which is the only property the
// downstream pipeline relies on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "embed/vector_ops.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace asqp {
namespace embed {

/// \brief Feature hashing (the "hashing trick") into a fixed-dim vector.
class FeatureHasher {
 public:
  explicit FeatureHasher(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }

  /// Accumulate `token` into `vec` with the given weight. Uses FNV-1a for
  /// the bucket and a second (salted) hash for the sign, the standard
  /// variance-reduction trick.
  void Accumulate(std::string_view token, float weight, Vector* vec) const;

 private:
  size_t dim_;
};

/// \brief Embeds SQL statements; tokens cover tables, referenced columns,
/// predicate operators, and bucketed constants.
class QueryEmbedder {
 public:
  explicit QueryEmbedder(size_t dim = 64) : hasher_(dim) {}

  size_t dim() const { return hasher_.dim(); }

  Vector Embed(const sql::SelectStatement& stmt) const;

 private:
  void EmbedExpr(const sql::Expr& expr, const std::string& context,
                 Vector* vec) const;
  /// Bucket a constant so that nearby numerics share tokens.
  static std::string ValueBucket(const storage::Value& v);

  FeatureHasher hasher_;
};

/// \brief Embeds table rows; column names are part of every token (the
/// paper's sentence-BERT modification "including column names as tokens to
/// capture both the meaning of the column as well as the value").
class TupleEmbedder {
 public:
  explicit TupleEmbedder(size_t dim = 64) : hasher_(dim) {}

  size_t dim() const { return hasher_.dim(); }

  /// Embed one physical row of `table`.
  Vector EmbedRow(const storage::Table& table, uint32_t row) const;

  /// Embed a joined tuple: the mean of the per-row embeddings, renormalized.
  Vector EmbedJoined(
      const std::vector<const storage::Table*>& tables,
      const std::vector<uint32_t>& rows) const;

 private:
  FeatureHasher hasher_;
};

}  // namespace embed
}  // namespace asqp
