#include "embed/vector_ops.h"

#include <cmath>

namespace asqp {
namespace embed {

float Dot(const Vector& a, const Vector& b) {
  float sum = 0.0f;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

float Cosine(const Vector& a, const Vector& b) {
  const float na = Norm(a);
  const float nb = Norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

float L2Distance(const Vector& a, const Vector& b) {
  float sum = 0.0f;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void AddInPlace(Vector* a, const Vector& b) {
  for (size_t i = 0; i < a->size() && i < b.size(); ++i) (*a)[i] += b[i];
}

void ScaleInPlace(Vector* a, float s) {
  for (float& v : *a) v *= s;
}

void NormalizeInPlace(Vector* a) {
  const float n = Norm(*a);
  if (n == 0.0f) return;
  ScaleInPlace(a, 1.0f / n);
}

}  // namespace embed
}  // namespace asqp
