// Dense vector helpers shared by the embedders, clustering, and the
// answerability estimator.
#pragma once

#include <vector>

namespace asqp {
namespace embed {

using Vector = std::vector<float>;

float Dot(const Vector& a, const Vector& b);
float Norm(const Vector& a);
/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
float Cosine(const Vector& a, const Vector& b);
float L2Distance(const Vector& a, const Vector& b);
/// a += b (sizes must match).
void AddInPlace(Vector* a, const Vector& b);
/// a *= s.
void ScaleInPlace(Vector* a, float s);
/// Normalize to unit length (no-op on the zero vector).
void NormalizeInPlace(Vector* a);

}  // namespace embed
}  // namespace asqp
