#include "exec/evaluator.h"

#include <cmath>

#include "util/string_util.h"

namespace asqp {
namespace exec {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using storage::Value;
using storage::ValueType;

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value EvaluateScalar(const Expr& expr, const JoinedRow& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      return row.ColumnValue(expr.table_idx, expr.col_idx);
    case ExprKind::kBinary: {
      switch (expr.op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          const Value l = EvaluateScalar(*expr.left, row);
          const Value r = EvaluateScalar(*expr.right, row);
          if (l.is_null() || r.is_null() || !l.is_numeric() || !r.is_numeric()) {
            return Value::Null();
          }
          const double a = l.ToNumeric();
          const double b = r.ToNumeric();
          double out = 0.0;
          switch (expr.op) {
            case BinOp::kAdd: out = a + b; break;
            case BinOp::kSub: out = a - b; break;
            case BinOp::kMul: out = a * b; break;
            case BinOp::kDiv:
              if (b == 0.0) return Value::Null();
              out = a / b;
              break;
            default: break;
          }
          if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
              expr.op != BinOp::kDiv) {
            return Value(static_cast<int64_t>(out));
          }
          return Value(out);
        }
        default:
          // Comparison / boolean used in scalar position: 1 or 0.
          return Value(static_cast<int64_t>(EvaluatePredicate(expr, row)));
      }
    }
    default:
      return Value(static_cast<int64_t>(EvaluatePredicate(expr, row)));
  }
}

bool EvaluatePredicate(const Expr& expr, const JoinedRow& row) {
  switch (expr.kind) {
    case ExprKind::kBinary: {
      switch (expr.op) {
        case BinOp::kAnd:
          return EvaluatePredicate(*expr.left, row) &&
                 EvaluatePredicate(*expr.right, row);
        case BinOp::kOr:
          return EvaluatePredicate(*expr.left, row) ||
                 EvaluatePredicate(*expr.right, row);
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          const Value l = EvaluateScalar(*expr.left, row);
          const Value r = EvaluateScalar(*expr.right, row);
          if (l.is_null() || r.is_null()) return false;  // NULL -> unknown
          const int cmp = l.Compare(r);
          switch (expr.op) {
            case BinOp::kEq: return cmp == 0;
            case BinOp::kNe: return cmp != 0;
            case BinOp::kLt: return cmp < 0;
            case BinOp::kLe: return cmp <= 0;
            case BinOp::kGt: return cmp > 0;
            case BinOp::kGe: return cmp >= 0;
            default: return false;
          }
        }
        default: {
          // Arithmetic in boolean position: nonzero is true.
          const Value v = EvaluateScalar(expr, row);
          return !v.is_null() && v.ToNumeric() != 0.0;
        }
      }
    }
    case ExprKind::kNot:
      return !EvaluatePredicate(*expr.left, row);
    case ExprKind::kIn: {
      const Value v = EvaluateScalar(*expr.left, row);
      if (v.is_null()) return false;
      bool found = false;
      for (const Value& candidate : expr.in_list) {
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      return expr.negated ? !found : found;
    }
    case ExprKind::kBetween: {
      const Value v = EvaluateScalar(*expr.left, row);
      if (v.is_null() || expr.between_lo.is_null() || expr.between_hi.is_null()) {
        return false;
      }
      const bool inside =
          v.Compare(expr.between_lo) >= 0 && v.Compare(expr.between_hi) <= 0;
      return expr.negated ? !inside : inside;
    }
    case ExprKind::kLike: {
      const Value v = EvaluateScalar(*expr.left, row);
      if (v.is_null() || v.type() != ValueType::kString) return false;
      const bool match = LikeMatch(v.AsString(), expr.like_pattern);
      return expr.negated ? !match : match;
    }
    case ExprKind::kIsNull: {
      const Value v = EvaluateScalar(*expr.left, row);
      return expr.negated ? !v.is_null() : v.is_null();
    }
    case ExprKind::kLiteral:
      return !expr.literal.is_null() && expr.literal.ToNumeric() != 0.0;
    case ExprKind::kColumnRef: {
      const Value v = EvaluateScalar(expr, row);
      return !v.is_null() && v.ToNumeric() != 0.0;
    }
  }
  return false;
}

namespace {

/// Match a column reference against output-column names: exact rendered
/// form first ("m.title"), then the bare column name ("title"), then a
/// qualified suffix ("x.title" for unqualified "title").
util::Result<size_t> FindOutputColumn(
    const Expr& ref, const std::vector<std::string>& names) {
  const std::string rendered = ref.ToSql();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == rendered) return i;
  }
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == ref.column) return i;
  }
  if (ref.qualifier.empty()) {
    for (size_t i = 0; i < names.size(); ++i) {
      const size_t dot = names[i].rfind('.');
      if (dot != std::string::npos && names[i].substr(dot + 1) == ref.column) {
        return i;
      }
    }
  }
  return util::Status::NotFound(util::Format(
      "'%s' does not name an output column", rendered.c_str()));
}

}  // namespace

util::Result<Value> EvaluateScalarOnRow(
    const Expr& expr, const std::vector<std::string>& column_names,
    const std::vector<Value>& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      ASQP_ASSIGN_OR_RETURN(size_t idx, FindOutputColumn(expr, column_names));
      return row[idx];
    }
    case ExprKind::kBinary: {
      switch (expr.op) {
        case BinOp::kAnd: {
          ASQP_ASSIGN_OR_RETURN(bool l, EvaluatePredicateOnRow(
                                            *expr.left, column_names, row));
          if (!l) return Value(int64_t{0});
          ASQP_ASSIGN_OR_RETURN(bool r, EvaluatePredicateOnRow(
                                            *expr.right, column_names, row));
          return Value(static_cast<int64_t>(r));
        }
        case BinOp::kOr: {
          ASQP_ASSIGN_OR_RETURN(bool l, EvaluatePredicateOnRow(
                                            *expr.left, column_names, row));
          if (l) return Value(int64_t{1});
          ASQP_ASSIGN_OR_RETURN(bool r, EvaluatePredicateOnRow(
                                            *expr.right, column_names, row));
          return Value(static_cast<int64_t>(r));
        }
        default: {
          ASQP_ASSIGN_OR_RETURN(
              Value l, EvaluateScalarOnRow(*expr.left, column_names, row));
          ASQP_ASSIGN_OR_RETURN(
              Value r, EvaluateScalarOnRow(*expr.right, column_names, row));
          if (IsComparison(expr.op)) {
            if (l.is_null() || r.is_null()) return Value::Null();
            const int cmp = l.Compare(r);
            bool result = false;
            switch (expr.op) {
              case BinOp::kEq: result = cmp == 0; break;
              case BinOp::kNe: result = cmp != 0; break;
              case BinOp::kLt: result = cmp < 0; break;
              case BinOp::kLe: result = cmp <= 0; break;
              case BinOp::kGt: result = cmp > 0; break;
              case BinOp::kGe: result = cmp >= 0; break;
              default: break;
            }
            return Value(static_cast<int64_t>(result));
          }
          // Arithmetic.
          if (l.is_null() || r.is_null() || !l.is_numeric() || !r.is_numeric()) {
            return Value::Null();
          }
          const double a = l.ToNumeric();
          const double b = r.ToNumeric();
          switch (expr.op) {
            case BinOp::kAdd: return Value(a + b);
            case BinOp::kSub: return Value(a - b);
            case BinOp::kMul: return Value(a * b);
            case BinOp::kDiv:
              return b == 0.0 ? Value::Null() : Value(a / b);
            default: return Value::Null();
          }
        }
      }
    }
    case ExprKind::kNot: {
      ASQP_ASSIGN_OR_RETURN(
          bool operand, EvaluatePredicateOnRow(*expr.left, column_names, row));
      return Value(static_cast<int64_t>(!operand));
    }
    case ExprKind::kIn: {
      ASQP_ASSIGN_OR_RETURN(Value v,
                            EvaluateScalarOnRow(*expr.left, column_names, row));
      if (v.is_null()) return Value(int64_t{0});
      bool found = false;
      for (const Value& candidate : expr.in_list) {
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          found = true;
          break;
        }
      }
      return Value(static_cast<int64_t>(expr.negated ? !found : found));
    }
    case ExprKind::kBetween: {
      ASQP_ASSIGN_OR_RETURN(Value v,
                            EvaluateScalarOnRow(*expr.left, column_names, row));
      if (v.is_null()) return Value(int64_t{0});
      const bool inside = v.Compare(expr.between_lo) >= 0 &&
                          v.Compare(expr.between_hi) <= 0;
      return Value(static_cast<int64_t>(expr.negated ? !inside : inside));
    }
    case ExprKind::kLike: {
      ASQP_ASSIGN_OR_RETURN(Value v,
                            EvaluateScalarOnRow(*expr.left, column_names, row));
      if (v.is_null() || v.type() != ValueType::kString) {
        return Value(int64_t{0});
      }
      const bool match = LikeMatch(v.AsString(), expr.like_pattern);
      return Value(static_cast<int64_t>(expr.negated ? !match : match));
    }
    case ExprKind::kIsNull: {
      ASQP_ASSIGN_OR_RETURN(Value v,
                            EvaluateScalarOnRow(*expr.left, column_names, row));
      return Value(
          static_cast<int64_t>(expr.negated ? !v.is_null() : v.is_null()));
    }
  }
  return Value::Null();
}

util::Result<bool> EvaluatePredicateOnRow(
    const Expr& expr, const std::vector<std::string>& column_names,
    const std::vector<Value>& row) {
  ASQP_ASSIGN_OR_RETURN(Value v, EvaluateScalarOnRow(expr, column_names, row));
  return !v.is_null() && v.ToNumeric() != 0.0;
}

}  // namespace exec
}  // namespace asqp
