// Expression evaluation over a joined row.
#pragma once

#include <memory>
#include <vector>

#include "sql/ast.h"
#include "storage/table.h"
#include "util/status.h"

namespace asqp {
namespace exec {

/// \brief A row of the (partial) join: one physical row id per FROM table.
/// Only the entries for tables already joined are meaningful; expressions
/// evaluated against a JoinedRow must reference only those tables.
struct JoinedRow {
  const std::vector<std::shared_ptr<storage::Table>>* tables = nullptr;
  const uint32_t* row_ids = nullptr;  // size == tables->size()

  storage::Value ColumnValue(int table_idx, int col_idx) const {
    return (*tables)[table_idx]->column(col_idx).ValueAt(row_ids[table_idx]);
  }
};

/// Evaluate a scalar expression; column refs must be bound.
storage::Value EvaluateScalar(const sql::Expr& expr, const JoinedRow& row);

/// Evaluate a boolean predicate; NULL results are treated as false
/// (standard SQL WHERE semantics).
bool EvaluatePredicate(const sql::Expr& expr, const JoinedRow& row);

/// SQL LIKE with '%' and '_' wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Evaluate an expression against an *output* row: column references
/// resolve by output-column name (select alias, aggregate name, or the
/// referenced column's name). Used for HAVING and for ORDER BY over
/// aggregate results. Fails when a reference matches no output column.
[[nodiscard]] util::Result<storage::Value> EvaluateScalarOnRow(
    const sql::Expr& expr, const std::vector<std::string>& column_names,
    const std::vector<storage::Value>& row);

/// Boolean wrapper over EvaluateScalarOnRow (NULL -> false).
[[nodiscard]] util::Result<bool> EvaluatePredicateOnRow(
    const sql::Expr& expr, const std::vector<std::string>& column_names,
    const std::vector<storage::Value>& row);

}  // namespace exec
}  // namespace asqp
