#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "exec/evaluator.h"
#include "plan/planner.h"
#include "storage/index.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace asqp {
namespace exec {

namespace {

using sql::AggFunc;
using sql::BoundQuery;
using sql::ExprPtr;
using sql::JoinPredicate;
using sql::SelectItem;
using storage::DatabaseView;
using storage::Table;
using storage::Value;
using util::Result;
using util::Status;

/// A set of partial join tuples: each tuple holds one row id per FROM table
/// (entries for not-yet-joined tables are 0 and unused).
struct TupleSet {
  size_t num_tables = 0;
  std::vector<uint32_t> flat;  // row-major, num_tables per tuple

  size_t size() const { return num_tables == 0 ? 0 : flat.size() / num_tables; }
  const uint32_t* tuple(size_t i) const { return &flat[i * num_tables]; }
  void Append(const uint32_t* src) {
    flat.insert(flat.end(), src, src + num_tables);
  }
};

std::string ValueKey(const Value& v) {
  std::string key;
  key += static_cast<char>('0' + static_cast<int>(v.type()));
  key += v.ToString();
  return key;
}

/// Hash-join build output: `parts[p]` maps a serialized join-key tuple to
/// the build rows carrying that key, in candidate (= filtered-scan) order.
/// With a single partition the probe skips hashing; with 2^k partitions a
/// key lives in partition Fnv1a(key) & (parts.size() - 1). Both layouts
/// hold identical per-key row vectors, so probe output never depends on
/// which build path (sequential or radix-partitioned) produced the table.
struct JoinBuild {
  std::vector<std::unordered_map<std::string, std::vector<uint32_t>>> parts;

  const std::vector<uint32_t>* Find(const std::string& key) const {
    const auto& part = parts.size() == 1
                           ? parts[0]
                           : parts[util::Fnv1a(key) & (parts.size() - 1)];
    const auto it = part.find(key);
    return it == part.end() ? nullptr : &it->second;
  }
};

class Execution {
 public:
  /// `indexes` (may be null) is the catalog the *planner* already saw:
  /// the caller verifies scope coverage (IndexCatalog::CoversView) before
  /// passing it, so a non-null catalog here always matches `view`.
  /// `selections` (may be null) preloads some tables' filtered-scan output
  /// (see QueryEngine::ExecutePlanned); it must outlive the execution.
  Execution(const BoundQuery& q, const DatabaseView& view,
            const ExecOptions& options, const util::ExecContext& context,
            util::ThreadPool* pool, const storage::IndexCatalog* indexes,
            const std::vector<ScanSelection>* selections = nullptr)
      : q_(q),
        view_(view),
        options_(options),
        context_(context),
        pool_(pool),
        indexes_(indexes),
        selections_(selections),
        ticker_(context, /*stride=*/256) {}

  Result<ResultSet> Run() {
    ASQP_RETURN_NOT_OK(FilterScans());
    ASQP_RETURN_NOT_OK(Join());
    ASQP_RETURN_NOT_OK(CanonicalizeTupleOrder());
    if (q_.stmt.HasAggregates()) return Aggregate();
    return Project();
  }

  Result<ProvenancedJoin> RunWithProvenance(size_t max_tuples) {
    ASQP_RETURN_NOT_OK(FilterScans());
    ASQP_RETURN_NOT_OK(Join());
    ProvenancedJoin out;
    const size_t n = q_.num_tables();
    out.table_names.reserve(n);
    for (size_t t = 0; t < n; ++t) out.table_names.push_back(q_.tables[t]->name());
    size_t count = joined_.size();
    if (max_tuples > 0) count = std::min(count, max_tuples);
    out.tuples.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t* src = joined_.tuple(i);
      out.tuples.emplace_back(src, src + n);
    }
    return out;
  }

 private:
  /// The index this table's chosen access path names, or null (full scan,
  /// no catalog, or the index is missing at runtime — e.g. its build
  /// failed — in which case the scan silently degrades to the full pass).
  const storage::OrderedIndex* IndexFor(size_t t) const {
    if (indexes_ == nullptr || q_.access_paths.size() != q_.num_tables()) {
      return nullptr;
    }
    const sql::AccessPath& ap = q_.access_paths[t];
    if (ap.kind != sql::AccessPath::Kind::kIndexRange) return nullptr;
    return indexes_->Find(q_.tables[t]->name(), ap.column);
  }

  /// Per-table filtered scan: collect visible row ids passing the table's
  /// single-table conjuncts. With a pool, the scanned domain is split into
  /// morsels filtered into thread-local buffers and merged in morsel
  /// order, matching the sequential left-to-right output exactly.
  ///
  /// When the planner chose an index range scan for a table, the scanned
  /// domain is the index's candidate ordinal list (sorted ascending — the
  /// order a full scan visits) instead of every visible row. All filter
  /// conjuncts are still evaluated per candidate: the converted conjunct's
  /// bounds make the candidate list a superset of its satisfying rows, so
  /// the surviving rows — and their order — are byte-identical to the full
  /// scan's at any thread count.
  Status FilterScans() {
    const size_t n = q_.num_tables();
    candidates_.resize(n);
    for (size_t t = 0; t < n; ++t) {
      // A preselected table (shared-scan output fed through
      // ExecutePlanned) already holds exactly this scan's result rows.
      if (selections_ != nullptr && t < selections_->size() &&
          (*selections_)[t] != nullptr) {
        candidates_[t] = *(*selections_)[t];
        continue;
      }
      const Table& table = *q_.tables[t];
      const size_t visible = view_.VisibleRows(table);
      const auto& filters = q_.filters[t];
      auto& out = candidates_[t];

      std::vector<uint32_t> index_ordinals;
      const storage::OrderedIndex* index = IndexFor(t);
      if (index != nullptr) {
        const sql::AccessPath& ap = q_.access_paths[t];
        storage::IndexBound bound;
        bound.has_lower = ap.has_lower;
        bound.has_upper = ap.has_upper;
        bound.lower_inclusive = ap.lower_inclusive;
        bound.upper_inclusive = ap.upper_inclusive;
        bound.lower = ap.lower;
        bound.upper = ap.upper;
        index_ordinals = index->LookupRange(bound);
      }
      // Domain of the scan: candidate ordinals from the index, or every
      // visible ordinal (identity mapping) for the full scan.
      const size_t domain = index != nullptr ? index_ordinals.size() : visible;

      const auto scan_range = [&, t, index](size_t begin, size_t end,
                                            std::vector<uint32_t>* rows,
                                            util::DeadlineTicker* ticker)
          -> Status {
        std::vector<uint32_t> scratch(n, 0);
        JoinedRow jr{&q_.tables, scratch.data()};
        for (size_t i = begin; i < end; ++i) {
          ASQP_RETURN_NOT_OK(ticker->Tick("table scan"));
          const size_t ord = index != nullptr ? index_ordinals[i] : i;
          const uint32_t row = view_.PhysicalRow(table, ord);
          scratch[t] = row;
          bool pass = true;
          for (const ExprPtr& f : filters) {
            if (!EvaluatePredicate(*f, jr)) {
              pass = false;
              break;
            }
          }
          if (pass) rows->push_back(row);
        }
        return Status::OK();
      };

      if (pool_ != nullptr && domain > 1) {
        const size_t morsel = options_.morsel_rows;
        std::vector<std::vector<uint32_t>> parts((domain + morsel - 1) /
                                                 morsel);
        ASQP_RETURN_NOT_OK(pool_->ParallelForChunked(
            domain, morsel,
            [&](size_t chunk, size_t begin, size_t end) -> Status {
              util::DeadlineTicker ticker(context_, /*stride=*/256);
              std::vector<uint32_t> local;
              local.reserve((end - begin) / 4 + 1);
              ASQP_RETURN_NOT_OK(scan_range(begin, end, &local, &ticker));
              parts[chunk] = std::move(local);
              return Status::OK();
            }));
        size_t total = 0;
        for (const auto& p : parts) total += p.size();
        out.reserve(total);
        for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
      } else {
        out.reserve(domain / 4 + 1);
        ASQP_RETURN_NOT_OK(scan_range(0, domain, &out, &ticker_));
      }
    }
    return Status::OK();
  }

  /// Rewrite `joined_`-sized input through `fn(begin, end, out, ticker)`
  /// morsel-parallel: each morsel appends into a thread-local TupleSet and
  /// the per-morsel outputs are concatenated in morsel order, so the
  /// replacement is identical to a sequential left-to-right pass. The
  /// accumulated output is checked against max_intermediate_rows (`what`
  /// names the stage in the error). Falls back to one sequential range
  /// (reusing the sticky member ticker) without a pool.
  Result<TupleSet> MorselRewrite(
      const char* what,
      const std::function<Status(size_t begin, size_t end, TupleSet* out,
                                 util::DeadlineTicker* ticker)>& fn) {
    TupleSet merged;
    merged.num_tables = joined_.num_tables;
    const size_t input = joined_.size();
    if (pool_ != nullptr && input > 1) {
      const size_t morsel = options_.morsel_rows;
      std::vector<TupleSet> parts((input + morsel - 1) / morsel);
      std::atomic<size_t> total{0};
      ASQP_RETURN_NOT_OK(pool_->ParallelForChunked(
          input, morsel,
          [&](size_t chunk, size_t begin, size_t end) -> Status {
            util::DeadlineTicker ticker(context_, /*stride=*/256);
            TupleSet local;
            local.num_tables = joined_.num_tables;
            ASQP_RETURN_NOT_OK(fn(begin, end, &local, &ticker));
            const size_t so_far =
                total.fetch_add(local.size(), std::memory_order_relaxed) +
                local.size();
            if (so_far > options_.max_intermediate_rows) {
              return Status::ExecutionError(util::Format(
                  "%s: intermediate join result exceeds %zu rows "
                  "(%zu rows produced before the cap)",
                  what, options_.max_intermediate_rows, so_far));
            }
            parts[chunk] = std::move(local);
            return Status::OK();
          }));
      size_t total_flat = 0;
      for (const TupleSet& p : parts) total_flat += p.flat.size();
      merged.flat.reserve(total_flat);
      for (TupleSet& p : parts) {
        merged.flat.insert(merged.flat.end(), p.flat.begin(), p.flat.end());
      }
    } else {
      ASQP_RETURN_NOT_OK(fn(0, input, &merged, &ticker_));
      if (merged.size() > options_.max_intermediate_rows) {
        return Status::ExecutionError(util::Format(
            "%s: intermediate join result exceeds %zu rows "
            "(%zu rows produced before the cap)",
            what, options_.max_intermediate_rows, merged.size()));
      }
    }
    return merged;
  }

  /// True when `order` is a permutation of [0, n) — the only join_order
  /// the executor honors (anything else falls back to runtime greedy).
  static bool IsJoinPermutation(const std::vector<int>& order, size_t n) {
    if (order.size() != n) return false;
    std::vector<bool> seen(n, false);
    for (int t : order) {
      if (t < 0 || static_cast<size_t>(t) >= n || seen[t]) return false;
      seen[t] = true;
    }
    return true;
  }

  /// Hash-join in a planned order (BoundQuery::join_order) when one is
  /// present, otherwise greedy: start from the smallest filtered table,
  /// repeatedly attach the connected table with the fewest candidate rows.
  Status Join() {
    const size_t n = q_.num_tables();
    joined_.num_tables = n;
    std::vector<bool> in_join(n, false);
    std::vector<bool> residual_done(q_.residual.size(), false);
    const bool planned = IsJoinPermutation(q_.join_order, n);
    attach_order_.clear();
    attach_order_.reserve(n);

    // Seed: the planned sequence head, or the smallest table.
    size_t seed = planned ? static_cast<size_t>(q_.join_order[0]) : 0;
    if (!planned) {
      for (size_t t = 1; t < n; ++t) {
        if (candidates_[t].size() < candidates_[seed].size()) seed = t;
      }
    }
    std::vector<uint32_t> tmp(n, 0);
    for (uint32_t row : candidates_[seed]) {
      tmp[seed] = row;
      joined_.Append(tmp.data());
    }
    in_join[seed] = true;
    attach_order_.push_back(seed);

    for (size_t step = 1; step < n; ++step) {
      // Pick the next table: the planned sequence when present, otherwise
      // connected to the joined set via at least one equi-predicate if
      // possible and smallest among those (disconnected join graph ->
      // cross product).
      int next = planned ? q_.join_order[step] : -1;
      bool next_connected = false;
      for (size_t t = 0; !planned && t < n; ++t) {
        if (in_join[t]) continue;
        bool connected = false;
        for (const JoinPredicate& jp : q_.joins) {
          const bool attaches =
              (jp.left_table == static_cast<int>(t) && in_join[jp.right_table]) ||
              (jp.right_table == static_cast<int>(t) && in_join[jp.left_table]);
          if (attaches) {
            connected = true;
            break;
          }
        }
        if (next < 0 ||
            (connected && !next_connected) ||
            (connected == next_connected &&
             candidates_[t].size() < candidates_[next].size())) {
          next = static_cast<int>(t);
          next_connected = connected;
        }
      }

      ASQP_RETURN_NOT_OK(AttachTable(static_cast<size_t>(next), in_join));
      in_join[next] = true;
      attach_order_.push_back(static_cast<size_t>(next));

      // Apply residual predicates whose tables are now all joined.
      ASQP_RETURN_NOT_OK(ApplyReadyResiduals(in_join, &residual_done));

      if (joined_.size() > options_.max_intermediate_rows) {
        return Status::ExecutionError(util::Format(
            "intermediate join result exceeds %zu rows",
            options_.max_intermediate_rows));
      }
      ASQP_RETURN_NOT_OK(context_.CheckRows(joined_.size(), "join"));
    }
    // Residuals with zero referenced tables (constant predicates) or any
    // left over (single-table query case).
    ASQP_RETURN_NOT_OK(ApplyReadyResiduals(in_join, &residual_done));
    return Status::OK();
  }

  /// Sort the joined tuples into the canonical order — lexicographic by
  /// row id in FROM position order — so the bytes downstream (projection
  /// row order, DISTINCT dedup order, morsel decomposition and thus the
  /// floating-point reduction tree of SUM/AVG partials) depend only on
  /// the tuple *set*, never on the join order that produced it. This is
  /// what makes plan search safe: planner-on and planner-off outputs are
  /// byte-identical by construction. Attaching tables in FROM order
  /// already emits this order (the probe preserves input order and
  /// per-key matches are in ascending candidate order), so the sort is
  /// skipped when the attach sequence was the identity.
  Status CanonicalizeTupleOrder() {
    const size_t n = q_.num_tables();
    if (n <= 1 || joined_.size() <= 1) return Status::OK();
    bool identity = true;
    for (size_t i = 0; i < attach_order_.size(); ++i) {
      if (attach_order_[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) return Status::OK();
    ASQP_RETURN_NOT_OK(ticker_.Tick("canonical order"));
    std::vector<uint32_t> index(joined_.size());
    for (size_t i = 0; i < index.size(); ++i) {
      index[i] = static_cast<uint32_t>(i);
    }
    std::sort(index.begin(), index.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t* ta = joined_.tuple(a);
      const uint32_t* tb = joined_.tuple(b);
      return std::lexicographical_compare(ta, ta + n, tb, tb + n);
    });
    TupleSet sorted;
    sorted.num_tables = n;
    sorted.flat.reserve(joined_.flat.size());
    for (uint32_t i : index) {
      sorted.Append(joined_.tuple(i));
    }
    joined_ = std::move(sorted);
    return Status::OK();
  }

  Status AttachTable(size_t t, const std::vector<bool>& in_join) {
    const size_t n = q_.num_tables();
    // Collect equi-predicates connecting t to the joined set.
    struct KeyPair {
      int probe_table;  // already-joined side
      int probe_col;
      int build_col;    // column of table t
    };
    std::vector<KeyPair> keys;
    for (const JoinPredicate& jp : q_.joins) {
      if (jp.left_table == static_cast<int>(t) && in_join[jp.right_table]) {
        keys.push_back({jp.right_table, jp.right_col, jp.left_col});
      } else if (jp.right_table == static_cast<int>(t) && in_join[jp.left_table]) {
        keys.push_back({jp.left_table, jp.left_col, jp.right_col});
      }
    }

    TupleSet next;
    next.num_tables = n;

    if (keys.empty()) {
      // Cross product, morsel-parallel over the outer tuples: each morsel
      // emits |morsel| x |candidates| tuples into its own buffer. The row
      // cap is enforced incrementally (per outer row inside a morsel, then
      // on the accumulated total) instead of projected up front, so the
      // error reports how many rows were actually produced before the cap
      // and a mid-flight deadline cancels within one morsel.
      const std::vector<uint32_t>& cand = candidates_[t];
      ASQP_ASSIGN_OR_RETURN(
          next,
          MorselRewrite(
              "cross product",
              [&](size_t begin, size_t end, TupleSet* out,
                  util::DeadlineTicker* ticker) -> Status {
                std::vector<uint32_t> tmp(n, 0);
                for (size_t i = begin; i < end; ++i) {
                  ASQP_RETURN_NOT_OK(ticker->Tick("cross product"));
                  const uint32_t* src = joined_.tuple(i);
                  std::copy(src, src + n, tmp.begin());
                  for (uint32_t row : cand) {
                    tmp[t] = row;
                    out->Append(tmp.data());
                  }
                  if (out->size() > options_.max_intermediate_rows) {
                    return Status::ExecutionError(util::Format(
                        "cross product: intermediate join result exceeds "
                        "%zu rows (%zu rows produced before the cap)",
                        options_.max_intermediate_rows, out->size()));
                  }
                }
                return Status::OK();
              }));
      joined_ = std::move(next);
      return Status::OK();
    }

    // Build hash table on table t's candidate rows: key -> rows in
    // candidate order. The parallel path radix-partitions per morsel and
    // merges in morsel order, producing byte-identical per-key vectors.
    const Table& build_table = *q_.tables[t];
    if (ASQP_FAULT_POINT("exec.join.alloc")) {
      return Status::ResourceExhausted(
          "injected fault(exec.join.alloc): hash-join build allocation failed");
    }
    const auto build_key = [&](uint32_t row, std::string* key) -> bool {
      key->clear();
      for (const KeyPair& kp : keys) {
        const Value v = build_table.column(kp.build_col).ValueAt(row);
        if (v.is_null()) return false;  // NULL never joins
        *key += ValueKey(v);
        *key += '\x01';
      }
      return true;
    };
    JoinBuild build;
    const std::vector<uint32_t>& cand = candidates_[t];
    if (pool_ != nullptr && cand.size() > 1) {
      ASQP_RETURN_NOT_OK(ParallelBuild(build_key, cand, &build));
    } else {
      build.parts.resize(1);
      auto& part = build.parts[0];
      part.reserve(cand.size() * 2);
      std::string key;
      for (uint32_t row : cand) {
        ASQP_RETURN_NOT_OK(ticker_.Tick("hash-join build"));
        if (build_key(row, &key)) part[key].push_back(row);
      }
    }

    // Probe with current tuples. The build table above is shared read-only
    // across morsels; each morsel appends matches to its own TupleSet. The
    // in-loop cap check bounds any single morsel's output even before the
    // merged total is validated.
    ASQP_ASSIGN_OR_RETURN(
        next,
        MorselRewrite(
            "hash-join probe",
            [&](size_t begin, size_t end, TupleSet* out,
                util::DeadlineTicker* ticker) -> Status {
              std::vector<uint32_t> tmp(n, 0);
              std::string key;
              for (size_t i = begin; i < end; ++i) {
                ASQP_RETURN_NOT_OK(ticker->Tick("hash-join probe"));
                const uint32_t* src = joined_.tuple(i);
                key.clear();
                bool has_null = false;
                for (const KeyPair& kp : keys) {
                  const Value v = q_.tables[kp.probe_table]
                                      ->column(kp.probe_col)
                                      .ValueAt(src[kp.probe_table]);
                  if (v.is_null()) {
                    has_null = true;
                    break;
                  }
                  key += ValueKey(v);
                  key += '\x01';
                }
                if (has_null) continue;
                const std::vector<uint32_t>* matches = build.Find(key);
                if (matches == nullptr) continue;
                for (const uint32_t match : *matches) {
                  std::copy(src, src + n, tmp.begin());
                  tmp[t] = match;
                  out->Append(tmp.data());
                  if (out->size() > options_.max_intermediate_rows) {
                    return Status::ExecutionError(util::Format(
                        "intermediate join result exceeds %zu rows",
                        options_.max_intermediate_rows));
                  }
                }
              }
              return Status::OK();
            }));
    joined_ = std::move(next);
    return Status::OK();
  }

  /// Radix-partitioned parallel hash-join build. Map step: each morsel of
  /// candidate rows serializes its join keys and scatters (key, row) pairs
  /// into per-morsel partition buffers (partition = Fnv1a(key) masked to a
  /// power of two). Merge step: one task per partition appends its buffers
  /// into the final per-partition hash table walking morsels in morsel
  /// order — a key lives in exactly one partition, so every per-key row
  /// vector ends up in candidate order, byte-identical to the sequential
  /// build.
  Status ParallelBuild(
      const std::function<bool(uint32_t, std::string*)>& build_key,
      const std::vector<uint32_t>& cand, JoinBuild* build) {
    size_t partitions = options_.build_partitions;
    if (partitions == 0) {
      partitions = 1;
      while (partitions < options_.num_threads * 4 && partitions < 64) {
        partitions <<= 1;
      }
    }
    // Round down to a power of two so Find() can mask instead of mod.
    while ((partitions & (partitions - 1)) != 0) partitions &= partitions - 1;

    using Bucket = std::vector<std::pair<std::string, uint32_t>>;
    const size_t morsel = options_.morsel_rows;
    const size_t num_chunks = (cand.size() + morsel - 1) / morsel;
    std::vector<std::vector<Bucket>> chunk_buckets(num_chunks);
    ASQP_RETURN_NOT_OK(pool_->ParallelForChunked(
        cand.size(), morsel,
        [&](size_t chunk, size_t begin, size_t end) -> Status {
          if (ASQP_FAULT_POINT("exec.join.partition")) {
            return Status::ResourceExhausted(
                "injected fault(exec.join.partition): hash-join partition buffer "
                "allocation failed");
          }
          util::DeadlineTicker ticker(context_, /*stride=*/256);
          std::vector<Bucket> buckets(partitions);
          std::string key;
          for (size_t i = begin; i < end; ++i) {
            ASQP_RETURN_NOT_OK(ticker.Tick("hash-join build"));
            if (!build_key(cand[i], &key)) continue;
            buckets[util::Fnv1a(key) & (partitions - 1)].emplace_back(key,
                                                                      cand[i]);
          }
          chunk_buckets[chunk] = std::move(buckets);
          return Status::OK();
        }));
    build->parts.resize(partitions);
    return pool_->ParallelForChunked(
        partitions, 1, [&](size_t, size_t p, size_t) -> Status {
          util::DeadlineTicker ticker(context_, /*stride=*/256);
          auto& part = build->parts[p];
          size_t entries = 0;
          for (const auto& buckets : chunk_buckets) entries += buckets[p].size();
          part.reserve(entries * 2);
          for (auto& buckets : chunk_buckets) {
            for (auto& [key, row] : buckets[p]) {
              ASQP_RETURN_NOT_OK(ticker.Tick("hash-join build merge"));
              part[std::move(key)].push_back(row);
            }
          }
          return Status::OK();
        });
  }

  Status ApplyReadyResiduals(const std::vector<bool>& in_join,
                             std::vector<bool>* done) {
    for (size_t r = 0; r < q_.residual.size(); ++r) {
      if ((*done)[r]) continue;
      bool ready = true;
      for (int t : q_.residual_tables[r]) {
        if (!in_join[t]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      (*done)[r] = true;
      ASQP_ASSIGN_OR_RETURN(
          TupleSet next,
          MorselRewrite(
              "residual filter",
              [&](size_t begin, size_t end, TupleSet* out,
                  util::DeadlineTicker* ticker) -> Status {
                JoinedRow jr{&q_.tables, nullptr};
                for (size_t i = begin; i < end; ++i) {
                  ASQP_RETURN_NOT_OK(ticker->Tick("residual filter"));
                  jr.row_ids = joined_.tuple(i);
                  if (EvaluatePredicate(*q_.residual[r], jr)) {
                    out->Append(joined_.tuple(i));
                  }
                }
                return Status::OK();
              }));
      joined_ = std::move(next);
    }
    return Status::OK();
  }

  /// Column names for the output schema.
  std::vector<std::string> OutputNames() const {
    std::vector<std::string> names;
    for (const SelectItem& item : q_.stmt.items) {
      if (!item.alias.empty()) {
        names.push_back(item.alias);
      } else if (item.agg != AggFunc::kNone) {
        names.push_back(util::ToLower(sql::AggFuncName(item.agg)));
      } else if (item.star) {
        for (size_t t = 0; t < q_.num_tables(); ++t) {
          const Table& table = *q_.tables[t];
          for (const auto& f : table.schema().fields()) {
            names.push_back(q_.stmt.from[t].binding_name() + "." + f.name);
          }
        }
      } else {
        names.push_back(item.expr->ToSql());
      }
    }
    return names;
  }

  /// Per-morsel partial projection output: evaluated select-item rows plus
  /// (when sorting) their ORDER BY keys, aligned by index.
  struct ProjPartial {
    std::vector<std::vector<Value>> rows;
    std::vector<std::vector<Value>> keys;
  };

  Result<ResultSet> Project() {
    ResultSet out(OutputNames());
    const size_t input = joined_.size();
    const bool need_order = !q_.stmt.order_by.empty();
    const bool has_limit = q_.stmt.limit >= 0;
    const size_t limit = has_limit ? static_cast<size_t>(q_.stmt.limit) : 0;

    size_t expect = input;
    if (has_limit) expect = std::min(expect, limit);
    out.Reserve(expect);

    // Without ORDER BY and DISTINCT each input tuple yields exactly one
    // output row, so a LIMIT needs only the input prefix — the parallel
    // equivalent of the sequential early-exit fast path.
    size_t process = input;
    if (has_limit && !need_order && !q_.stmt.distinct) {
      process = std::min(process, limit);
    }

    std::vector<std::vector<Value>> order_keys;
    std::unordered_set<std::string> distinct_seen;

    // Evaluate select items (and ORDER BY keys) for tuples [begin, end)
    // into `partial`; runs thread-local on the pool.
    const auto eval_range = [&](size_t begin, size_t end, ProjPartial* partial,
                                util::DeadlineTicker* ticker) -> Status {
      JoinedRow jr{&q_.tables, nullptr};
      partial->rows.reserve(end - begin);
      if (need_order) partial->keys.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        ASQP_RETURN_NOT_OK(ticker->Tick("projection"));
        jr.row_ids = joined_.tuple(i);
        std::vector<Value> row;
        for (const SelectItem& item : q_.stmt.items) {
          if (item.star) {
            for (size_t t = 0; t < q_.num_tables(); ++t) {
              const Table& table = *q_.tables[t];
              for (size_t c = 0; c < table.num_columns(); ++c) {
                row.push_back(table.column(c).ValueAt(jr.row_ids[t]));
              }
            }
          } else {
            row.push_back(EvaluateScalar(*item.expr, jr));
          }
        }
        if (need_order) {
          std::vector<Value> keys;
          keys.reserve(q_.stmt.order_by.size());
          for (const auto& o : q_.stmt.order_by) {
            keys.push_back(EvaluateScalar(*o.expr, jr));
          }
          partial->keys.push_back(std::move(keys));
        }
        partial->rows.push_back(std::move(row));
      }
      return Status::OK();
    };

    // Fold one morsel's evaluated rows onto the result; always runs on the
    // calling thread in morsel order, so DISTINCT deduplicates in input
    // order and the LIMIT fast path keeps exactly the sequential prefix.
    const auto merge_partial = [&](ProjPartial* partial) -> Status {
      for (size_t i = 0; i < partial->rows.size(); ++i) {
        ASQP_RETURN_NOT_OK(ticker_.Tick("projection merge"));
        if (!need_order && has_limit && out.num_rows() >= limit) break;
        std::vector<Value>& row = partial->rows[i];
        if (q_.stmt.distinct) {
          std::string key;
          for (const Value& v : row) {
            key += ValueKey(v);
            key += '\x01';
          }
          if (!distinct_seen.insert(std::move(key)).second) continue;
        }
        if (need_order) order_keys.push_back(std::move(partial->keys[i]));
        out.AddRow(std::move(row));
      }
      return Status::OK();
    };

    if (pool_ != nullptr && process > 1) {
      ASQP_RETURN_NOT_OK(pool_->ParallelReduceOrdered<ProjPartial>(
          process, options_.morsel_rows,
          [&](size_t, size_t begin, size_t end, ProjPartial* partial)
              -> Status {
            util::DeadlineTicker ticker(context_, /*stride=*/256);
            return eval_range(begin, end, partial, &ticker);
          },
          [&](size_t, ProjPartial* partial) -> Status {
            return merge_partial(partial);
          }));
    } else {
      ProjPartial all;
      ASQP_RETURN_NOT_OK(eval_range(0, process, &all, &ticker_));
      ASQP_RETURN_NOT_OK(merge_partial(&all));
    }

    if (need_order) {
      std::vector<size_t> perm(out.num_rows());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < q_.stmt.order_by.size(); ++k) {
          const int cmp = order_keys[a][k].Compare(order_keys[b][k]);
          if (cmp != 0) return q_.stmt.order_by[k].desc ? cmp > 0 : cmp < 0;
        }
        return false;
      });
      std::vector<std::vector<Value>> sorted;
      sorted.reserve(perm.size());
      for (size_t idx : perm) sorted.push_back(std::move(out.mutable_rows()[idx]));
      out.mutable_rows() = std::move(sorted);
      if (q_.stmt.limit >= 0 &&
          out.num_rows() > static_cast<size_t>(q_.stmt.limit)) {
        out.mutable_rows().resize(static_cast<size_t>(q_.stmt.limit));
      }
    }
    return out;
  }

  /// Partial aggregate state for one select item within one group. COUNT,
  /// SUM, MIN, MAX, and AVG (= SUM/COUNT at finalize) merge associatively;
  /// agg(DISTINCT ...) defers folding: partials carry their deduplicated
  /// values in first-occurrence order and the fold happens once at
  /// finalize, over the merged order, so DISTINCT floating-point sums are
  /// accumulated in exactly the sequential order.
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool has_minmax = false;
    Value min;
    Value max;
    bool has_first = false;
    Value first;  // non-agg select item: value from the group's first row
    std::vector<Value> distinct_values;    // agg(DISTINCT): insertion order
    std::unordered_set<std::string> seen;  // dedup keys for distinct_values
  };

  /// One group's partial state: the per-item AggStates. Keyed externally
  /// by the serialized GROUP BY tuple.
  using AggGroup = std::vector<AggState>;
  using AggTable = std::unordered_map<std::string, AggGroup>;

  /// Merge `src` into `dst` (dst = earlier morsels, src = the next morsel
  /// in morsel order). All merge rules keep the earlier side on ties, so
  /// the merged state matches a sequential left-to-right accumulation.
  static void MergeAggGroup(AggGroup* dst, AggGroup* src) {
    for (size_t s = 0; s < dst->size(); ++s) {
      AggState& a = (*dst)[s];
      AggState& b = (*src)[s];
      a.count += b.count;
      a.sum += b.sum;
      if (b.has_minmax) {
        if (!a.has_minmax) {
          a.min = std::move(b.min);
          a.max = std::move(b.max);
          a.has_minmax = true;
        } else {
          if (b.min.Compare(a.min) < 0) a.min = std::move(b.min);
          if (b.max.Compare(a.max) > 0) a.max = std::move(b.max);
        }
      }
      if (!a.has_first && b.has_first) {
        a.first = std::move(b.first);
        a.has_first = true;
      }
      for (Value& v : b.distinct_values) {
        if (a.seen.insert(ValueKey(v)).second) {
          a.distinct_values.push_back(std::move(v));
        }
      }
    }
  }

  /// Group-and-aggregate. Parallel plan: every morsel accumulates a
  /// thread-local group table (map step), then the partial tables merge on
  /// the calling thread in morsel order into a std::map whose sorted key
  /// iteration is the canonical group order (the same order the previous
  /// single-pass implementation emitted). The sequential engine runs the
  /// identical morsel decomposition inline, so output — including the
  /// low-order bits of floating-point SUM/AVG partials — depends only on
  /// morsel_rows, never on the thread count.
  Result<ResultSet> Aggregate() {
    const bool post_process =
        q_.stmt.having != nullptr || !q_.stmt.order_by.empty();
    const size_t num_items = q_.stmt.items.size();
    const size_t input = joined_.size();

    // Map step: accumulate tuples [begin, end) into `local`.
    const auto partial_range = [&](size_t begin, size_t end, AggTable* local,
                                   util::DeadlineTicker* ticker) -> Status {
      if (ASQP_FAULT_POINT("exec.agg.partial")) {
        return Status::ResourceExhausted(
            "injected fault(exec.agg.partial): partial-aggregation table "
            "allocation failed");
      }
      JoinedRow jr{&q_.tables, nullptr};
      std::string key;
      for (size_t i = begin; i < end; ++i) {
        ASQP_RETURN_NOT_OK(ticker->Tick("aggregation"));
        jr.row_ids = joined_.tuple(i);
        key.clear();
        for (const ExprPtr& g : q_.stmt.group_by) {
          key += ValueKey(EvaluateScalar(*g, jr));
          key += '\x01';
        }
        auto [it, inserted] = local->try_emplace(key);
        if (inserted) it->second.resize(num_items);
        AggGroup& states = it->second;
        for (size_t s = 0; s < num_items; ++s) {
          const SelectItem& item = q_.stmt.items[s];
          AggState& st = states[s];
          if (item.agg == AggFunc::kNone) {
            if (!st.has_first) {
              st.first = item.star ? Value() : EvaluateScalar(*item.expr, jr);
              st.has_first = true;
            }
            continue;
          }
          if (item.agg == AggFunc::kCount && item.star) {
            ++st.count;
            continue;
          }
          const Value v = EvaluateScalar(*item.expr, jr);
          if (v.is_null()) continue;
          if (item.distinct) {
            // Defer the fold: record each new value in first-occurrence
            // order; finalize replays them sequentially.
            if (st.seen.insert(ValueKey(v)).second) {
              st.distinct_values.push_back(v);
            }
            continue;
          }
          ++st.count;
          st.sum += v.ToNumeric();
          if (!st.has_minmax) {
            st.min = v;
            st.max = v;
            st.has_minmax = true;
          } else {
            if (v.Compare(st.min) < 0) st.min = v;
            if (v.Compare(st.max) > 0) st.max = v;
          }
        }
      }
      return Status::OK();
    };

    // Reduce step: fold one morsel's partial table into the global hash
    // table. Group order is imposed once at finalization (a single sort
    // over the distinct keys) instead of per-row via std::map's log(n)
    // ordered inserts; the emitted order — sorted serialized group keys —
    // is byte-identical to the previous std::map iteration order.
    AggTable groups;
    const auto merge_table = [&](AggTable* local) -> Status {
      for (auto& [key, states] : *local) {
        ASQP_RETURN_NOT_OK(ticker_.Tick("aggregation merge"));
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted) {
          it->second = std::move(states);
        } else {
          MergeAggGroup(&it->second, &states);
        }
      }
      return Status::OK();
    };

    if (pool_ != nullptr && input > 1) {
      ASQP_RETURN_NOT_OK(pool_->ParallelReduceOrdered<AggTable>(
          input, options_.morsel_rows,
          [&](size_t, size_t begin, size_t end, AggTable* local) -> Status {
            util::DeadlineTicker ticker(context_, /*stride=*/256);
            return partial_range(begin, end, local, &ticker);
          },
          [&](size_t, AggTable* local) -> Status {
            return merge_table(local);
          }));
    } else {
      // Same morsel decomposition, inline: chunk k maps then reduces
      // before chunk k+1 starts — the identical left fold in morsel order.
      const size_t morsel = options_.morsel_rows;
      for (size_t begin = 0; begin < input; begin += morsel) {
        AggTable local;
        ASQP_RETURN_NOT_OK(partial_range(begin, std::min(input, begin + morsel),
                                         &local, &ticker_));
        ASQP_RETURN_NOT_OK(merge_table(&local));
      }
    }

    // Canonical group order: sort the distinct keys once. Emission then
    // walks the same sorted sequence the old std::map produced.
    std::vector<AggTable::value_type*> ordered;
    ordered.reserve(groups.size());
    for (auto& kv : groups) ordered.push_back(&kv);
    std::sort(ordered.begin(), ordered.end(),
              [](const AggTable::value_type* a, const AggTable::value_type* b) {
                return a->first < b->first;
              });

    ResultSet out(OutputNames());
    for (AggTable::value_type* kv : ordered) {
      AggGroup& states = kv->second;
      std::vector<Value> row;
      row.reserve(num_items);
      for (size_t s = 0; s < num_items; ++s) {
        const SelectItem& item = q_.stmt.items[s];
        AggState& st = states[s];
        if (item.agg != AggFunc::kNone && item.distinct) {
          // Replay the merged distinct values in first-occurrence order —
          // the exact accumulation order of a sequential single pass.
          for (const Value& v : st.distinct_values) {
            ++st.count;
            st.sum += v.ToNumeric();
            if (!st.has_minmax) {
              st.min = v;
              st.max = v;
              st.has_minmax = true;
            } else {
              if (v.Compare(st.min) < 0) st.min = v;
              if (v.Compare(st.max) > 0) st.max = v;
            }
          }
        }
        switch (item.agg) {
          case AggFunc::kNone:
            row.push_back(st.has_first ? std::move(st.first) : Value());
            break;
          case AggFunc::kCount:
            row.push_back(Value(st.count));
            break;
          case AggFunc::kSum:
            row.push_back(st.count == 0 ? Value() : Value(st.sum));
            break;
          case AggFunc::kAvg:
            row.push_back(st.count == 0
                              ? Value()
                              : Value(st.sum / static_cast<double>(st.count)));
            break;
          case AggFunc::kMin:
            row.push_back(st.has_minmax ? st.min : Value());
            break;
          case AggFunc::kMax:
            row.push_back(st.has_minmax ? st.max : Value());
            break;
        }
      }
      out.AddRow(std::move(row));
      // Early LIMIT only when no HAVING/ORDER BY will reshape the output.
      if (!post_process && q_.stmt.limit >= 0 &&
          out.num_rows() >= static_cast<size_t>(q_.stmt.limit)) {
        break;
      }
    }
    // An aggregate query without GROUP BY always yields one row, even over
    // empty input.
    if (q_.stmt.group_by.empty() && out.num_rows() == 0 &&
        (q_.stmt.limit < 0 || q_.stmt.limit > 0)) {
      std::vector<Value> row;
      for (const SelectItem& item : q_.stmt.items) {
        row.push_back(item.agg == AggFunc::kCount ? Value(int64_t{0}) : Value());
      }
      out.AddRow(std::move(row));
    }

    // HAVING: filter output rows by name-resolved predicate.
    if (q_.stmt.having != nullptr) {
      std::vector<std::vector<Value>> kept;
      for (auto& row : out.mutable_rows()) {
        ASQP_ASSIGN_OR_RETURN(
            bool pass, EvaluatePredicateOnRow(*q_.stmt.having,
                                              out.column_names(), row));
        if (pass) kept.push_back(std::move(row));
      }
      out.mutable_rows() = std::move(kept);
    }

    // ORDER BY over the aggregate output.
    if (!q_.stmt.order_by.empty()) {
      const size_t n = out.num_rows();
      std::vector<std::vector<Value>> keys(n);
      for (size_t i = 0; i < n; ++i) {
        for (const auto& o : q_.stmt.order_by) {
          ASQP_ASSIGN_OR_RETURN(
              Value key,
              EvaluateScalarOnRow(*o.expr, out.column_names(), out.row(i)));
          keys[i].push_back(std::move(key));
        }
      }
      std::vector<size_t> perm(n);
      for (size_t i = 0; i < n; ++i) perm[i] = i;
      std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < q_.stmt.order_by.size(); ++k) {
          const int cmp = keys[a][k].Compare(keys[b][k]);
          if (cmp != 0) return q_.stmt.order_by[k].desc ? cmp > 0 : cmp < 0;
        }
        return false;
      });
      std::vector<std::vector<Value>> sorted;
      sorted.reserve(n);
      for (size_t idx : perm) sorted.push_back(std::move(out.mutable_rows()[idx]));
      out.mutable_rows() = std::move(sorted);
    }

    if (post_process && q_.stmt.limit >= 0 &&
        out.num_rows() > static_cast<size_t>(q_.stmt.limit)) {
      out.mutable_rows().resize(static_cast<size_t>(q_.stmt.limit));
    }
    return out;
  }

  const BoundQuery& q_;
  const DatabaseView& view_;
  const ExecOptions& options_;
  const util::ExecContext& context_;
  util::ThreadPool* pool_;  // null = sequential
  /// Ordered indexes covering view_ (null = full scans only).
  const storage::IndexCatalog* indexes_;
  /// Preselected filtered-scan outputs (null = scan every table).
  const std::vector<ScanSelection>* selections_;
  util::DeadlineTicker ticker_;

  std::vector<std::vector<uint32_t>> candidates_;
  TupleSet joined_;
  /// The realized join sequence (seed first); drives the identity-order
  /// fast path of CanonicalizeTupleOrder.
  std::vector<size_t> attach_order_;
};

}  // namespace

QueryEngine::QueryEngine(ExecOptions options) : options_(options) {
  if (options_.morsel_rows == 0) options_.morsel_rows = 1;
  if (options_.shared_pool != nullptr) {
    // Injected pool (the serving layer's process-wide pool): adopt it and
    // derive the concurrency from its size (workers + calling thread).
    pool_ = options_.shared_pool;
    options_.num_threads = pool_->num_threads() + 1;
  } else if (options_.num_threads > 1) {
    // The calling thread participates in ParallelForChunked, so
    // num_threads - 1 pool workers give num_threads total.
    pool_ = std::make_shared<util::ThreadPool>(options_.num_threads - 1);
  }
}

Result<ResultSet> QueryEngine::Execute(const BoundQuery& query,
                                       const DatabaseView& view,
                                       const util::ExecContext& context) const {
  // The index catalog only participates when its scope is exactly the view
  // being executed: a full-database execution through an engine carrying
  // approximation-set indexes must not read subset ordinals.
  const storage::IndexCatalog* indexes =
      options_.index_catalog != nullptr &&
              options_.index_catalog->CoversView(view)
          ? options_.index_catalog.get()
          : nullptr;
  if (options_.enable_planner) {
    const BoundQuery planned = plan::PlanQuery(
        query, options_.planner_stats.get(), /*summary=*/nullptr, indexes);
    Execution exec(planned, view, options_, context, pool_.get(), indexes);
    return exec.Run();
  }
  Execution exec(query, view, options_, context, pool_.get(), indexes);
  return exec.Run();
}

sql::BoundQuery QueryEngine::PlanForView(const BoundQuery& query,
                                         const DatabaseView& view) const {
  if (!options_.enable_planner) return query;
  // Same coverage rule as Execute(): the catalog participates only when
  // its scope is exactly the view the plan will run against.
  const storage::IndexCatalog* indexes =
      options_.index_catalog != nullptr &&
              options_.index_catalog->CoversView(view)
          ? options_.index_catalog.get()
          : nullptr;
  return plan::PlanQuery(query, options_.planner_stats.get(),
                         /*summary=*/nullptr, indexes);
}

Result<ResultSet> QueryEngine::ExecutePlanned(
    const BoundQuery& planned, const DatabaseView& view,
    const std::vector<ScanSelection>& selections,
    const util::ExecContext& context) const {
  const storage::IndexCatalog* indexes =
      options_.index_catalog != nullptr &&
              options_.index_catalog->CoversView(view)
          ? options_.index_catalog.get()
          : nullptr;
  Execution exec(planned, view, options_, context, pool_.get(), indexes,
                 &selections);
  return exec.Run();
}

util::Status QueryEngine::SharedFilterScan(
    const DatabaseView& view, const Table& table,
    const std::vector<SharedScanMember>& members,
    const util::ExecContext& context,
    std::vector<std::vector<uint32_t>>* out) const {
  const size_t m = members.size();
  out->assign(m, {});
  if (m == 0) return Status::OK();
  const size_t domain = view.VisibleRows(table);

  // One pass over the table's visible ordinals; per row, each member's
  // conjuncts are evaluated in declaration order with short-circuit —
  // exactly the per-member FilterScans inner loop, so each member's output
  // rows (and their order) match its solo scan byte for byte.
  const auto scan_range = [&](size_t begin, size_t end,
                              std::vector<std::vector<uint32_t>>* rows,
                              util::DeadlineTicker* ticker) -> Status {
    // Per-member scratch tuples (members may have different FROM arity).
    std::vector<std::vector<uint32_t>> scratch(m);
    std::vector<JoinedRow> jr(m);
    for (size_t i = 0; i < m; ++i) {
      scratch[i].assign(members[i].query->num_tables(), 0);
      jr[i] = JoinedRow{&members[i].query->tables, scratch[i].data()};
    }
    for (size_t ord = begin; ord < end; ++ord) {
      ASQP_RETURN_NOT_OK(ticker->Tick("shared table scan"));
      const uint32_t row = view.PhysicalRow(table, ord);
      for (size_t i = 0; i < m; ++i) {
        const SharedScanMember& member = members[i];
        scratch[i][member.table_index] = row;
        bool pass = true;
        for (const ExprPtr& f : member.query->filters[member.table_index]) {
          if (!EvaluatePredicate(*f, jr[i])) {
            pass = false;
            break;
          }
        }
        if (pass) (*rows)[i].push_back(row);
      }
    }
    return Status::OK();
  };

  if (pool_ != nullptr && domain > 1) {
    const size_t morsel = options_.morsel_rows;
    const size_t chunks = (domain + morsel - 1) / morsel;
    std::vector<std::vector<std::vector<uint32_t>>> parts(chunks);
    ASQP_RETURN_NOT_OK(pool_->ParallelForChunked(
        domain, morsel, [&](size_t chunk, size_t begin, size_t end) -> Status {
          util::DeadlineTicker ticker(context, /*stride=*/256);
          std::vector<std::vector<uint32_t>> local(m);
          ASQP_RETURN_NOT_OK(scan_range(begin, end, &local, &ticker));
          parts[chunk] = std::move(local);
          return Status::OK();
        }));
    for (size_t i = 0; i < m; ++i) {
      size_t total = 0;
      for (const auto& p : parts) total += p[i].size();
      (*out)[i].reserve(total);
      for (const auto& p : parts) {
        (*out)[i].insert((*out)[i].end(), p[i].begin(), p[i].end());
      }
    }
  } else {
    util::DeadlineTicker ticker(context, /*stride=*/256);
    ASQP_RETURN_NOT_OK(scan_range(0, domain, out, &ticker));
  }
  return Status::OK();
}

std::string QueryEngine::Explain(const BoundQuery& query) const {
  if (!options_.enable_planner) {
    return "plan: planner disabled (runtime-greedy join order)\n";
  }
  plan::PlanSummary summary;
  // No view to check coverage against: EXPLAIN reports the plan as it
  // would run over the catalog's own scope (see ExecOptions::index_catalog).
  plan::PlanQuery(query, options_.planner_stats.get(), &summary,
                  options_.index_catalog.get());
  return summary.ToString();
}

Result<std::string> QueryEngine::ExplainSql(const std::string& sql,
                                            const DatabaseView& view) const {
  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound,
                        sql::ParseAndBind(sql, view.db()));
  return Explain(bound);
}

Result<ResultSet> QueryEngine::ExecuteSql(
    const std::string& sql, const DatabaseView& view,
    const util::ExecContext& context) const {
  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound,
                        sql::ParseAndBind(sql, view.db()));
  return Execute(bound, view, context);
}

Result<ProvenancedJoin> QueryEngine::ExecuteWithProvenance(
    const BoundQuery& query, const DatabaseView& view, size_t max_tuples,
    const util::ExecContext& context) const {
  // Never planned, so no access paths exist to consult a catalog for.
  Execution exec(query, view, options_, context, pool_.get(),
                 /*indexes=*/nullptr);
  return exec.RunWithProvenance(max_tuples);
}

}  // namespace exec
}  // namespace asqp
