// Query execution over a DatabaseView (full database or approximation set).
//
// Pipeline: per-table filtered scans -> greedy hash-join ordering (smallest
// filtered table first, joined via equi-predicates; cross product only when
// the join graph is disconnected) -> residual predicates (applied as soon
// as their tables are joined) -> aggregation or projection -> DISTINCT ->
// ORDER BY -> LIMIT.
//
// Parallelism: with ExecOptions::num_threads > 1 every operator runs
// morsel-parallel over a thread pool owned by the engine — scan/filter,
// hash-join *build* (radix-partitioned: each morsel hashes its build rows
// into per-morsel partition buffers, merged into the final per-partition
// hash tables in morsel order), hash-join probe, cross product, residual
// predicate filters, projection, and aggregation (per-morsel partial group
// tables merged associatively in morsel order into a canonically ordered
// final table). Base-table rows (and intermediate join tuples) are split
// into fixed-size morsels, each morsel works into a thread-local buffer,
// and the per-morsel outputs are combined in morsel order — so the
// produced ResultSet is bit-for-bit identical at every thread count. The
// morsel decomposition itself (morsel_rows) is part of the plan: floating
// point SUM/AVG partials are reduced per-morsel then merged in morsel
// order, so the reduction tree — and thus the low-order bits over
// adversarial doubles — depends on morsel_rows but never on num_threads
// (see DESIGN.md "Partitioned build & partial aggregation").
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "exec/result_set.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace asqp {
namespace util {
class ThreadPool;
}  // namespace util

namespace plan {
class StatsCatalog;
}  // namespace plan

namespace storage {
class IndexCatalog;
}  // namespace storage

namespace exec {

struct ExecOptions {
  /// Abort with ExecutionError when an intermediate join result exceeds
  /// this many rows (guards against accidental cross-product blowups).
  size_t max_intermediate_rows = 20'000'000;
  /// Total execution threads for morsel-parallel scans, hash-join probes,
  /// and residual filters. 0 or 1 = fully sequential (no pool is created;
  /// the default, so library users opt in explicitly). The calling thread
  /// participates, so `num_threads` is the total concurrency, not the
  /// helper count. Results are identical across any thread count.
  size_t num_threads = 1;
  /// Rows per morsel dispatched to the pool. Smaller morsels improve load
  /// balance and deadline latency; larger ones amortize dispatch overhead.
  /// Aggregation always reduces per-morsel partials in morsel order (even
  /// sequentially), so changing morsel_rows may flip the last ulp of a
  /// floating-point SUM/AVG; changing num_threads never does.
  size_t morsel_rows = 16 * 1024;
  /// Radix partitions for the parallel hash-join build. Build keys are
  /// FNV-1a hashed into one of `build_partitions` buckets; per-morsel
  /// bucket buffers merge in morsel order, one thread per partition.
  /// 0 = auto (smallest power of two >= 4 * num_threads, capped at 64).
  /// Ignored by the sequential engine (single partition).
  size_t build_partitions = 0;
  /// Externally owned worker pool. When set, the engine runs its morsels
  /// on this pool instead of creating a private one — the serving layer
  /// hands every concurrent session the same process-wide pool so N
  /// sessions never spawn N * num_threads threads. The pool must outlive
  /// the engine. `num_threads` is derived from the pool (workers + the
  /// calling thread) and any explicit value is ignored. Morsel
  /// decomposition (morsel_rows) is unchanged, so results stay
  /// bit-identical to a private pool of any size.
  std::shared_ptr<util::ThreadPool> shared_pool = nullptr;
  /// Run the cost-based planner (src/plan) on every Execute: constant
  /// folding, redundant-predicate pruning, transitive filter pushdown
  /// across join equalities, and cost-ordered join trees. Results are
  /// byte-identical with the planner on or off (the executor canonicalizes
  /// the joined tuple order); off is for A/B comparison and benchmarks.
  /// ExecuteWithProvenance never plans (its callers consume the raw greedy
  /// join-order tuples).
  bool enable_planner = true;
  /// Column statistics for the planner's cardinality estimates, collected
  /// once per database (plan::StatsCatalog::Collect) and shared across
  /// engines. Null = estimate from fixed default selectivities.
  std::shared_ptr<const plan::StatsCatalog> planner_stats = nullptr;
  /// Ordered secondary indexes (storage::IndexCatalog) for the planner's
  /// access-path rule. Consulted only when the catalog's scope covers the
  /// view being executed (IndexCatalog::CoversView) — an execution against
  /// any other view plans and runs as if no catalog were set, so one
  /// engine can serve both the indexed approximation-set view and
  /// unindexed full-database fallbacks. Results are byte-identical with
  /// the catalog set or not (the index yields candidate ordinals in scan
  /// order and every filter conjunct is re-evaluated over them). Explain()
  /// has no view to check and reports plans as if the catalog covered it.
  std::shared_ptr<const storage::IndexCatalog> index_catalog = nullptr;
};

/// \brief One member of a shared filter scan (QueryEngine::SharedFilterScan):
/// a planned/bound query plus the FROM index the scanned table occupies in
/// it. The scan evaluates `query->filters[table_index]` — so for planned
/// queries the member sees exactly the conjuncts (including pushed-down
/// ones) that FilterScans would evaluate.
struct SharedScanMember {
  const sql::BoundQuery* query = nullptr;
  size_t table_index = 0;
};

/// Preselected per-table candidate rows for QueryEngine::ExecutePlanned:
/// entry t replaces FROM table t's filtered scan with the given physical
/// row ids, which must be exactly what the table's filtered scan would
/// have produced (SharedFilterScan guarantees this). A null entry — or a
/// vector shorter than the FROM list — scans that table normally.
using ScanSelection = std::shared_ptr<const std::vector<uint32_t>>;

/// \brief Join result with provenance: for every joined tuple, the physical
/// row id contributed by each FROM entry. Used by the ASQP pre-processing
/// pipeline to build its action-space pool out of executed query
/// representatives (projection, DISTINCT, ORDER BY, and LIMIT are *not*
/// applied — callers want the underlying base tuples).
struct ProvenancedJoin {
  /// Table name per FROM entry (aligned with each tuple's entries).
  std::vector<std::string> table_names;
  /// Row-major tuples: tuples[i][t] is the row id of table_names[t].
  std::vector<std::vector<uint32_t>> tuples;
};

class QueryEngine {
 public:
  explicit QueryEngine(ExecOptions options = {});

  /// Execute a bound query against `view`. The ExecContext's deadline /
  /// cancellation flag / row budget are polled inside the scan, join,
  /// aggregation, and projection loops (every few hundred rows), so an
  /// expired or cancelled execution returns kDeadlineExceeded /
  /// kCancelled / kResourceExhausted promptly instead of running
  /// unbounded.
  [[nodiscard]] util::Result<ResultSet> Execute(
      const sql::BoundQuery& query, const storage::DatabaseView& view,
      const util::ExecContext& context = util::ExecContext()) const;

  /// Parse, bind, and execute `sql` against `view`'s database.
  [[nodiscard]] util::Result<ResultSet> ExecuteSql(
      const std::string& sql, const storage::DatabaseView& view,
      const util::ExecContext& context = util::ExecContext()) const;

  /// Run the cost-based planner on `query` exactly as Execute() would when
  /// targeting `view` (same statistics, same index-catalog coverage rule)
  /// and return the planned query without executing it. Planning is
  /// deterministic over (query, statistics, catalog), so feeding the
  /// result to ExecutePlanned() — today or for a later identical query —
  /// is byte-identical to Execute(query, view, ...). With the planner
  /// disabled this returns `query` unchanged, which ExecutePlanned() runs
  /// exactly as Execute() would. The batching serving tier uses this to
  /// plan one fingerprint once and reuse the plan across a batch.
  [[nodiscard]] sql::BoundQuery PlanForView(
      const sql::BoundQuery& query, const storage::DatabaseView& view) const;

  /// Execute an already-planned query (PlanForView output) without
  /// re-planning, optionally substituting preselected candidate rows for
  /// some tables' filtered scans (see ScanSelection). With `selections`
  /// produced by SharedFilterScan over the same planned query, the result
  /// is byte-identical to Execute() of the original query at any thread
  /// count: the selection replaces the scan with its own exact output, and
  /// every later stage is unchanged.
  [[nodiscard]] util::Result<ResultSet> ExecutePlanned(
      const sql::BoundQuery& planned, const storage::DatabaseView& view,
      const std::vector<ScanSelection>& selections,
      const util::ExecContext& context = util::ExecContext()) const;

  /// Multi-query shared scan: one pass over `table`'s visible rows
  /// evaluating every member query's single-table conjuncts against each
  /// row, instead of one pass per member. out->at(m) receives exactly the
  /// candidate rows member m's own filtered scan would produce — same
  /// domain order (ascending visible ordinals), same conjunct
  /// short-circuit order, morsel-parallel with per-morsel buffers merged
  /// in morsel order — so feeding it to ExecutePlanned() keeps results
  /// byte-identical to unbatched execution. Members whose planner chose an
  /// index access path are scanned here as full passes, which the index
  /// contract already proves byte-identical (the index yields a candidate
  /// superset in scan order and all conjuncts are re-evaluated). All
  /// members must reference the same underlying table through
  /// query->tables[table_index].
  [[nodiscard]] util::Status SharedFilterScan(
      const storage::DatabaseView& view, const storage::Table& table,
      const std::vector<SharedScanMember>& members,
      const util::ExecContext& context,
      std::vector<std::vector<uint32_t>>* out) const;

  /// Run only the filter+join pipeline of a (non-aggregate) query and
  /// return the joined base tuples, capped at `max_tuples` (0 = no cap).
  [[nodiscard]] util::Result<ProvenancedJoin> ExecuteWithProvenance(
      const sql::BoundQuery& query, const storage::DatabaseView& view,
      size_t max_tuples = 0,
      const util::ExecContext& context = util::ExecContext()) const;

  /// EXPLAIN: run the planner on `query` and return its human-readable
  /// plan summary (estimated cardinalities, rewrites, join order) without
  /// executing. Honors enable_planner=false by reporting the unplanned
  /// (runtime-greedy) pipeline.
  std::string Explain(const sql::BoundQuery& query) const;

  /// Parse + bind `sql` against `view`'s database, then Explain it.
  [[nodiscard]] util::Result<std::string> ExplainSql(
      const std::string& sql, const storage::DatabaseView& view) const;

  const ExecOptions& options() const { return options_; }

 private:
  ExecOptions options_;
  /// Worker pool for morsel-parallel execution; null when num_threads <= 1.
  /// Shared (not unique) so QueryEngine stays copyable — copies reuse the
  /// same pool, which is safe because ParallelFor* is self-contained.
  std::shared_ptr<util::ThreadPool> pool_;
};

}  // namespace exec
}  // namespace asqp
