// Query execution over a DatabaseView (full database or approximation set).
//
// Pipeline: per-table filtered scans -> greedy hash-join ordering (smallest
// filtered table first, joined via equi-predicates; cross product only when
// the join graph is disconnected) -> residual predicates (applied as soon
// as their tables are joined) -> aggregation or projection -> DISTINCT ->
// ORDER BY -> LIMIT.
#pragma once

#include <cstdint>
#include <string>

#include "exec/result_set.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace asqp {
namespace exec {

struct ExecOptions {
  /// Abort with ExecutionError when an intermediate join result exceeds
  /// this many rows (guards against accidental cross-product blowups).
  size_t max_intermediate_rows = 20'000'000;
};

/// \brief Join result with provenance: for every joined tuple, the physical
/// row id contributed by each FROM entry. Used by the ASQP pre-processing
/// pipeline to build its action-space pool out of executed query
/// representatives (projection, DISTINCT, ORDER BY, and LIMIT are *not*
/// applied — callers want the underlying base tuples).
struct ProvenancedJoin {
  /// Table name per FROM entry (aligned with each tuple's entries).
  std::vector<std::string> table_names;
  /// Row-major tuples: tuples[i][t] is the row id of table_names[t].
  std::vector<std::vector<uint32_t>> tuples;
};

class QueryEngine {
 public:
  explicit QueryEngine(ExecOptions options = {}) : options_(options) {}

  /// Execute a bound query against `view`. The ExecContext's deadline /
  /// cancellation flag / row budget are polled inside the scan, join,
  /// aggregation, and projection loops (every few hundred rows), so an
  /// expired or cancelled execution returns kDeadlineExceeded /
  /// kCancelled / kResourceExhausted promptly instead of running
  /// unbounded.
  [[nodiscard]] util::Result<ResultSet> Execute(
      const sql::BoundQuery& query, const storage::DatabaseView& view,
      const util::ExecContext& context = util::ExecContext()) const;

  /// Parse, bind, and execute `sql` against `view`'s database.
  [[nodiscard]] util::Result<ResultSet> ExecuteSql(
      const std::string& sql, const storage::DatabaseView& view,
      const util::ExecContext& context = util::ExecContext()) const;

  /// Run only the filter+join pipeline of a (non-aggregate) query and
  /// return the joined base tuples, capped at `max_tuples` (0 = no cap).
  [[nodiscard]] util::Result<ProvenancedJoin> ExecuteWithProvenance(
      const sql::BoundQuery& query, const storage::DatabaseView& view,
      size_t max_tuples = 0,
      const util::ExecContext& context = util::ExecContext()) const;

 private:
  ExecOptions options_;
};

}  // namespace exec
}  // namespace asqp
