// Materialized query results.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "storage/value.h"

namespace asqp {
namespace exec {

/// \brief A materialized query result: column names plus value rows.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const { return column_names_; }
  size_t num_columns() const { return column_names_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Reserve capacity for `rows` output rows (the executor calls this once
  /// the joined cardinality is known, before materializing values).
  void Reserve(size_t rows) { rows_.reserve(rows); }

  void AddRow(std::vector<storage::Value> row) { rows_.push_back(std::move(row)); }
  const std::vector<storage::Value>& row(size_t i) const { return rows_[i]; }
  std::vector<std::vector<storage::Value>>& mutable_rows() { return rows_; }
  const std::vector<std::vector<storage::Value>>& rows() const { return rows_; }

  /// Stable serialization of row `i`, usable as a hash/set key. Two rows
  /// with equal values produce equal keys.
  std::string RowKey(size_t i) const {
    std::string key;
    for (const storage::Value& v : rows_[i]) {
      key += static_cast<char>('0' + static_cast<int>(v.type()));
      key += v.ToString();
      key += '\x01';
    }
    return key;
  }

  /// Set of all row keys (used by the score and diversity metrics).
  std::unordered_set<std::string> RowKeySet() const {
    std::unordered_set<std::string> keys;
    keys.reserve(rows_.size() * 2);
    for (size_t i = 0; i < rows_.size(); ++i) keys.insert(RowKey(i));
    return keys;
  }

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<storage::Value>> rows_;
};

}  // namespace exec
}  // namespace asqp
