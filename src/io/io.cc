#include "io/io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "aqp/learned_fallback.h"
#include "rl/policy.h"
#include "sql/parser.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace asqp {
namespace io {

namespace {

using storage::Value;
using storage::ValueType;
using util::Result;
using util::Status;

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

util::Status ParseCsvLine(const std::string& line,
                          std::vector<std::string>* fields,
                          size_t* error_field) {
  fields->clear();
  std::string current;
  bool quoted = false;        // inside an open quoted section
  bool closed_quote = false;  // current field ended a quoted section
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
          closed_quote = true;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (closed_quote || !current.empty()) {
        *error_field = fields->size() + 1;
        return Status::ParseError("unexpected quote inside unquoted field");
      }
      quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
      closed_quote = false;
    } else if (c == '\r') {
      // Ignore CR in CRLF files.
    } else {
      if (closed_quote) {
        *error_field = fields->size() + 1;
        return Status::ParseError("text after closing quote");
      }
      current += c;
    }
  }
  if (quoted) {
    *error_field = fields->size() + 1;
    return Status::ParseError("unterminated quoted field");
  }
  fields->push_back(std::move(current));
  return Status::OK();
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Ignore CR in CRLF files.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::shared_ptr<storage::Table>> LoadCsvTable(
    const std::string& path, const std::string& table_name) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(util::Format("%s is empty", path.c_str()));
  }
  std::vector<std::string> header;
  size_t bad_field = 0;
  {
    const Status s = ParseCsvLine(line, &header, &bad_field);
    if (!s.ok()) {
      return Status::ParseError(util::Format("%s line 1 column %zu: %s",
                                             path.c_str(), bad_field,
                                             s.message().c_str()));
    }
  }
  if (header.empty()) {
    return Status::InvalidArgument("CSV header has no columns");
  }

  // Read all rows first (type inference needs the data).
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> row_lines;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    const Status s = ParseCsvLine(line, &fields, &bad_field);
    if (!s.ok()) {
      return Status::ParseError(util::Format("%s line %zu column %zu: %s",
                                             path.c_str(), line_no, bad_field,
                                             s.message().c_str()));
    }
    if (fields.size() != header.size()) {
      return Status::ParseError(
          util::Format("%s line %zu: expected %zu fields, got %zu",
                       path.c_str(), line_no, header.size(), fields.size()));
    }
    rows.push_back(std::move(fields));
    row_lines.push_back(line_no);
  }

  // Infer types.
  std::vector<ValueType> types(header.size(), ValueType::kInt64);
  for (size_t c = 0; c < header.size(); ++c) {
    bool any_nonempty = false;
    for (const auto& row : rows) {
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      any_nonempty = true;
      int64_t iv;
      double dv;
      if (types[c] == ValueType::kInt64 && !ParsesAsInt(cell, &iv)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !ParsesAsDouble(cell, &dv)) {
        types[c] = ValueType::kString;
        break;
      }
    }
    if (!any_nonempty) types[c] = ValueType::kString;
  }

  storage::Schema schema;
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddField({util::ToLower(std::string(util::Trim(header[c]))),
                     types[c]});
  }
  auto table = std::make_shared<storage::Table>(table_name, schema);
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    std::vector<Value> values;
    values.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      if (cell.empty()) {
        values.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          if (!ParsesAsInt(cell, &v)) {
            return Status::ParseError(util::Format(
                "%s line %zu column %zu: '%s' is not a valid INT64",
                path.c_str(), row_lines[r], c + 1, cell.c_str()));
          }
          values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          double v = 0.0;
          if (!ParsesAsDouble(cell, &v)) {
            return Status::ParseError(util::Format(
                "%s line %zu column %zu: '%s' is not a valid DOUBLE",
                path.c_str(), row_lines[r], c + 1, cell.c_str()));
          }
          values.emplace_back(v);
          break;
        }
        default:
          values.emplace_back(cell);
      }
    }
    ASQP_RETURN_NOT_OK(table->AppendRow(values));
  }
  return table;
}

Status WriteCsv(const exec::ResultSet& rs, std::ostream& out) {
  for (size_t c = 0; c < rs.num_columns(); ++c) {
    if (c) out << ',';
    out << QuoteField(rs.column_names()[c]);
  }
  out << '\n';
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    for (size_t c = 0; c < rs.num_columns(); ++c) {
      if (c) out << ',';
      const Value& v = rs.row(r)[c];
      if (!v.is_null()) out << QuoteField(v.ToString());
    }
    out << '\n';
  }
  return Status::OK();
}

Status WriteCsvFile(const exec::ResultSet& rs, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  return WriteCsv(rs, out);
}

Status SaveWorkload(const metric::Workload& workload,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "# asqp workload v1: <weight>\\t<sql>\n";
  out.precision(9);
  for (const metric::WeightedQuery& q : workload.queries()) {
    out << q.weight << '\t' << q.ToSql() << '\n';
  }
  return Status::OK();
}

util::Result<metric::Workload> LoadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  metric::Workload workload;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t tab = trimmed.find('\t');
    if (tab == std::string_view::npos) {
      return Status::ParseError(util::Format(
          "%s line %zu: expected '<weight>\\t<sql>'", path.c_str(), line_no));
    }
    char* end = nullptr;
    const std::string weight_text(trimmed.substr(0, tab));
    const double weight = std::strtod(weight_text.c_str(), &end);
    if (end != weight_text.c_str() + weight_text.size() || weight < 0.0) {
      return Status::ParseError(
          util::Format("%s line %zu: bad weight", path.c_str(), line_no));
    }
    auto stmt = sql::Parse(std::string(trimmed.substr(tab + 1)));
    if (!stmt.ok()) {
      return Status::ParseError(
          util::Format("%s line %zu: %s", path.c_str(), line_no,
                       stmt.status().message().c_str()));
    }
    workload.Add(std::move(stmt).value(), weight);
  }
  workload.NormalizeWeights();
  return workload;
}

Status SaveApproximationSet(const storage::ApproximationSet& set,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "# asqp approximation set v1\n";
  for (const auto& [table, rows] : set.rows()) {
    for (uint32_t row : rows) {
      out << table << ' ' << row << '\n';
    }
  }
  return Status::OK();
}

Result<storage::ApproximationSet> LoadApproximationSet(
    const std::string& path, const storage::Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  storage::ApproximationSet set;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream parts{std::string(trimmed)};
    std::string table;
    uint64_t row = 0;
    if (!(parts >> table >> row)) {
      return Status::ParseError(
          util::Format("%s line %zu: expected '<table> <row>'", path.c_str(),
                       line_no));
    }
    if (db != nullptr) {
      auto t = db->GetTable(table);
      if (!t.ok()) {
        return Status::InvalidArgument(util::Format(
            "%s line %zu: unknown table %s", path.c_str(), line_no,
            table.c_str()));
      }
      if (row >= t.value()->num_rows()) {
        return Status::OutOfRange(util::Format(
            "%s line %zu: row %llu out of range for table %s", path.c_str(),
            line_no, static_cast<unsigned long long>(row), table.c_str()));
      }
    }
    set.Add(table, static_cast<uint32_t>(row));
  }
  set.Seal();
  return set;
}

namespace {

void WriteMlp(std::ostream& out, const std::string& tag, nn::Mlp* net) {
  const std::vector<size_t> dims = net->Dims();
  out << tag << ' ' << dims.size();
  for (size_t d : dims) out << ' ' << d;
  out << ' ' << static_cast<int>(net->activation()) << '\n';
  const std::vector<float*> params = net->Parameters();
  const std::vector<size_t> lengths = net->BlockLengths();
  out.precision(9);
  for (size_t blk = 0; blk < params.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      out << params[blk][i] << '\n';
    }
  }
}

Result<std::shared_ptr<nn::Mlp>> ReadMlp(std::istream& in,
                                         const std::string& expected_tag) {
  std::string tag;
  size_t ndims = 0;
  if (!(in >> tag >> ndims) || tag != expected_tag || ndims < 2 ||
      ndims > 64) {
    return Status::ParseError(
        util::Format("expected '%s <ndims>' header", expected_tag.c_str()));
  }
  std::vector<size_t> dims(ndims);
  for (size_t& d : dims) {
    if (!(in >> d) || d == 0) {
      return Status::ParseError("bad layer dimension");
    }
  }
  int activation = 0;
  if (!(in >> activation) || activation < 0 || activation > 2) {
    return Status::ParseError("bad activation code");
  }
  auto net = std::make_shared<nn::Mlp>(
      dims, static_cast<nn::Activation>(activation), /*seed=*/0);
  const std::vector<float*> params = net->Parameters();
  const std::vector<size_t> lengths = net->BlockLengths();
  for (size_t blk = 0; blk < params.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      if (!(in >> params[blk][i])) {
        return Status::ParseError("truncated weight data");
      }
    }
  }
  return net;
}

}  // namespace

Status SavePolicy(const rl::Policy& policy, const std::string& path) {
  if (policy.actor == nullptr) {
    return Status::InvalidArgument("policy has no actor network");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "asqp-policy v1 " << (policy.critic ? 2 : 1) << '\n';
  WriteMlp(out, "actor", policy.actor.get());
  if (policy.critic) WriteMlp(out, "critic", policy.critic.get());
  return Status::OK();
}

namespace {

void WriteAdamState(std::ostream& out, const std::string& tag,
                    const nn::Adam::State& state) {
  out.precision(9);
  out << tag << ' ' << state.t << ' ' << state.m.size() << '\n';
  for (float x : state.m) out << x << '\n';
  for (float x : state.v) out << x << '\n';
}

Status ReadAdamState(std::istream& in, const std::string& expected_tag,
                     nn::Adam::State* state) {
  std::string tag;
  long long t = 0;
  size_t n = 0;
  if (!(in >> tag >> t >> n) || tag != expected_tag) {
    return Status::ParseError(util::Format("expected '%s' optimizer block",
                                           expected_tag.c_str()));
  }
  state->t = t;
  state->m.resize(n);
  state->v.resize(n);
  for (float& x : state->m) {
    if (!(in >> x)) return Status::ParseError("truncated optimizer moments");
  }
  for (float& x : state->v) {
    if (!(in >> x)) return Status::ParseError("truncated optimizer moments");
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const rl::TrainCheckpoint& checkpoint,
                      const std::string& path) {
  if (checkpoint.policy.actor == nullptr) {
    return Status::InvalidArgument("checkpoint has no actor network");
  }
  if (ASQP_FAULT_POINT("io.checkpoint.write")) {
    return Status::ExecutionError(util::Format(
        "injected fault(io.checkpoint.write): checkpoint write to %s failed",
        path.c_str()));
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return Status::InvalidArgument(
          util::Format("cannot write %s", tmp.c_str()));
    }
    const bool has_critic = checkpoint.policy.critic != nullptr;
    out << "asqp-checkpoint v1 " << (has_critic ? 2 : 1) << '\n';
    WriteMlp(out, "actor", checkpoint.policy.actor.get());
    if (has_critic) WriteMlp(out, "critic", checkpoint.policy.critic.get());
    WriteAdamState(out, "opt-actor", checkpoint.actor_opt);
    if (has_critic) WriteAdamState(out, "opt-critic", checkpoint.critic_opt);
    // max_digits10 precision so every double round-trips exactly; resume
    // must be bit-for-bit identical to the uninterrupted run.
    out.precision(17);
    out << "rng";
    for (uint64_t word : checkpoint.rng.s) out << ' ' << word;
    out << ' ' << (checkpoint.rng.has_cached_normal ? 1 : 0) << ' '
        << checkpoint.rng.cached_normal << '\n';
    out << "loop " << checkpoint.learning_rate << ' '
        << checkpoint.next_iteration << ' ' << checkpoint.episode_counter
        << ' ' << checkpoint.best_score << ' ' << checkpoint.episodes_run
        << ' ' << checkpoint.early_stop_best << ' '
        << checkpoint.early_stop_since_best << ' '
        << checkpoint.divergence_rollbacks << '\n';
    out << "scores " << checkpoint.iteration_scores.size();
    for (double s : checkpoint.iteration_scores) out << ' ' << s;
    out << '\n';
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::ExecutionError(
          util::Format("write to %s failed", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::ExecutionError(util::Format(
        "cannot rename %s into place", tmp.c_str()));
  }
  return Status::OK();
}

Result<rl::TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  std::string magic, version;
  int nets = 0;
  if (!(in >> magic >> version >> nets) || magic != "asqp-checkpoint" ||
      version != "v1" || nets < 1 || nets > 2) {
    return Status::ParseError("not an asqp-checkpoint v1 file");
  }
  rl::TrainCheckpoint ckpt;
  ASQP_ASSIGN_OR_RETURN(ckpt.policy.actor, ReadMlp(in, "actor"));
  if (nets == 2) {
    ASQP_ASSIGN_OR_RETURN(ckpt.policy.critic, ReadMlp(in, "critic"));
  }
  ASQP_RETURN_NOT_OK(ReadAdamState(in, "opt-actor", &ckpt.actor_opt));
  if (nets == 2) {
    ASQP_RETURN_NOT_OK(ReadAdamState(in, "opt-critic", &ckpt.critic_opt));
  }
  std::string tag;
  if (!(in >> tag) || tag != "rng") {
    return Status::ParseError("expected 'rng' block");
  }
  for (uint64_t& word : ckpt.rng.s) {
    if (!(in >> word)) return Status::ParseError("truncated rng state");
  }
  int has_cached = 0;
  if (!(in >> has_cached >> ckpt.rng.cached_normal)) {
    return Status::ParseError("truncated rng state");
  }
  ckpt.rng.has_cached_normal = has_cached != 0;
  if (!(in >> tag) || tag != "loop") {
    return Status::ParseError("expected 'loop' block");
  }
  if (!(in >> ckpt.learning_rate >> ckpt.next_iteration >>
        ckpt.episode_counter >> ckpt.best_score >> ckpt.episodes_run >>
        ckpt.early_stop_best >> ckpt.early_stop_since_best >>
        ckpt.divergence_rollbacks)) {
    return Status::ParseError("truncated loop state");
  }
  size_t nscores = 0;
  if (!(in >> tag >> nscores) || tag != "scores" || nscores > (1u << 24)) {
    return Status::ParseError("expected 'scores' block");
  }
  ckpt.iteration_scores.resize(nscores);
  for (double& s : ckpt.iteration_scores) {
    if (!(in >> s)) return Status::ParseError("truncated score history");
  }
  return ckpt;
}

Result<rl::Policy> LoadPolicy(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  std::string magic, version;
  int nets = 0;
  if (!(in >> magic >> version >> nets) || magic != "asqp-policy" ||
      version != "v1" || nets < 1 || nets > 2) {
    return Status::ParseError("not an asqp-policy v1 file");
  }
  rl::Policy policy;
  ASQP_ASSIGN_OR_RETURN(policy.actor, ReadMlp(in, "actor"));
  if (nets == 2) {
    ASQP_ASSIGN_OR_RETURN(policy.critic, ReadMlp(in, "critic"));
  }
  return policy;
}

Status SaveLearnedFallback(const aqp::LearnedFallback& fallback,
                           const std::string& path) {
  if (ASQP_FAULT_POINT("io.fallback.write")) {
    return Status::ExecutionError(util::Format(
        "injected fault(io.fallback.write): learned-fallback write to %s "
        "failed",
        path.c_str()));
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      return Status::InvalidArgument(
          util::Format("cannot write %s", tmp.c_str()));
    }
    ASQP_RETURN_NOT_OK(fallback.SaveTo(out));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::ExecutionError(
          util::Format("write to %s failed", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::ExecutionError(
        util::Format("cannot rename %s into place", tmp.c_str()));
  }
  return Status::OK();
}

Result<aqp::LearnedFallback> LoadLearnedFallback(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  return aqp::LearnedFallback::LoadFrom(in);
}

}  // namespace io
}  // namespace asqp
