#include "io/io.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "rl/policy.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace asqp {
namespace io {

namespace {

using storage::Value;
using storage::ValueType;
using util::Result;
using util::Status;

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParsesAsDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Ignore CR in CRLF files.
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::shared_ptr<storage::Table>> LoadCsvTable(
    const std::string& path, const std::string& table_name) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(util::Format("%s is empty", path.c_str()));
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.empty()) {
    return Status::InvalidArgument("CSV header has no columns");
  }

  // Read all rows first (type inference needs the data).
  std::vector<std::vector<std::string>> rows;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::ParseError(
          util::Format("%s line %zu: expected %zu fields, got %zu",
                       path.c_str(), line_no, header.size(), fields.size()));
    }
    rows.push_back(std::move(fields));
  }

  // Infer types.
  std::vector<ValueType> types(header.size(), ValueType::kInt64);
  for (size_t c = 0; c < header.size(); ++c) {
    bool any_nonempty = false;
    for (const auto& row : rows) {
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      any_nonempty = true;
      int64_t iv;
      double dv;
      if (types[c] == ValueType::kInt64 && !ParsesAsInt(cell, &iv)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !ParsesAsDouble(cell, &dv)) {
        types[c] = ValueType::kString;
        break;
      }
    }
    if (!any_nonempty) types[c] = ValueType::kString;
  }

  storage::Schema schema;
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddField({util::ToLower(std::string(util::Trim(header[c]))),
                     types[c]});
  }
  auto table = std::make_shared<storage::Table>(table_name, schema);
  for (const auto& row : rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      if (cell.empty()) {
        values.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParsesAsInt(cell, &v);
          values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          double v = 0.0;
          ParsesAsDouble(cell, &v);
          values.emplace_back(v);
          break;
        }
        default:
          values.emplace_back(cell);
      }
    }
    ASQP_RETURN_NOT_OK(table->AppendRow(values));
  }
  return table;
}

Status WriteCsv(const exec::ResultSet& rs, std::ostream& out) {
  for (size_t c = 0; c < rs.num_columns(); ++c) {
    if (c) out << ',';
    out << QuoteField(rs.column_names()[c]);
  }
  out << '\n';
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    for (size_t c = 0; c < rs.num_columns(); ++c) {
      if (c) out << ',';
      const Value& v = rs.row(r)[c];
      if (!v.is_null()) out << QuoteField(v.ToString());
    }
    out << '\n';
  }
  return Status::OK();
}

Status WriteCsvFile(const exec::ResultSet& rs, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  return WriteCsv(rs, out);
}

Status SaveWorkload(const metric::Workload& workload,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "# asqp workload v1: <weight>\\t<sql>\n";
  out.precision(9);
  for (const metric::WeightedQuery& q : workload.queries()) {
    out << q.weight << '\t' << q.ToSql() << '\n';
  }
  return Status::OK();
}

util::Result<metric::Workload> LoadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  metric::Workload workload;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t tab = trimmed.find('\t');
    if (tab == std::string_view::npos) {
      return Status::ParseError(util::Format(
          "%s line %zu: expected '<weight>\\t<sql>'", path.c_str(), line_no));
    }
    char* end = nullptr;
    const std::string weight_text(trimmed.substr(0, tab));
    const double weight = std::strtod(weight_text.c_str(), &end);
    if (end != weight_text.c_str() + weight_text.size() || weight < 0.0) {
      return Status::ParseError(
          util::Format("%s line %zu: bad weight", path.c_str(), line_no));
    }
    auto stmt = sql::Parse(std::string(trimmed.substr(tab + 1)));
    if (!stmt.ok()) {
      return Status::ParseError(
          util::Format("%s line %zu: %s", path.c_str(), line_no,
                       stmt.status().message().c_str()));
    }
    workload.Add(std::move(stmt).value(), weight);
  }
  workload.NormalizeWeights();
  return workload;
}

Status SaveApproximationSet(const storage::ApproximationSet& set,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "# asqp approximation set v1\n";
  for (const auto& [table, rows] : set.rows()) {
    for (uint32_t row : rows) {
      out << table << ' ' << row << '\n';
    }
  }
  return Status::OK();
}

Result<storage::ApproximationSet> LoadApproximationSet(
    const std::string& path, const storage::Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  storage::ApproximationSet set;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream parts{std::string(trimmed)};
    std::string table;
    uint64_t row = 0;
    if (!(parts >> table >> row)) {
      return Status::ParseError(
          util::Format("%s line %zu: expected '<table> <row>'", path.c_str(),
                       line_no));
    }
    if (db != nullptr) {
      auto t = db->GetTable(table);
      if (!t.ok()) {
        return Status::InvalidArgument(util::Format(
            "%s line %zu: unknown table %s", path.c_str(), line_no,
            table.c_str()));
      }
      if (row >= t.value()->num_rows()) {
        return Status::OutOfRange(util::Format(
            "%s line %zu: row %llu out of range for table %s", path.c_str(),
            line_no, static_cast<unsigned long long>(row), table.c_str()));
      }
    }
    set.Add(table, static_cast<uint32_t>(row));
  }
  set.Seal();
  return set;
}

namespace {

void WriteMlp(std::ostream& out, const std::string& tag, nn::Mlp* net) {
  const std::vector<size_t> dims = net->Dims();
  out << tag << ' ' << dims.size();
  for (size_t d : dims) out << ' ' << d;
  out << ' ' << static_cast<int>(net->activation()) << '\n';
  const std::vector<float*> params = net->Parameters();
  const std::vector<size_t> lengths = net->BlockLengths();
  out.precision(9);
  for (size_t blk = 0; blk < params.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      out << params[blk][i] << '\n';
    }
  }
}

Result<std::shared_ptr<nn::Mlp>> ReadMlp(std::istream& in,
                                         const std::string& expected_tag) {
  std::string tag;
  size_t ndims = 0;
  if (!(in >> tag >> ndims) || tag != expected_tag || ndims < 2 ||
      ndims > 64) {
    return Status::ParseError(
        util::Format("expected '%s <ndims>' header", expected_tag.c_str()));
  }
  std::vector<size_t> dims(ndims);
  for (size_t& d : dims) {
    if (!(in >> d) || d == 0) {
      return Status::ParseError("bad layer dimension");
    }
  }
  int activation = 0;
  if (!(in >> activation) || activation < 0 || activation > 2) {
    return Status::ParseError("bad activation code");
  }
  auto net = std::make_shared<nn::Mlp>(
      dims, static_cast<nn::Activation>(activation), /*seed=*/0);
  const std::vector<float*> params = net->Parameters();
  const std::vector<size_t> lengths = net->BlockLengths();
  for (size_t blk = 0; blk < params.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      if (!(in >> params[blk][i])) {
        return Status::ParseError("truncated weight data");
      }
    }
  }
  return net;
}

}  // namespace

Status SavePolicy(const rl::Policy& policy, const std::string& path) {
  if (policy.actor == nullptr) {
    return Status::InvalidArgument("policy has no actor network");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        util::Format("cannot write %s", path.c_str()));
  }
  out << "asqp-policy v1 " << (policy.critic ? 2 : 1) << '\n';
  WriteMlp(out, "actor", policy.actor.get());
  if (policy.critic) WriteMlp(out, "critic", policy.critic.get());
  return Status::OK();
}

Result<rl::Policy> LoadPolicy(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(util::Format("cannot open %s", path.c_str()));
  }
  std::string magic, version;
  int nets = 0;
  if (!(in >> magic >> version >> nets) || magic != "asqp-policy" ||
      version != "v1" || nets < 1 || nets > 2) {
    return Status::ParseError("not an asqp-policy v1 file");
  }
  rl::Policy policy;
  ASQP_ASSIGN_OR_RETURN(policy.actor, ReadMlp(in, "actor"));
  if (nets == 2) {
    ASQP_ASSIGN_OR_RETURN(policy.critic, ReadMlp(in, "critic"));
  }
  return policy;
}

}  // namespace io
}  // namespace asqp
