// Lightweight persistence: CSV import/export for tables and result sets,
// and a text format for approximation sets (so an offline-trained subset
// can be shipped to an exploration session, the deployment mode the paper
// targets).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "exec/result_set.h"
#include "metric/workload.h"
#include "rl/trainer.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace io {

/// Load a table from a CSV file. The first line must be a header of
/// column names; column types are inferred from the data (INT64 if every
/// non-empty cell parses as an integer, DOUBLE if numeric, else STRING).
/// Empty cells become NULL. Quoted fields ("a,b" and "" escapes) are
/// supported. Malformed input — ragged rows, unterminated quotes, stray
/// text after a closing quote, or a cell that no longer parses as the
/// inferred column type — returns kParseError naming the line and column
/// instead of crashing or silently coercing.
[[nodiscard]] util::Result<std::shared_ptr<storage::Table>> LoadCsvTable(
    const std::string& path, const std::string& table_name);

/// Write a result set as CSV (header + rows; strings quoted when needed).
[[nodiscard]] util::Status WriteCsv(const exec::ResultSet& rs, std::ostream& out);
[[nodiscard]] util::Status WriteCsvFile(const exec::ResultSet& rs, const std::string& path);

/// Persist a workload: one "<weight>\t<sql>" line per query ('#' comments
/// and blank lines allowed). Weights are re-normalized on load.
[[nodiscard]] util::Status SaveWorkload(const metric::Workload& workload,
                          const std::string& path);
[[nodiscard]] util::Result<metric::Workload> LoadWorkload(const std::string& path);

/// Persist an approximation set: one "<table> <row-id>" line per tuple.
[[nodiscard]] util::Status SaveApproximationSet(const storage::ApproximationSet& set,
                                  const std::string& path);

/// Load an approximation set saved by SaveApproximationSet. If `db` is
/// non-null, row ids are validated against it.
[[nodiscard]] util::Result<storage::ApproximationSet> LoadApproximationSet(
    const std::string& path, const storage::Database* db = nullptr);

/// Split one CSV line into fields (exposed for testing). Lenient: quote
/// problems are swallowed; use ParseCsvLine when errors must surface.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Strict CSV splitter used by LoadCsvTable: returns kParseError for an
/// unterminated quoted field or stray text after a closing quote, with
/// `*error_field` set to the 1-based field index of the offending cell.
[[nodiscard]] util::Status ParseCsvLine(const std::string& line,
                          std::vector<std::string>* fields,
                          size_t* error_field);

}  // namespace io

namespace rl {
struct Policy;
}  // namespace rl

namespace io {

/// Persist a trained policy (actor + optional critic MLP weights) in a
/// portable text format, so offline training and online exploration can
/// run in different processes.
[[nodiscard]] util::Status SavePolicy(const rl::Policy& policy, const std::string& path);
[[nodiscard]] util::Result<rl::Policy> LoadPolicy(const std::string& path);

/// Persist a full training checkpoint (policy weights, Adam moments, RNG
/// state, loop counters) so an interrupted rl::Train can resume
/// deterministically. The file is written to `path + ".tmp"` first and
/// renamed into place, so a crash mid-write never corrupts an existing
/// checkpoint. The "io.checkpoint.write" fault point simulates a failed
/// write.
[[nodiscard]] util::Status SaveCheckpoint(const rl::TrainCheckpoint& checkpoint,
                            const std::string& path);
[[nodiscard]] util::Result<rl::TrainCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace io

namespace aqp {
class LearnedFallback;
}  // namespace aqp

namespace io {

/// Persist a learned fallback answerer (aqp::LearnedFallback) so an
/// offline-fitted synopsis can ship with the approximation set. Written
/// to `path + ".tmp"` and renamed into place (crash-safe, like
/// SaveCheckpoint); the "io.fallback.write" fault point simulates a
/// failed write.
[[nodiscard]] util::Status SaveLearnedFallback(const aqp::LearnedFallback& fallback,
                                               const std::string& path);
[[nodiscard]] util::Result<aqp::LearnedFallback> LoadLearnedFallback(
    const std::string& path);

}  // namespace io
}  // namespace asqp
