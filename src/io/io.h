// Lightweight persistence: CSV import/export for tables and result sets,
// and a text format for approximation sets (so an offline-trained subset
// can be shipped to an exploration session, the deployment mode the paper
// targets).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "exec/result_set.h"
#include "metric/workload.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace io {

/// Load a table from a CSV file. The first line must be a header of
/// column names; column types are inferred from the data (INT64 if every
/// non-empty cell parses as an integer, DOUBLE if numeric, else STRING).
/// Empty cells become NULL. Quoted fields ("a,b" and "" escapes) are
/// supported.
util::Result<std::shared_ptr<storage::Table>> LoadCsvTable(
    const std::string& path, const std::string& table_name);

/// Write a result set as CSV (header + rows; strings quoted when needed).
util::Status WriteCsv(const exec::ResultSet& rs, std::ostream& out);
util::Status WriteCsvFile(const exec::ResultSet& rs, const std::string& path);

/// Persist a workload: one "<weight>\t<sql>" line per query ('#' comments
/// and blank lines allowed). Weights are re-normalized on load.
util::Status SaveWorkload(const metric::Workload& workload,
                          const std::string& path);
util::Result<metric::Workload> LoadWorkload(const std::string& path);

/// Persist an approximation set: one "<table> <row-id>" line per tuple.
util::Status SaveApproximationSet(const storage::ApproximationSet& set,
                                  const std::string& path);

/// Load an approximation set saved by SaveApproximationSet. If `db` is
/// non-null, row ids are validated against it.
util::Result<storage::ApproximationSet> LoadApproximationSet(
    const std::string& path, const storage::Database* db = nullptr);

/// Split one CSV line into fields (exposed for testing).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace io

namespace rl {
struct Policy;
}  // namespace rl

namespace io {

/// Persist a trained policy (actor + optional critic MLP weights) in a
/// portable text format, so offline training and online exploration can
/// run in different processes.
util::Status SavePolicy(const rl::Policy& policy, const std::string& path);
util::Result<rl::Policy> LoadPolicy(const std::string& path);

}  // namespace io
}  // namespace asqp
