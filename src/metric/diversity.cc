#include "metric/diversity.h"

#include <algorithm>
#include <vector>

namespace asqp {
namespace metric {

double JaccardDistance(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  // Sorted-unique inputs: |A u B| = |A| + |B| - |A n B|.
  const double uni =
      static_cast<double>(a.size() + b.size() - intersection);
  if (uni == 0.0) return 0.0;
  return 1.0 - static_cast<double>(intersection) / uni;
}

double ResultDiversity(const exec::ResultSet& rs, size_t max_rows) {
  const size_t n = std::min(rs.num_rows(), max_rows);
  if (n < 2) return 0.0;

  // Render each row once as a sorted-unique token set.
  std::vector<std::vector<std::string>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    auto& tokens = rows[i];
    tokens.reserve(rs.num_columns());
    for (const storage::Value& v : rs.row(i)) tokens.push_back(v.ToString());
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  }

  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      total += JaccardDistance(rows[i], rows[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace metric
}  // namespace asqp
