// Result diversity (Section 6.2 "Diversity Comparison"): average pairwise
// Jaccard *distance* between result rows, each row viewed as the set of its
// rendered values. Higher = more diverse answers shown to the user.
#pragma once

#include "exec/result_set.h"

namespace asqp {
namespace metric {

/// Average pairwise Jaccard distance over up to `max_rows` rows of `rs`
/// (rows beyond the cap are ignored; the paper evaluates with LIMIT 100).
/// Returns 0 for results with fewer than two rows.
double ResultDiversity(const exec::ResultSet& rs, size_t max_rows = 100);

/// Jaccard distance between two value sets given as sorted string vectors.
double JaccardDistance(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

}  // namespace metric
}  // namespace asqp
