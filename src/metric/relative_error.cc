#include "metric/relative_error.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace asqp {
namespace metric {

double ScalarRelativeError(double truth, double pred) {
  if (truth == 0.0) return pred == 0.0 ? 0.0 : 1.0;
  return std::min(1.0, std::fabs(pred - truth) / std::fabs(truth));
}

namespace {

std::string GroupKey(const std::vector<storage::Value>& row,
                     size_t num_group_cols) {
  std::string key;
  for (size_t c = 0; c < num_group_cols; ++c) {
    key += row[c].ToString();
    key += '\x01';
  }
  return key;
}

}  // namespace

util::Result<double> RelativeError(const exec::ResultSet& truth,
                                   const exec::ResultSet& predicted,
                                   size_t num_group_cols) {
  if (truth.num_columns() != predicted.num_columns()) {
    return util::Status::InvalidArgument(
        "truth and prediction have different column counts");
  }
  if (num_group_cols >= truth.num_columns() && truth.num_columns() > 0) {
    return util::Status::InvalidArgument("no aggregate columns to compare");
  }
  if (truth.num_rows() == 0) return 0.0;

  std::unordered_map<std::string, size_t> pred_index;
  pred_index.reserve(predicted.num_rows() * 2);
  for (size_t i = 0; i < predicted.num_rows(); ++i) {
    pred_index.emplace(GroupKey(predicted.row(i), num_group_cols), i);
  }

  const size_t num_aggs = truth.num_columns() - num_group_cols;
  double total = 0.0;
  for (size_t i = 0; i < truth.num_rows(); ++i) {
    const auto& trow = truth.row(i);
    auto it = pred_index.find(GroupKey(trow, num_group_cols));
    if (it == pred_index.end()) {
      total += 1.0;  // missing group: complete mismatch
      continue;
    }
    const auto& prow = predicted.row(it->second);
    double group_err = 0.0;
    for (size_t a = 0; a < num_aggs; ++a) {
      const storage::Value& tv = trow[num_group_cols + a];
      const storage::Value& pv = prow[num_group_cols + a];
      if (tv.is_null() && pv.is_null()) continue;
      if (tv.is_null() || pv.is_null()) {
        group_err += 1.0;
        continue;
      }
      group_err += ScalarRelativeError(tv.ToNumeric(), pv.ToNumeric());
    }
    total += group_err / static_cast<double>(num_aggs);
  }
  return total / static_cast<double>(truth.num_rows());
}

}  // namespace metric
}  // namespace asqp
