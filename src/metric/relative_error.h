// Relative error for aggregate queries (Equation 2 of the paper), used by
// the Section 6.4 AQP comparison. For GROUP BY queries the error is
// computed per group and averaged; a group missing from the prediction
// contributes error 1 (complete mismatch).
#pragma once

#include "exec/result_set.h"
#include "util/status.h"

namespace asqp {
namespace metric {

/// Compare `predicted` against `truth`. Both results must have the same
/// column layout: zero or more group-key columns followed by numeric
/// aggregate columns. `num_group_cols` identifies the key prefix.
[[nodiscard]] util::Result<double> RelativeError(const exec::ResultSet& truth,
                                   const exec::ResultSet& predicted,
                                   size_t num_group_cols);

/// Scalar relative error |pred - truth| / |truth| (1.0 when truth is 0 and
/// pred differs, 0.0 when both are 0; capped at 1).
double ScalarRelativeError(double truth, double pred);

}  // namespace metric
}  // namespace asqp
