#include "metric/score.h"

#include <algorithm>

#include "sql/binder.h"

namespace asqp {
namespace metric {

util::Result<size_t> ScoreEvaluator::FullResultSize(
    const sql::SelectStatement& stmt) {
  const std::string key = stmt.ToSql();
  auto it = full_size_cache_.find(key);
  if (it != full_size_cache_.end()) return it->second;

  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *db_));
  storage::DatabaseView full_view(db_);
  ASQP_ASSIGN_OR_RETURN(exec::ResultSet rs, engine_.Execute(bound, full_view));
  const size_t size = rs.num_rows();
  full_size_cache_.emplace(key, size);
  return size;
}

util::Result<double> ScoreEvaluator::QueryScore(
    const sql::SelectStatement& stmt,
    const storage::ApproximationSet& subset) {
  ASQP_ASSIGN_OR_RETURN(size_t full_size, FullResultSize(stmt));
  if (full_size == 0) return 1.0;

  ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *db_));
  storage::DatabaseView sub_view(db_, &subset);
  ASQP_ASSIGN_OR_RETURN(exec::ResultSet rs, engine_.Execute(bound, sub_view));

  const double denom = static_cast<double>(
      std::min<size_t>(static_cast<size_t>(options_.frame_size), full_size));
  return std::min(1.0, static_cast<double>(rs.num_rows()) / denom);
}

util::Result<double> ScoreEvaluator::Score(
    const Workload& workload, const storage::ApproximationSet& subset) {
  if (workload.empty()) return 0.0;
  double total = 0.0;
  size_t failures = 0;
  util::Status last_error;
  for (const WeightedQuery& q : workload.queries()) {
    auto score = QueryScore(q.stmt, subset);
    if (!score.ok()) {
      ++failures;
      last_error = score.status();
      continue;
    }
    total += q.weight * score.value();
  }
  if (failures == workload.size()) return last_error;
  return total;
}

}  // namespace metric
}  // namespace asqp
