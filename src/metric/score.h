// The ANAQP quality metric (Equation 1 of the paper):
//
//   score(S) = sum_q  w(q) * min(1, |q(S)| / min(F, |q(T)|))
//
// with weights normalized to sum to 1. (The paper's formula carries an
// additional 1/|Q| factor *and* normalized weights; the two together would
// bound the score by 1/|Q|, which contradicts the reported magnitudes, so
// we treat the 1/|Q| as already absorbed into uniform weights.)
//
// Full-database result sizes |q(T)| are expensive, so the evaluator caches
// them per query text.
#pragma once

#include <string>
#include <unordered_map>

#include "exec/executor.h"
#include "metric/workload.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace metric {

struct ScoreOptions {
  /// Frame size F: the number of result tuples a user can cognitively
  /// process (paper default 50).
  int frame_size = 50;
};

class ScoreEvaluator {
 public:
  ScoreEvaluator(const storage::Database* db, ScoreOptions options = {})
      : db_(db), options_(options) {}

  /// Eq. 1 over the whole workload. Queries that fail to execute
  /// contribute 0 (and the failure is surfaced if every query fails).
  [[nodiscard]] util::Result<double> Score(const Workload& workload,
                             const storage::ApproximationSet& subset);

  /// Coverage of one query: min(1, |q(S)| / min(F, |q(T)|)). Returns 1
  /// when the full result is empty (nothing to cover).
  [[nodiscard]] util::Result<double> QueryScore(const sql::SelectStatement& stmt,
                                  const storage::ApproximationSet& subset);

  /// |q(T)| with caching.
  [[nodiscard]] util::Result<size_t> FullResultSize(const sql::SelectStatement& stmt);

  const ScoreOptions& options() const { return options_; }

 private:
  const storage::Database* db_;
  ScoreOptions options_;
  exec::QueryEngine engine_;
  std::unordered_map<std::string, size_t> full_size_cache_;
};

}  // namespace metric
}  // namespace asqp
