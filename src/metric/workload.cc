#include "metric/workload.h"

#include <algorithm>
#include <cmath>

#include "sql/parser.h"

namespace asqp {
namespace metric {

util::Result<Workload> Workload::FromSql(const std::vector<std::string>& sqls) {
  Workload w;
  for (const std::string& sql : sqls) {
    ASQP_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
    w.Add(std::move(stmt));
  }
  w.NormalizeWeights();
  return w;
}

void Workload::NormalizeWeights() {
  double total = 0.0;
  for (const WeightedQuery& q : queries_) total += std::max(0.0, q.weight);
  if (total <= 0.0) {
    const double uniform = queries_.empty() ? 0.0 : 1.0 / queries_.size();
    for (WeightedQuery& q : queries_) q.weight = uniform;
    return;
  }
  for (WeightedQuery& q : queries_) q.weight = std::max(0.0, q.weight) / total;
}

std::pair<Workload, Workload> Workload::TrainTestSplit(double train_fraction,
                                                       util::Rng* rng) const {
  std::vector<size_t> order(queries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  size_t train_count = static_cast<size_t>(
      std::ceil(train_fraction * static_cast<double>(queries_.size())));
  train_count = std::min(train_count, queries_.size());
  if (!queries_.empty() && train_count == 0) train_count = 1;

  Workload train, test;
  for (size_t i = 0; i < order.size(); ++i) {
    const WeightedQuery& q = queries_[order[i]];
    if (i < train_count) {
      train.Add(q.stmt.Clone(), q.weight);
    } else {
      test.Add(q.stmt.Clone(), q.weight);
    }
  }
  train.NormalizeWeights();
  test.NormalizeWeights();
  return {std::move(train), std::move(test)};
}

Workload Workload::Truncate(size_t count) const {
  Workload out;
  const size_t keep = std::min(count, queries_.size());
  for (size_t i = 0; i < keep; ++i) {
    out.Add(queries_[i].stmt.Clone(), queries_[i].weight);
  }
  out.NormalizeWeights();
  return out;
}

sql::SelectStatement StripAggregates(const sql::SelectStatement& stmt) {
  sql::SelectStatement out = stmt.Clone();
  if (!out.HasAggregates()) return out;

  std::vector<sql::SelectItem> items;
  for (sql::SelectItem& item : out.items) {
    if (item.agg == sql::AggFunc::kNone) {
      items.push_back(std::move(item));
      continue;
    }
    // COUNT(*) has no inner column; skip it. agg(col) keeps the bare col.
    if (item.expr != nullptr) {
      sql::SelectItem bare;
      bare.expr = std::move(item.expr);
      items.push_back(std::move(bare));
    }
  }
  // Grouped columns stay observable in the SPJ skeleton.
  for (sql::ExprPtr& g : out.group_by) {
    sql::SelectItem bare;
    bare.expr = std::move(g);
    items.push_back(std::move(bare));
  }
  out.group_by.clear();
  if (items.empty()) {
    sql::SelectItem star;
    star.star = true;
    items.push_back(std::move(star));
  }
  out.items = std::move(items);
  out.order_by.clear();
  out.having = nullptr;  // HAVING is meaningless without groups
  return out;
}

Workload Workload::ToSpjWorkload() const {
  Workload out;
  for (const WeightedQuery& q : queries_) {
    out.Add(StripAggregates(q.stmt), q.weight);
  }
  out.NormalizeWeights();
  return out;
}

}  // namespace metric
}  // namespace asqp
