// Query workloads: the Q and w of the ANAQP problem definition.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/status.h"

namespace asqp {
namespace metric {

/// \brief One workload entry: a parsed statement plus its weight w(q).
struct WeightedQuery {
  sql::SelectStatement stmt;
  double weight = 1.0;

  std::string ToSql() const { return stmt.ToSql(); }
};

/// \brief A query workload with normalized weights (sum w(q) = 1).
class Workload {
 public:
  Workload() = default;

  /// Parse a list of SQL strings into a uniform-weight workload.
  [[nodiscard]] static util::Result<Workload> FromSql(const std::vector<std::string>& sqls);

  void Add(sql::SelectStatement stmt, double weight = 1.0) {
    queries_.push_back(WeightedQuery{std::move(stmt), weight});
  }

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const WeightedQuery& query(size_t i) const { return queries_[i]; }
  WeightedQuery& mutable_query(size_t i) { return queries_[i]; }
  const std::vector<WeightedQuery>& queries() const { return queries_; }

  /// Rescale weights so they sum to 1 (uniform if all weights are zero).
  void NormalizeWeights();

  /// Random train/test split; `train_fraction` of queries (rounded up, at
  /// least 1 when non-empty) land in the train side. Weights are
  /// re-normalized within each side.
  std::pair<Workload, Workload> TrainTestSplit(double train_fraction,
                                               util::Rng* rng) const;

  /// Keep only the first `count` queries (used by ASQP-Light and the
  /// training-set-size ablation); weights are re-normalized.
  Workload Truncate(size_t count) const;

  /// Rewrite every aggregate query into its SPJ skeleton: aggregates and
  /// GROUP BY are dropped and the bare grouped/aggregated columns are
  /// selected instead (the paper's Section 3 transformation).
  Workload ToSpjWorkload() const;

 private:
  std::vector<WeightedQuery> queries_;
};

/// Strip aggregates/GROUP BY from one statement (see Workload::ToSpjWorkload).
sql::SelectStatement StripAggregates(const sql::SelectStatement& stmt);

}  // namespace metric
}  // namespace asqp
