#include "nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/fault_injector.h"

namespace asqp {
namespace nn {

Linear::Linear(size_t in_dim, size_t out_dim, util::Rng* rng)
    : in(in_dim), out(out_dim) {
  w.resize(in * out);
  b.assign(out, 0.0f);
  dw.assign(in * out, 0.0f);
  db.assign(out, 0.0f);
  // Xavier/Glorot initialization.
  const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
  for (float& weight : w) {
    weight = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
}

void Linear::Forward(const std::vector<float>& x, std::vector<float>* y) const {
  assert(x.size() == in);
  y->assign(out, 0.0f);
  for (size_t o = 0; o < out; ++o) {
    const float* row = &w[o * in];
    float sum = b[o];
    for (size_t i = 0; i < in; ++i) sum += row[i] * x[i];
    (*y)[o] = sum;
  }
}

void Linear::Backward(const std::vector<float>& x, const std::vector<float>& dy,
                      std::vector<float>* dx) {
  assert(x.size() == in && dy.size() == out);
  dx->assign(in, 0.0f);
  for (size_t o = 0; o < out; ++o) {
    const float g = dy[o];
    if (g == 0.0f) continue;
    float* drow = &dw[o * in];
    const float* row = &w[o * in];
    db[o] += g;
    for (size_t i = 0; i < in; ++i) {
      drow[i] += g * x[i];
      (*dx)[i] += g * row[i];
    }
  }
}

void Linear::BackwardInputOnly(const std::vector<float>& dy,
                               std::vector<float>* dx) const {
  dx->assign(in, 0.0f);
  for (size_t o = 0; o < out; ++o) {
    const float g = dy[o];
    if (g == 0.0f) continue;
    const float* row = &w[o * in];
    for (size_t i = 0; i < in; ++i) (*dx)[i] += g * row[i];
  }
}

void Linear::ZeroGrad() {
  std::fill(dw.begin(), dw.end(), 0.0f);
  std::fill(db.begin(), db.end(), 0.0f);
}

Mlp::Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
         uint64_t seed)
    : activation_(hidden_activation) {
  assert(dims.size() >= 2);
  util::Rng rng(seed);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    layers_.emplace_back(dims[l], dims[l + 1], &rng);
  }
}

namespace {

float Activate(float v, Activation a) {
  switch (a) {
    case Activation::kTanh: return std::tanh(v);
    case Activation::kRelu: return v > 0.0f ? v : 0.0f;
    case Activation::kNone: return v;
  }
  return v;
}

float ActivateGrad(float pre, float post, Activation a) {
  switch (a) {
    case Activation::kTanh: return 1.0f - post * post;
    case Activation::kRelu: return pre > 0.0f ? 1.0f : 0.0f;
    case Activation::kNone: return 1.0f;
  }
  return 1.0f;
}

}  // namespace

std::vector<float> Mlp::Forward(const std::vector<float>& x,
                                Cache* cache) const {
  cache->pre.resize(layers_.size());
  cache->post.resize(layers_.size() + 1);
  cache->post[0] = x;
  std::vector<float> cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(cur, &cache->pre[l]);
    cur = cache->pre[l];
    if (l + 1 < layers_.size()) {  // hidden layer: apply activation
      for (float& v : cur) v = Activate(v, activation_);
    }
    cache->post[l + 1] = cur;
  }
  return cur;
}

std::vector<float> Mlp::Forward(const std::vector<float>& x) const {
  Cache cache;
  return Forward(x, &cache);
}

void Mlp::Backward(const Cache& cache, const std::vector<float>& dout) {
  std::vector<float> grad = dout;
  for (size_t l = layers_.size(); l-- > 0;) {
    if (l + 1 < layers_.size()) {
      // Undo the activation applied after layer l.
      for (size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= ActivateGrad(cache.pre[l][i], cache.post[l + 1][i],
                                activation_);
      }
    }
    std::vector<float> dx;
    layers_[l].Backward(cache.post[l], grad, &dx);
    grad = std::move(dx);
  }
}

std::vector<float> Mlp::BackwardInput(const Cache& cache,
                                      const std::vector<float>& dout) const {
  std::vector<float> grad = dout;
  for (size_t l = layers_.size(); l-- > 0;) {
    if (l + 1 < layers_.size()) {
      for (size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= ActivateGrad(cache.pre[l][i], cache.post[l + 1][i],
                                activation_);
      }
    }
    std::vector<float> dx;
    layers_[l].BackwardInputOnly(grad, &dx);
    grad = std::move(dx);
  }
  return grad;
}

void Mlp::ZeroGrad() {
  for (Linear& l : layers_) l.ZeroGrad();
}

std::vector<float*> Mlp::Parameters() {
  std::vector<float*> out;
  for (Linear& l : layers_) {
    out.push_back(l.w.data());
    out.push_back(l.b.data());
  }
  return out;
}

std::vector<float*> Mlp::Gradients() {
  std::vector<float*> out;
  for (Linear& l : layers_) {
    out.push_back(l.dw.data());
    out.push_back(l.db.data());
  }
  return out;
}

std::vector<size_t> Mlp::BlockLengths() const {
  std::vector<size_t> out;
  for (const Linear& l : layers_) {
    out.push_back(l.w.size());
    out.push_back(l.b.size());
  }
  return out;
}

size_t Mlp::num_parameters() const {
  size_t n = 0;
  for (const Linear& l : layers_) n += l.w.size() + l.b.size();
  return n;
}

void Mlp::CopyWeightsFrom(const Mlp& other) {
  assert(layers_.size() == other.layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].w = other.layers_[l].w;
    layers_[l].b = other.layers_[l].b;
  }
}

namespace {

bool AnyNonFinite(const std::vector<float>& values) {
  for (float v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

bool Mlp::HasNonFiniteParameters() const {
  for (const Linear& l : layers_) {
    if (AnyNonFinite(l.w) || AnyNonFinite(l.b)) return true;
  }
  return false;
}

bool Mlp::HasNonFiniteGradients() const {
  for (const Linear& l : layers_) {
    if (AnyNonFinite(l.dw) || AnyNonFinite(l.db)) return true;
  }
  return false;
}

Adam::Adam(Mlp* net, Options options) : net_(net), options_(options) {
  const size_t n = net->num_parameters();
  m_.assign(n, 0.0f);
  v_.assign(n, 0.0f);
}

void Adam::Step() {
  ++t_;
  std::vector<float*> params = net_->Parameters();
  std::vector<float*> grads = net_->Gradients();
  const std::vector<size_t> lengths = net_->BlockLengths();

  if (ASQP_FAULT_POINT("nn.adam.nan_grad")) {
    grads[0][0] = std::numeric_limits<float>::quiet_NaN();
  }

  double norm_sq = 0.0;
  for (size_t blk = 0; blk < grads.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      norm_sq += static_cast<double>(grads[blk][i]) * grads[blk][i];
    }
  }
  float scale = 1.0f;
  if (options_.max_grad_norm > 0.0) {
    const double norm = std::sqrt(norm_sq);
    if (norm > options_.max_grad_norm) {
      scale = static_cast<float>(options_.max_grad_norm / (norm + 1e-12));
    }
  }

  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  size_t offset = 0;
  for (size_t blk = 0; blk < grads.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; ++i) {
      const float g = grads[blk][i] * scale;
      float& m = m_[offset + i];
      float& v = v_[offset + i];
      m = static_cast<float>(options_.beta1 * m + (1.0 - options_.beta1) * g);
      v = static_cast<float>(options_.beta2 * v +
                             (1.0 - options_.beta2) * g * g);
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      params[blk][i] -= static_cast<float>(options_.lr * mhat /
                                           (std::sqrt(vhat) + options_.eps));
      grads[blk][i] = 0.0f;
    }
    offset += lengths[blk];
  }
}

std::vector<float> MaskedSoftmax(const std::vector<float>& logits,
                                 const std::vector<uint8_t>& mask) {
  std::vector<float> probs(logits.size(), 0.0f);
  float max_logit = -std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < logits.size(); ++i) {
    if (mask[i] && logits[i] > max_logit) max_logit = logits[i];
  }
  if (max_logit == -std::numeric_limits<float>::infinity()) return probs;
  double total = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    if (!mask[i]) continue;
    probs[i] = std::exp(logits[i] - max_logit);
    total += probs[i];
  }
  if (total <= 0.0) return probs;
  for (float& p : probs) p = static_cast<float>(p / total);
  return probs;
}

float Entropy(const std::vector<float>& probs) {
  float h = 0.0f;
  for (float p : probs) {
    if (p > 1e-12f) h -= p * std::log(p);
  }
  return h;
}

size_t SampleCategorical(const std::vector<float>& probs, util::Rng* rng) {
  double u = rng->UniformDouble();
  for (size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  // Numeric slack: return the last non-zero entry.
  for (size_t i = probs.size(); i-- > 0;) {
    if (probs[i] > 0.0f) return i;
  }
  return 0;
}

}  // namespace nn
}  // namespace asqp
