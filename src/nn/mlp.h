// Minimal neural-network substrate: dense layers with manual
// backpropagation, tanh activations, and an Adam optimizer. This replaces
// the paper's PyTorch dependency (see DESIGN.md): at the scale of the
// ASQP-RL policy/value networks (an input layer matching the action space
// followed by two small fully-connected layers) a hand-rolled MLP is
// faster than framework dispatch on CPU, and keeps the repository
// self-contained.
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace asqp {
namespace nn {

/// \brief One dense layer y = W x + b with gradient accumulators.
struct Linear {
  size_t in = 0;
  size_t out = 0;
  std::vector<float> w;   // row-major [out][in]
  std::vector<float> b;   // [out]
  std::vector<float> dw;  // gradient accumulators
  std::vector<float> db;

  Linear(size_t in_dim, size_t out_dim, util::Rng* rng);

  void Forward(const std::vector<float>& x, std::vector<float>* y) const;

  /// Given dL/dy, accumulate dW/db and compute dL/dx.
  void Backward(const std::vector<float>& x, const std::vector<float>& dy,
                std::vector<float>* dx);

  /// dL/dx only (dx = W^T dy); parameter gradients untouched.
  void BackwardInputOnly(const std::vector<float>& dy,
                         std::vector<float>* dx) const;

  void ZeroGrad();
};

enum class Activation { kTanh, kRelu, kNone };

/// \brief Multi-layer perceptron with a shared hidden activation and a
/// linear output layer.
class Mlp {
 public:
  /// dims = {input, hidden..., output}.
  Mlp(const std::vector<size_t>& dims, Activation hidden_activation,
      uint64_t seed);

  size_t input_dim() const { return layers_.front().in; }
  size_t output_dim() const { return layers_.back().out; }

  /// The {input, hidden..., output} dimension list this net was built with.
  std::vector<size_t> Dims() const {
    std::vector<size_t> dims;
    dims.push_back(layers_.front().in);
    for (const Linear& l : layers_) dims.push_back(l.out);
    return dims;
  }
  Activation activation() const { return activation_; }

  /// Forward pass; `cache` stores activations needed by Backward.
  struct Cache {
    std::vector<std::vector<float>> pre;   // pre-activation per layer
    std::vector<std::vector<float>> post;  // post-activation (post[0] = input)
  };
  std::vector<float> Forward(const std::vector<float>& x, Cache* cache) const;

  /// Inference-only forward (no cache).
  std::vector<float> Forward(const std::vector<float>& x) const;

  /// Backprop dL/d(output) through the cached forward pass, accumulating
  /// parameter gradients.
  void Backward(const Cache& cache, const std::vector<float>& dout);

  /// dL/d(input) for a cached forward pass, *without* accumulating
  /// parameter gradients (used when a downstream network's loss must flow
  /// into an upstream network, e.g. VAE decoder -> encoder).
  std::vector<float> BackwardInput(const Cache& cache,
                                   const std::vector<float>& dout) const;

  void ZeroGrad();

  /// Flat views over parameters and their gradients (for the optimizer and
  /// for copying weights to rollout workers). Blocks come in (weights,
  /// bias) pairs per layer; BlockLengths() gives each block's length.
  std::vector<float*> Parameters();
  std::vector<float*> Gradients();
  std::vector<size_t> BlockLengths() const;
  size_t num_parameters() const;

  /// Copy all weights from another identically-shaped MLP.
  void CopyWeightsFrom(const Mlp& other);

  /// True when any weight or bias is NaN/Inf (divergence detection).
  bool HasNonFiniteParameters() const;

  /// True when any accumulated gradient is NaN/Inf.
  bool HasNonFiniteGradients() const;

 private:
  std::vector<Linear> layers_;
  Activation activation_;
};

/// \brief Adam optimizer over a set of parameter blocks.
class Adam {
 public:
  struct Options {
    double lr = 3e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /// Global gradient-norm clip (0 disables).
    double max_grad_norm = 1.0;
  };

  Adam(Mlp* net, Options options);

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

  /// Apply one update from the net's accumulated gradients, then zero them.
  void Step();

  /// First/second-moment accumulators plus the step counter — everything
  /// beyond Options needed to resume optimization deterministically.
  struct State {
    std::vector<float> m;
    std::vector<float> v;
    int64_t t = 0;
  };
  State GetState() const { return {m_, v_, t_}; }
  /// Restore a snapshot taken from an identically-shaped optimizer.
  /// Returns false (and changes nothing) on a size mismatch.
  bool SetState(const State& state) {
    if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
      return false;
    }
    m_ = state.m;
    v_ = state.v;
    t_ = state.t;
    return true;
  }

 private:
  Mlp* net_;
  Options options_;
  std::vector<float> m_;
  std::vector<float> v_;
  int64_t t_ = 0;
};

/// Masked softmax: entries with mask[i] == 0 get probability 0. If every
/// entry is masked the result is all zeros.
std::vector<float> MaskedSoftmax(const std::vector<float>& logits,
                                 const std::vector<uint8_t>& mask);

/// Entropy of a probability vector (natural log).
float Entropy(const std::vector<float>& probs);

/// Sample an index from a probability vector.
size_t SampleCategorical(const std::vector<float>& probs, util::Rng* rng);

}  // namespace nn
}  // namespace asqp
