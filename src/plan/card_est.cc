#include "plan/card_est.h"

#include <algorithm>

namespace asqp {
namespace plan {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using storage::Value;

double Clamp01(double s) { return std::min(1.0, std::max(0.0, s)); }

/// Mirror a comparison across its operands: `lit op col` == `col op' lit`.
BinOp Mirror(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

}  // namespace

CardinalityEstimator::CardinalityEstimator(const StatsCatalog* catalog,
                                           const sql::BoundQuery* query)
    : catalog_(catalog), q_(query) {}

const ColumnStatistics* CardinalityEstimator::Column(int table, int col) const {
  if (catalog_ == nullptr || table < 0 ||
      static_cast<size_t>(table) >= q_->num_tables()) {
    return nullptr;
  }
  return catalog_->FindColumn(q_->tables[table]->name(), col);
}

double CardinalityEstimator::TableRows(int table) const {
  if (table < 0 || static_cast<size_t>(table) >= q_->num_tables()) return 1.0;
  if (catalog_ != nullptr) {
    const TableStatistics* ts = catalog_->FindTable(q_->tables[table]->name());
    if (ts != nullptr) return static_cast<double>(ts->row_count);
  }
  return static_cast<double>(q_->tables[table]->num_rows());
}

double CardinalityEstimator::ComparisonSelectivity(BinOp op,
                                                   const Expr& col_ref,
                                                   const Value& literal,
                                                   int table) const {
  // A comparison against NULL never passes WHERE.
  if (literal.is_null()) return 0.0;
  const ColumnStatistics* cs = Column(table, col_ref.col_idx);
  const double notnull = cs != nullptr ? 1.0 - cs->null_fraction : 1.0;
  switch (op) {
    case BinOp::kEq:
      if (cs != nullptr && cs->ndv > 0) {
        return Clamp01(notnull / static_cast<double>(cs->ndv));
      }
      return CardDefaults::kEquality;
    case BinOp::kNe:
      if (cs != nullptr && cs->ndv > 0) {
        return Clamp01(notnull * (1.0 - 1.0 / static_cast<double>(cs->ndv)));
      }
      return 1.0 - CardDefaults::kEquality;
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (cs == nullptr || !cs->has_range || !literal.is_numeric()) {
        return CardDefaults::kRange;
      }
      const double v = literal.ToNumeric();
      if (cs->max > cs->min) {
        const double below = Clamp01((v - cs->min) / (cs->max - cs->min));
        const bool less = op == BinOp::kLt || op == BinOp::kLe;
        return Clamp01(notnull * (less ? below : 1.0 - below));
      }
      // Degenerate single-valued range: compare the one value exactly.
      bool pass = false;
      switch (op) {
        case BinOp::kLt: pass = cs->min < v; break;
        case BinOp::kLe: pass = cs->min <= v; break;
        case BinOp::kGt: pass = cs->min > v; break;
        default: pass = cs->min >= v; break;
      }
      return pass ? Clamp01(notnull) : 0.0;
    }
    default:
      return CardDefaults::kRange;
  }
}

double CardinalityEstimator::Selectivity(const Expr& pred, int table) const {
  switch (pred.kind) {
    case ExprKind::kBinary: {
      switch (pred.op) {
        case BinOp::kAnd:
          return Clamp01(Selectivity(*pred.left, table) *
                         Selectivity(*pred.right, table));
        case BinOp::kOr: {
          const double a = Selectivity(*pred.left, table);
          const double b = Selectivity(*pred.right, table);
          return Clamp01(a + b - a * b);
        }
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          if (pred.left->kind == ExprKind::kColumnRef &&
              pred.right->kind == ExprKind::kLiteral) {
            return ComparisonSelectivity(pred.op, *pred.left,
                                         pred.right->literal, table);
          }
          if (pred.right->kind == ExprKind::kColumnRef &&
              pred.left->kind == ExprKind::kLiteral) {
            return ComparisonSelectivity(Mirror(pred.op), *pred.right,
                                         pred.left->literal, table);
          }
          // Column-vs-column or computed operand: fixed defaults.
          return pred.op == BinOp::kEq ? CardDefaults::kEquality
                                       : CardDefaults::kRange;
        }
        default:
          // Arithmetic in boolean position (nonzero = true).
          return CardDefaults::kRange;
      }
    }
    case ExprKind::kNot:
      return Clamp01(1.0 - Selectivity(*pred.left, table));
    case ExprKind::kIn: {
      double inside = CardDefaults::kEquality *
                      static_cast<double>(pred.in_list.size());
      if (pred.left->kind == ExprKind::kColumnRef) {
        const ColumnStatistics* cs = Column(table, pred.left->col_idx);
        if (cs != nullptr && cs->ndv > 0) {
          size_t non_null = 0;
          for (const Value& v : pred.in_list) {
            if (!v.is_null()) ++non_null;
          }
          inside = (1.0 - cs->null_fraction) * static_cast<double>(non_null) /
                   static_cast<double>(cs->ndv);
        }
      }
      inside = Clamp01(inside);
      return pred.negated ? Clamp01(1.0 - inside) : inside;
    }
    case ExprKind::kBetween: {
      if (pred.between_lo.is_null() || pred.between_hi.is_null()) {
        return 0.0;  // BETWEEN with a NULL bound never passes
      }
      double inside = CardDefaults::kRange;
      if (pred.left->kind == ExprKind::kColumnRef) {
        const ColumnStatistics* cs = Column(table, pred.left->col_idx);
        if (cs != nullptr && cs->has_range && pred.between_lo.is_numeric() &&
            pred.between_hi.is_numeric()) {
          const double lo = std::max(pred.between_lo.ToNumeric(), cs->min);
          const double hi = std::min(pred.between_hi.ToNumeric(), cs->max);
          if (hi < lo) {
            inside = 0.0;
          } else if (cs->max > cs->min) {
            inside = Clamp01((1.0 - cs->null_fraction) * (hi - lo) /
                             (cs->max - cs->min));
          } else {
            inside = Clamp01(1.0 - cs->null_fraction);
          }
        }
      }
      return pred.negated ? Clamp01(1.0 - inside) : inside;
    }
    case ExprKind::kLike:
      return pred.negated ? 1.0 - CardDefaults::kLike : CardDefaults::kLike;
    case ExprKind::kIsNull: {
      double nf = 0.1;
      if (pred.left->kind == ExprKind::kColumnRef) {
        const ColumnStatistics* cs = Column(table, pred.left->col_idx);
        if (cs != nullptr) nf = cs->null_fraction;
      }
      return Clamp01(pred.negated ? 1.0 - nf : nf);
    }
    case ExprKind::kLiteral:
      return (!pred.literal.is_null() && pred.literal.ToNumeric() != 0.0)
                 ? 1.0
                 : 0.0;
    case ExprKind::kColumnRef:
      return 0.5;
  }
  return CardDefaults::kRange;
}

double CardinalityEstimator::EstimateFilteredRows(
    int table, const std::vector<sql::ExprPtr>& filters) const {
  double sel = 1.0;
  for (const sql::ExprPtr& f : filters) {
    sel *= Selectivity(*f, table);
  }
  return TableRows(table) * Clamp01(sel);
}

double CardinalityEstimator::JoinSelectivity(
    const sql::JoinPredicate& jp) const {
  const ColumnStatistics* l = Column(jp.left_table, jp.left_col);
  const ColumnStatistics* r = Column(jp.right_table, jp.right_col);
  const size_t ndv =
      std::max(l != nullptr ? l->ndv : 0, r != nullptr ? r->ndv : 0);
  if (ndv > 0) return 1.0 / static_cast<double>(ndv);
  const double rows =
      std::max({TableRows(jp.left_table), TableRows(jp.right_table), 1.0});
  return 1.0 / rows;
}

}  // namespace plan
}  // namespace asqp
