// Cardinality estimation over bound predicates (textbook System-R style):
//   equality        (1 - null_fraction) / NDV
//   range           linear interpolation against the column's [min, max]
//   IN (v1..vn)     n / NDV (capped at 1)
//   BETWEEN         (hi - lo) / (max - min)
//   IS [NOT] NULL   null_fraction / 1 - null_fraction
//   AND             product of operand selectivities (independence)
//   OR              s1 + s2 - s1*s2
//   NOT             1 - s
//   equi-join       1 / max(NDV_left, NDV_right)
// Columns without statistics fall back to fixed defaults. Estimates only
// steer plan choice (join order); execution correctness never depends on
// them.
#pragma once

#include <vector>

#include "plan/stats.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace asqp {
namespace plan {

/// Fallback selectivities when column statistics are unavailable.
struct CardDefaults {
  static constexpr double kEquality = 0.1;
  static constexpr double kRange = 1.0 / 3.0;
  static constexpr double kLike = 0.25;
};

class CardinalityEstimator {
 public:
  /// `catalog` may be null (defaults-only estimation); `query` must
  /// outlive the estimator.
  CardinalityEstimator(const StatsCatalog* catalog,
                       const sql::BoundQuery* query);

  /// Base row count of FROM entry `table` (from statistics, falling back
  /// to the in-memory table size).
  double TableRows(int table) const;

  /// Selectivity in [0, 1] of one predicate whose column refs all resolve
  /// to FROM entry `table`.
  double Selectivity(const sql::Expr& pred, int table) const;

  /// Estimated rows of FROM entry `table` after applying `filters`
  /// (conjunction under the independence assumption).
  double EstimateFilteredRows(int table,
                              const std::vector<sql::ExprPtr>& filters) const;

  /// Selectivity of an equi-join predicate: 1/max(ndv, ndv), falling back
  /// to 1/max(row counts) when neither side has an NDV.
  double JoinSelectivity(const sql::JoinPredicate& jp) const;

  bool has_stats() const { return catalog_ != nullptr; }

 private:
  const ColumnStatistics* Column(int table, int col) const;
  /// Selectivity of `col op literal` for a comparison operator.
  double ComparisonSelectivity(sql::BinOp op, const sql::Expr& col_ref,
                               const storage::Value& literal, int table) const;

  const StatsCatalog* catalog_;
  const sql::BoundQuery* q_;
};

}  // namespace plan
}  // namespace asqp
