#include "plan/plan_reuse.h"

namespace asqp {
namespace plan {

std::shared_ptr<const sql::BoundQuery> PlanReuseCache::Lookup(
    const std::string& canonical, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) {
    // A generation bump means new statistics/indexes: every cached plan
    // may now differ from what the planner would produce. Flush and
    // restamp. (Older-generation lookups — a reader that snapshotted the
    // model before a racing FineTune — miss rather than repopulate.)
    if (generation > generation_) {
      if (!plans_.empty()) ++invalidations_;
      plans_.clear();
      generation_ = generation;
    }
    ++misses_;
    return nullptr;
  }
  auto it = plans_.find(canonical);
  if (it == plans_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void PlanReuseCache::Insert(const std::string& canonical, uint64_t generation,
                            std::shared_ptr<const sql::BoundQuery> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation < generation_) return;
  if (generation > generation_) {
    if (!plans_.empty()) ++invalidations_;
    plans_.clear();
    generation_ = generation;
  }
  if (plans_.size() >= max_entries_ && plans_.count(canonical) == 0) {
    // Full: keep the newest window rather than pinning the oldest plans.
    ++invalidations_;
    plans_.clear();
  }
  plans_[canonical] = std::move(plan);
}

void PlanReuseCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!plans_.empty()) ++invalidations_;
  plans_.clear();
}

PlanReuseCache::Stats PlanReuseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.invalidations = invalidations_;
  s.entries = plans_.size();
  return s;
}

}  // namespace plan
}  // namespace asqp
