// Batch-aware plan reuse for the serving layer's multi-query tier.
//
// Planning is deterministic over (bound query, statistics, index catalog),
// and two statements with the same canonical fingerprint text bind to the
// same query structure — the same soundness argument that lets the answer
// cache return cached result bytes lets this cache return a cached *plan*.
// Entries are stamped with the model's approximation-set generation:
// FineTune rebuilds statistics and indexes, so a generation mismatch
// flushes the cache (lazily on the next lookup, eagerly via Clear()).
//
// The cache stores shared_ptr<const BoundQuery> so a batch executing a
// reused plan keeps it alive even if a concurrent lookup flushes the map.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sql/binder.h"
#include "util/annotations.h"

namespace asqp {
namespace plan {

class PlanReuseCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Whole-cache flushes from a generation bump (FineTune) or from the
    /// entry cap (the map never grows past max_entries).
    uint64_t invalidations = 0;
    size_t entries = 0;
  };

  /// `max_entries` bounds the map; inserting into a full cache flushes it
  /// (exploratory sessions churn fingerprints, so keeping the newest
  /// window beats pinning the oldest).
  explicit PlanReuseCache(size_t max_entries = 256)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  PlanReuseCache(const PlanReuseCache&) = delete;
  PlanReuseCache& operator=(const PlanReuseCache&) = delete;

  /// The cached plan for `canonical` at `generation`, or null. A lookup at
  /// a newer generation than the cache's flushes every stale entry first.
  std::shared_ptr<const sql::BoundQuery> Lookup(const std::string& canonical,
                                                uint64_t generation);

  /// Cache `plan` for `canonical` at `generation`. Ignored when the
  /// cache has moved past `generation` (a racing FineTune's plans win).
  void Insert(const std::string& canonical, uint64_t generation,
              std::shared_ptr<const sql::BoundQuery> plan);

  void Clear();

  Stats stats() const;

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  uint64_t generation_ ASQP_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, std::shared_ptr<const sql::BoundQuery>>
      plans_ ASQP_GUARDED_BY(mu_);
  uint64_t hits_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t misses_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ ASQP_GUARDED_BY(mu_) = 0;
};

}  // namespace plan
}  // namespace asqp
