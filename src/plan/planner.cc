#include "plan/planner.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "plan/card_est.h"
#include "sql/canonicalize.h"
#include "storage/index.h"
#include "util/string_util.h"

namespace asqp {
namespace plan {

namespace {

using sql::BinOp;
using sql::BoundQuery;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::JoinPredicate;
using storage::Value;
using storage::ValueType;

bool IsArithmetic(BinOp op) {
  return op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
         op == BinOp::kDiv;
}

bool Truthy(const Value& v) { return !v.is_null() && v.ToNumeric() != 0.0; }

/// Fold `lit op lit` exactly as exec::EvaluateScalar / EvaluatePredicate
/// would compute it in WHERE position (NULL or non-numeric arithmetic
/// operand -> NULL; division by zero -> NULL; INT64 op INT64 stays INT64
/// except division; comparisons with a NULL operand are false, i.e. 0).
Value FoldBinaryLiteral(BinOp op, const Value& l, const Value& r) {
  if (IsArithmetic(op)) {
    if (l.is_null() || r.is_null() || !l.is_numeric() || !r.is_numeric()) {
      return Value::Null();
    }
    const double a = l.ToNumeric();
    const double b = r.ToNumeric();
    double out = 0.0;
    switch (op) {
      case BinOp::kAdd: out = a + b; break;
      case BinOp::kSub: out = a - b; break;
      case BinOp::kMul: out = a * b; break;
      case BinOp::kDiv:
        if (b == 0.0) return Value::Null();
        out = a / b;
        break;
      default: break;
    }
    if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64 &&
        op != BinOp::kDiv) {
      return Value(static_cast<int64_t>(out));
    }
    return Value(out);
  }
  // Comparison: NULL operand -> false (0).
  if (l.is_null() || r.is_null()) return Value(int64_t{0});
  const int cmp = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinOp::kEq: result = cmp == 0; break;
    case BinOp::kNe: result = cmp != 0; break;
    case BinOp::kLt: result = cmp < 0; break;
    case BinOp::kLe: result = cmp <= 0; break;
    case BinOp::kGt: result = cmp > 0; break;
    case BinOp::kGe: result = cmp >= 0; break;
    default: break;
  }
  return Value(static_cast<int64_t>(result));
}

/// Bottom-up constant folding. Never mutates the input: unchanged subtrees
/// are shared, rewritten nodes are fresh. Folds only semantics the WHERE
/// evaluator defines (HAVING's three-valued comparisons are out of scope —
/// the planner never touches stmt.having).
ExprPtr FoldConstants(const ExprPtr& e, size_t* folded) {
  if (e == nullptr) return e;
  switch (e->kind) {
    case ExprKind::kBinary: {
      const ExprPtr l = FoldConstants(e->left, folded);
      const ExprPtr r = FoldConstants(e->right, folded);
      if (l->kind == ExprKind::kLiteral && r->kind == ExprKind::kLiteral &&
          e->op != BinOp::kAnd && e->op != BinOp::kOr) {
        ++*folded;
        return Expr::Literal(FoldBinaryLiteral(e->op, l->literal, r->literal));
      }
      if (l == e->left && r == e->right) return e;
      return Expr::Binary(e->op, l, r);
    }
    case ExprKind::kNot: {
      const ExprPtr c = FoldConstants(e->left, folded);
      if (c->kind == ExprKind::kLiteral) {
        ++*folded;
        return Expr::Literal(
            Value(static_cast<int64_t>(!Truthy(c->literal))));
      }
      if (c == e->left) return e;
      return Expr::Not(c);
    }
    case ExprKind::kIn:
    case ExprKind::kBetween:
    case ExprKind::kLike:
    case ExprKind::kIsNull: {
      const ExprPtr c = FoldConstants(e->left, folded);
      if (c == e->left) return e;
      ExprPtr out = e->Clone();
      out->left = c;
      return out;
    }
    default:
      return e;
  }
}

/// True when every column reference under `e` resolves to exactly
/// (table, col) and at least one reference exists.
bool OnlyReferences(const Expr& e, int table, int col, bool* any) {
  if (e.kind == ExprKind::kColumnRef) {
    *any = true;
    return e.table_idx == table && e.col_idx == col;
  }
  if (e.left != nullptr && !OnlyReferences(*e.left, table, col, any)) {
    return false;
  }
  if (e.right != nullptr && !OnlyReferences(*e.right, table, col, any)) {
    return false;
  }
  return true;
}

/// Clone `e` re-pointing every column reference from the source column to
/// (dst_table, dst_col), with the spelled name updated for readable
/// EXPLAIN/ToSql output.
ExprPtr Retarget(const Expr& e, int dst_table, int dst_col,
                 const BoundQuery& q) {
  ExprPtr out = e.Clone();
  // Iterative walk over the fresh clone (shared with nothing).
  std::vector<Expr*> stack{out.get()};
  while (!stack.empty()) {
    Expr* node = stack.back();
    stack.pop_back();
    if (node->kind == ExprKind::kColumnRef) {
      node->table_idx = dst_table;
      node->col_idx = dst_col;
      node->qualifier = q.stmt.from[dst_table].binding_name();
      node->column = q.tables[dst_table]->schema().field(dst_col).name;
    }
    if (node->left != nullptr) stack.push_back(node->left.get());
    if (node->right != nullptr) stack.push_back(node->right.get());
  }
  return out;
}

/// Union-find over (table, column) join-key nodes.
class ColumnClasses {
 public:
  int NodeFor(int table, int col) {
    const int64_t key = (static_cast<int64_t>(table) << 32) | col;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return static_cast<int>(i);
    }
    keys_.push_back(key);
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  size_t size() const { return keys_.size(); }
  int table(int node) const { return static_cast<int>(keys_[node] >> 32); }
  int col(int node) const {
    return static_cast<int>(keys_[node] & 0xffffffff);
  }

 private:
  std::vector<int64_t> keys_;
  std::vector<int> parent_;
};

/// Join-key equality implies *value* equality only where the executor's
/// serialized key (type tag + ToString) is injective: INT64 and STRING.
/// DOUBLE keys truncate to 6 decimals, so two unequal doubles can join —
/// propagating a filter across such an edge could drop tuples the
/// original query keeps.
bool PropagationSafe(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kString;
}

/// Mirror a comparison for `lit op col` -> `col op' lit` rewriting.
BinOp MirrorComparison(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// Match one filter conjunct of FROM entry `table` against the shapes the
/// access-path rule converts: `col op literal` / `literal op col` for
/// op in {=, <, <=, >, >=} and non-negated `col BETWEEN lo AND hi`. On a
/// match, fill `ap`'s column and bounds (kind stays untouched) and return
/// true. NULL literals never match — a comparison against NULL is
/// constant-false, which the full scan evaluates for free.
bool MatchIndexableConjunct(const Expr& e, int table, sql::AccessPath* ap) {
  if (e.kind == ExprKind::kBetween && !e.negated && e.left != nullptr &&
      e.left->kind == ExprKind::kColumnRef && e.left->table_idx == table &&
      !e.between_lo.is_null() && !e.between_hi.is_null()) {
    ap->column = e.left->col_idx;
    ap->has_lower = ap->has_upper = true;
    ap->lower_inclusive = ap->upper_inclusive = true;
    ap->lower = e.between_lo;
    ap->upper = e.between_hi;
    return true;
  }
  if (e.kind != ExprKind::kBinary || !sql::IsComparison(e.op) ||
      e.op == BinOp::kNe || e.left == nullptr || e.right == nullptr) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinOp op = e.op;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.left->kind == ExprKind::kLiteral &&
             e.right->kind == ExprKind::kColumnRef) {
    col = e.right.get();
    lit = e.left.get();
    op = MirrorComparison(op);
  } else {
    return false;
  }
  if (col->table_idx != table || lit->literal.is_null()) return false;
  ap->column = col->col_idx;
  switch (op) {
    case BinOp::kEq:
      ap->has_lower = ap->has_upper = true;
      ap->lower_inclusive = ap->upper_inclusive = true;
      ap->lower = ap->upper = lit->literal;
      break;
    case BinOp::kLt:
      ap->has_upper = true;
      ap->upper_inclusive = false;
      ap->upper = lit->literal;
      break;
    case BinOp::kLe:
      ap->has_upper = true;
      ap->upper_inclusive = true;
      ap->upper = lit->literal;
      break;
    case BinOp::kGt:
      ap->has_lower = true;
      ap->lower_inclusive = false;
      ap->lower = lit->literal;
      break;
    case BinOp::kGe:
      ap->has_lower = true;
      ap->lower_inclusive = true;
      ap->lower = lit->literal;
      break;
    default:
      return false;
  }
  return true;
}

/// EXPLAIN rendering of one chosen access path.
std::string DescribeAccessPath(const sql::AccessPath& ap,
                               const BoundQuery& q, int table) {
  if (ap.kind != sql::AccessPath::Kind::kIndexRange) return "FullScan";
  const std::string col =
      ap.column >= 0 &&
              static_cast<size_t>(ap.column) <
                  q.tables[table]->schema().num_fields()
          ? q.tables[table]->schema().field(static_cast<size_t>(ap.column)).name
          : util::Format("#%d", ap.column);
  const std::string lo =
      ap.has_lower ? util::Format("%s%s", ap.lower_inclusive ? "[" : "(",
                                  ap.lower.ToString().c_str())
                   : "(-inf";
  const std::string hi =
      ap.has_upper ? util::Format("%s%s", ap.upper.ToString().c_str(),
                                  ap.upper_inclusive ? "]" : ")")
                   : "+inf)";
  return util::Format("IndexRangeScan(%s, %s, %s)", col.c_str(), lo.c_str(),
                      hi.c_str());
}

struct JoinGraph {
  size_t n = 0;
  /// adjacency[i] bitmask of tables joined to i by an equi-predicate.
  std::vector<uint32_t> adjacency;

  explicit JoinGraph(const BoundQuery& q) : n(q.num_tables()), adjacency(n, 0) {
    for (const JoinPredicate& jp : q.joins) {
      adjacency[jp.left_table] |= 1u << jp.right_table;
      adjacency[jp.right_table] |= 1u << jp.left_table;
    }
  }
};

/// Estimated cardinality of attaching `t` to a joined set with cardinality
/// `card`: multiply by t's filtered rows and the selectivity of every
/// equi-predicate connecting t to the set.
double AttachCardinality(const BoundQuery& q, const CardinalityEstimator& est,
                         const std::vector<double>& filtered_rows,
                         uint32_t mask, int t, double card) {
  double out = card * filtered_rows[t];
  for (const JoinPredicate& jp : q.joins) {
    const bool connects =
        (jp.left_table == t && (mask & (1u << jp.right_table)) != 0) ||
        (jp.right_table == t && (mask & (1u << jp.left_table)) != 0);
    if (connects) out *= est.JoinSelectivity(jp);
  }
  return out;
}

/// Exact left-deep DP over subsets: minimize the sum of intermediate
/// cardinalities. Only connected attachments are considered while any
/// exist (matching the executor's cross-product avoidance). Cost ties
/// resolve to the smaller seed cardinality — so when the estimates cannot
/// tell two orders apart (e.g. any 2-table join) the plan keeps the
/// executor's runtime-greedy smallest-first shape — then to the lowest
/// subset/table index, so the result is deterministic.
std::vector<int> OrderJoinsDp(const BoundQuery& q,
                              const CardinalityEstimator& est,
                              const std::vector<double>& filtered_rows,
                              double* result_rows) {
  const size_t n = q.num_tables();
  const JoinGraph graph(q);
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double card = 0.0;
    double seed_card = std::numeric_limits<double>::infinity();
    int last = -1;
    uint32_t prev = 0;
  };
  std::vector<State> dp(size_t{1} << n);
  for (size_t t = 0; t < n; ++t) {
    State& s = dp[size_t{1} << t];
    s.cost = 0.0;
    s.card = filtered_rows[t];
    s.seed_card = filtered_rows[t];
    s.last = static_cast<int>(t);
  }
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    const State& cur = dp[mask];
    if (cur.last < 0) continue;
    uint32_t connected = 0;
    for (size_t t = 0; t < n; ++t) {
      if ((mask & (1u << t)) == 0 && (graph.adjacency[t] & mask) != 0) {
        connected |= 1u << t;
      }
    }
    for (size_t t = 0; t < n; ++t) {
      if ((mask & (1u << t)) != 0) continue;
      if (connected != 0 && (connected & (1u << t)) == 0) continue;
      const double card =
          AttachCardinality(q, est, filtered_rows, mask, static_cast<int>(t),
                            cur.card);
      const double cost = cur.cost + card;
      State& next = dp[mask | (1u << t)];
      if (cost < next.cost ||
          (cost == next.cost && cur.seed_card < next.seed_card)) {
        next.cost = cost;
        next.card = card;
        next.seed_card = cur.seed_card;
        next.last = static_cast<int>(t);
        next.prev = mask;
      }
    }
  }
  const uint32_t full = (1u << n) - 1;
  *result_rows = dp[full].card;
  std::vector<int> order(n);
  uint32_t mask = full;
  for (size_t i = n; i-- > 0;) {
    order[i] = dp[mask].last;
    mask = dp[mask].prev;
  }
  return order;
}

/// Greedy ordering for wide joins: seed with the smallest estimate, then
/// repeatedly attach the connected table minimizing the next intermediate
/// cardinality (any table when the remainder is disconnected).
std::vector<int> OrderJoinsGreedy(const BoundQuery& q,
                                  const CardinalityEstimator& est,
                                  const std::vector<double>& filtered_rows,
                                  double* result_rows) {
  const size_t n = q.num_tables();
  const JoinGraph graph(q);
  std::vector<int> order;
  order.reserve(n);
  int seed = 0;
  for (size_t t = 1; t < n; ++t) {
    if (filtered_rows[t] < filtered_rows[seed]) seed = static_cast<int>(t);
  }
  order.push_back(seed);
  uint32_t mask = 1u << seed;
  double card = filtered_rows[seed];
  for (size_t step = 1; step < n; ++step) {
    int best = -1;
    bool best_connected = false;
    double best_card = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      if ((mask & (1u << t)) != 0) continue;
      const bool connected = (graph.adjacency[t] & mask) != 0;
      const double next_card = AttachCardinality(
          q, est, filtered_rows, mask, static_cast<int>(t), card);
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && next_card < best_card)) {
        best = static_cast<int>(t);
        best_connected = connected;
        best_card = next_card;
      }
    }
    order.push_back(best);
    mask |= 1u << best;
    card = best_card;
  }
  *result_rows = card;
  return order;
}

}  // namespace

std::string PlanSummary::ToString() const {
  std::string out = util::Format(
      "plan: %s statistics, %s join search\n",
      stats_available ? "column" : "no", used_dp ? "exact-dp" : "greedy");
  for (size_t t = 0; t < tables.size(); ++t) {
    const PlanTableInfo& info = tables[t];
    out += util::Format(
        "  t%zu %s: %zu rows -> est %.1f after %zu filter(s)", t,
        info.table.c_str(), info.base_rows, info.estimated_rows,
        info.filter_count);
    if (info.propagated_filters > 0) {
      out += util::Format(" (%zu propagated)", info.propagated_filters);
    }
    out += util::Format(" via %s\n", info.access_path.c_str());
  }
  out += "  join order:";
  for (size_t i = 0; i < join_order.size(); ++i) {
    out += util::Format("%s t%d", i == 0 ? "" : " ->", join_order[i]);
  }
  out += util::Format("\n  est result rows: %.1f\n", estimated_result_rows);
  out += util::Format(
      "  rewrites: folded %zu constant(s), pruned %zu duplicate(s), "
      "propagated %zu filter(s)\n",
      folded_constants, pruned_duplicates, propagated_filters);
  return out;
}

sql::BoundQuery PlanQuery(const sql::BoundQuery& query,
                          const StatsCatalog* stats, PlanSummary* summary,
                          const storage::IndexCatalog* indexes) {
  BoundQuery out = query;
  PlanSummary local;
  PlanSummary& sum = summary != nullptr ? *summary : local;
  sum = PlanSummary{};
  sum.stats_available = stats != nullptr;

  const size_t n = out.num_tables();

  // ---- Rule 1: constant folding (WHERE conjuncts only — the HAVING
  // evaluator propagates NULL through comparisons, so folding there with
  // WHERE semantics would change results).
  for (auto& filters : out.filters) {
    for (ExprPtr& f : filters) f = FoldConstants(f, &sum.folded_constants);
  }
  for (ExprPtr& r : out.residual) {
    r = FoldConstants(r, &sum.folded_constants);
  }

  // ---- Rule 2: redundant-predicate pruning. Conjuncts are idempotent, so
  // duplicates (by canonical text — BETWEEN and its paired-inequality
  // spelling share one) drop; constant-TRUE residuals drop too. Constant
  // FALSE stays: it zeroes the result and costs one evaluation.
  std::vector<std::unordered_set<std::string>> seen(n);
  for (size_t t = 0; t < n; ++t) {
    std::vector<ExprPtr> kept;
    kept.reserve(out.filters[t].size());
    for (ExprPtr& f : out.filters[t]) {
      if (seen[t].insert(sql::CanonicalizeExpr(*f)).second) {
        kept.push_back(std::move(f));
      } else {
        ++sum.pruned_duplicates;
      }
    }
    out.filters[t] = std::move(kept);
  }
  {
    std::unordered_set<std::string> residual_seen;
    std::vector<ExprPtr> kept;
    std::vector<std::vector<int>> kept_tables;
    for (size_t r = 0; r < out.residual.size(); ++r) {
      const ExprPtr& e = out.residual[r];
      if (e->kind == ExprKind::kLiteral && Truthy(e->literal)) {
        ++sum.pruned_duplicates;  // constant TRUE: a no-op conjunct
        continue;
      }
      if (!residual_seen.insert(sql::CanonicalizeExpr(*e)).second) {
        ++sum.pruned_duplicates;
        continue;
      }
      kept.push_back(out.residual[r]);
      kept_tables.push_back(out.residual_tables[r]);
    }
    out.residual = std::move(kept);
    out.residual_tables = std::move(kept_tables);
  }

  // ---- Rule 3: transitive filter pushdown. Columns linked by equi-join
  // predicates form equality classes; a single-column filter on one member
  // applies to every member (for key-injective column types), shrinking
  // the other tables' scans before the join.
  std::vector<size_t> propagated_per_table(n, 0);
  if (!out.joins.empty()) {
    ColumnClasses classes;
    for (const JoinPredicate& jp : out.joins) {
      classes.Union(classes.NodeFor(jp.left_table, jp.left_col),
                    classes.NodeFor(jp.right_table, jp.right_col));
    }
    struct Source {
      int node;
      ExprPtr pred;
    };
    std::vector<Source> sources;
    for (int node = 0; node < static_cast<int>(classes.size()); ++node) {
      const int t = classes.table(node);
      const int c = classes.col(node);
      for (const ExprPtr& f : out.filters[t]) {
        bool any = false;
        if (OnlyReferences(*f, t, c, &any) && any) {
          sources.push_back({node, f});
        }
      }
    }
    for (const Source& src : sources) {
      const int st = classes.table(src.node);
      const int sc = classes.col(src.node);
      const ValueType src_type = out.tables[st]->column(sc).type();
      if (!PropagationSafe(src_type)) continue;
      for (int node = 0; node < static_cast<int>(classes.size()); ++node) {
        if (node == src.node ||
            classes.Find(node) != classes.Find(src.node)) {
          continue;
        }
        const int dt = classes.table(node);
        const int dc = classes.col(node);
        if (dt == st && dc == sc) continue;
        if (out.tables[dt]->column(dc).type() != src_type) continue;
        ExprPtr moved = Retarget(*src.pred, dt, dc, out);
        if (!seen[dt].insert(sql::CanonicalizeExpr(*moved)).second) {
          continue;  // already filtered identically
        }
        out.filters[dt].push_back(std::move(moved));
        ++propagated_per_table[dt];
        ++sum.propagated_filters;
      }
    }
  }

  // ---- Rule 3.5: access-path selection. A table whose filters include a
  // selective single-column comparison/BETWEEN over an indexed column
  // scans the index's candidate range instead of every visible row. The
  // executor re-evaluates all conjuncts over the candidates, so the choice
  // is cost-only — a mis-estimate can never change result bytes. Among
  // eligible conjuncts the most selective estimate wins.
  CardinalityEstimator est(stats, &out);
  out.access_paths.assign(n, sql::AccessPath{});
  if (indexes != nullptr) {
    for (size_t t = 0; t < n; ++t) {
      const std::string& table_name = out.tables[t]->name();
      double best = kIndexScanSelectivity;
      for (const ExprPtr& f : out.filters[t]) {
        sql::AccessPath ap;
        if (!MatchIndexableConjunct(*f, static_cast<int>(t), &ap)) continue;
        if (indexes->Find(table_name, ap.column) == nullptr) continue;
        const double s = est.Selectivity(*f, static_cast<int>(t));
        if (s > best) continue;
        best = s;
        ap.kind = sql::AccessPath::Kind::kIndexRange;
        ap.selectivity = s;
        out.access_paths[t] = std::move(ap);
      }
      if (out.access_paths[t].kind == sql::AccessPath::Kind::kIndexRange) {
        ++sum.index_scans;
      }
    }
  }

  // ---- Rule 4: cost-ordered join tree.
  std::vector<double> filtered_rows(n, 0.0);
  for (size_t t = 0; t < n; ++t) {
    filtered_rows[t] =
        est.EstimateFilteredRows(static_cast<int>(t), out.filters[t]);
  }
  if (n == 1) {
    out.join_order = {0};
    sum.estimated_result_rows = filtered_rows[0];
  } else if (n > 1) {
    sum.used_dp = n <= 6;
    out.join_order =
        sum.used_dp
            ? OrderJoinsDp(out, est, filtered_rows,
                           &sum.estimated_result_rows)
            : OrderJoinsGreedy(out, est, filtered_rows,
                               &sum.estimated_result_rows);
  }
  sum.join_order = out.join_order;

  sum.tables.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    PlanTableInfo info;
    info.table = out.tables[t]->name();
    info.base_rows = out.tables[t]->num_rows();
    info.estimated_rows = filtered_rows[t];
    info.filter_count = out.filters[t].size();
    info.propagated_filters = propagated_per_table[t];
    info.access_path = DescribeAccessPath(out.access_paths[t], out,
                                          static_cast<int>(t));
    sum.tables.push_back(std::move(info));
  }
  return out;
}

}  // namespace plan
}  // namespace asqp
