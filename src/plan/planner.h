// The cost-based optimizer between sql::Binder and exec::QueryEngine.
//
// PlanQuery rewrites a BoundQuery without changing its result bytes:
//   * constant folding     literal-only arithmetic/comparison subtrees in
//                          WHERE conjuncts collapse to their value
//                          (mirroring exec::EvaluateScalar exactly; HAVING
//                          is never folded — its NULL semantics differ);
//   * redundant pruning    duplicate conjuncts (by canonical text, so
//                          BETWEEN and its paired-inequality spelling
//                          collapse) are dropped, as are constant-true
//                          residuals;
//   * filter pushdown      a single-column filter propagates across the
//                          join equality class of its column, shrinking
//                          the other side's scan before the join (sound
//                          because join keys match exactly by type+value;
//                          restricted to non-DOUBLE columns where key
//                          equality implies value equality);
//   * access paths         a single-column comparison or BETWEEN conjunct
//                          whose column carries an ordered secondary index
//                          (storage::IndexCatalog) and whose estimated
//                          selectivity clears the threshold converts the
//                          table's scan into an index range scan, emitted
//                          as BoundQuery::access_paths (the executor
//                          re-evaluates every conjunct over the index's
//                          candidates, so this is cost-only);
//   * join ordering        a cost-ordered sequence (exact DP over <= 6
//                          relations, greedy beyond) minimizing the sum of
//                          estimated intermediate cardinalities, emitted
//                          as BoundQuery::join_order.
//
// Result invariance holds because the executor canonicalizes the joined
// tuple order before projection/aggregation (see exec/executor.cc), so any
// join order / filter schedule producing the same tuple *set* produces the
// same result bytes. The planner never fails: without statistics it falls
// back to default selectivities, and a degenerate query passes through
// unchanged.
#pragma once

#include <string>
#include <vector>

#include "plan/stats.h"
#include "sql/binder.h"

namespace asqp {
namespace storage {
class IndexCatalog;
}  // namespace storage

namespace plan {

/// Selectivity at or below which an indexable conjunct converts the
/// table's scan into an index range scan. Above it the full scan's
/// branch-free sequential pass wins (the index pays a binary search plus
/// an ordinal sort per query). With default (no-stats) selectivities,
/// equality (0.1) converts and an open range (1/3) does not.
inline constexpr double kIndexScanSelectivity = 0.25;

/// \brief One FROM entry's line in an EXPLAIN summary.
struct PlanTableInfo {
  std::string table;
  size_t base_rows = 0;
  /// Estimated rows surviving the table's filter conjuncts.
  double estimated_rows = 0.0;
  size_t filter_count = 0;
  /// How many of those filters were added by transitive propagation.
  size_t propagated_filters = 0;
  /// Chosen access path, rendered: "FullScan" or
  /// "IndexRangeScan(col, [lo, hi])" with "(" / ")" for exclusive and
  /// "-inf" / "+inf" for open bounds.
  std::string access_path = "FullScan";
};

/// \brief Observable summary of one planning pass (EXPLAIN output).
struct PlanSummary {
  std::vector<PlanTableInfo> tables;  // in FROM order
  std::vector<int> join_order;        // chosen attach sequence (FROM indices)
  bool used_dp = false;               // exact DP vs greedy search
  bool stats_available = false;
  double estimated_result_rows = 0.0;  // after joins, before agg/limit
  size_t folded_constants = 0;
  size_t pruned_duplicates = 0;
  size_t propagated_filters = 0;
  /// FROM entries converted to index range scans (0 without a catalog).
  size_t index_scans = 0;

  /// Human-readable EXPLAIN rendering.
  std::string ToString() const;
};

/// Plan `query`: returns a rewritten copy (original untouched; unchanged
/// expression subtrees are shared, rewritten ones are fresh clones).
/// `stats` may be null — the estimator then uses fixed default
/// selectivities. `summary`, when non-null, receives the EXPLAIN data.
/// `indexes`, when non-null, enables the access-path rule over its ordered
/// indexes; the caller is responsible for passing only a catalog whose
/// scope covers the view the plan will execute against.
sql::BoundQuery PlanQuery(const sql::BoundQuery& query,
                          const StatsCatalog* stats,
                          PlanSummary* summary = nullptr,
                          const storage::IndexCatalog* indexes = nullptr);

}  // namespace plan
}  // namespace asqp
