// The cost-based optimizer between sql::Binder and exec::QueryEngine.
//
// PlanQuery rewrites a BoundQuery without changing its result bytes:
//   * constant folding     literal-only arithmetic/comparison subtrees in
//                          WHERE conjuncts collapse to their value
//                          (mirroring exec::EvaluateScalar exactly; HAVING
//                          is never folded — its NULL semantics differ);
//   * redundant pruning    duplicate conjuncts (by canonical text, so
//                          BETWEEN and its paired-inequality spelling
//                          collapse) are dropped, as are constant-true
//                          residuals;
//   * filter pushdown      a single-column filter propagates across the
//                          join equality class of its column, shrinking
//                          the other side's scan before the join (sound
//                          because join keys match exactly by type+value;
//                          restricted to non-DOUBLE columns where key
//                          equality implies value equality);
//   * join ordering        a cost-ordered sequence (exact DP over <= 6
//                          relations, greedy beyond) minimizing the sum of
//                          estimated intermediate cardinalities, emitted
//                          as BoundQuery::join_order.
//
// Result invariance holds because the executor canonicalizes the joined
// tuple order before projection/aggregation (see exec/executor.cc), so any
// join order / filter schedule producing the same tuple *set* produces the
// same result bytes. The planner never fails: without statistics it falls
// back to default selectivities, and a degenerate query passes through
// unchanged.
#pragma once

#include <string>
#include <vector>

#include "plan/stats.h"
#include "sql/binder.h"

namespace asqp {
namespace plan {

/// \brief One FROM entry's line in an EXPLAIN summary.
struct PlanTableInfo {
  std::string table;
  size_t base_rows = 0;
  /// Estimated rows surviving the table's filter conjuncts.
  double estimated_rows = 0.0;
  size_t filter_count = 0;
  /// How many of those filters were added by transitive propagation.
  size_t propagated_filters = 0;
};

/// \brief Observable summary of one planning pass (EXPLAIN output).
struct PlanSummary {
  std::vector<PlanTableInfo> tables;  // in FROM order
  std::vector<int> join_order;        // chosen attach sequence (FROM indices)
  bool used_dp = false;               // exact DP vs greedy search
  bool stats_available = false;
  double estimated_result_rows = 0.0;  // after joins, before agg/limit
  size_t folded_constants = 0;
  size_t pruned_duplicates = 0;
  size_t propagated_filters = 0;

  /// Human-readable EXPLAIN rendering.
  std::string ToString() const;
};

/// Plan `query`: returns a rewritten copy (original untouched; unchanged
/// expression subtrees are shared, rewritten ones are fresh clones).
/// `stats` may be null — the estimator then uses fixed default
/// selectivities. `summary`, when non-null, receives the EXPLAIN data.
sql::BoundQuery PlanQuery(const sql::BoundQuery& query,
                          const StatsCatalog* stats,
                          PlanSummary* summary = nullptr);

}  // namespace plan
}  // namespace asqp
