#include "plan/stats.h"

#include "workloadgen/stats.h"

namespace asqp {
namespace plan {

StatsCatalog StatsCatalog::Collect(const storage::Database& db) {
  // Reuse the workloadgen collector (one pass per column) and keep only
  // the fields the estimator consumes.
  const workloadgen::DatabaseStats raw = workloadgen::DatabaseStats::Collect(db);
  StatsCatalog catalog;
  for (const auto& [name, ts] : raw.tables()) {
    TableStatistics out;
    out.row_count = ts.row_count;
    out.columns.reserve(ts.columns.size());
    for (const workloadgen::ColumnStats& cs : ts.columns) {
      ColumnStatistics col;
      col.ndv = cs.distinct_count;
      if (cs.row_count > 0) {
        col.null_fraction = static_cast<double>(cs.null_count) /
                            static_cast<double>(cs.row_count);
      }
      if (cs.is_numeric() && cs.null_count < cs.row_count) {
        col.min = cs.min;
        col.max = cs.max;
        col.has_range = true;
      }
      out.columns.push_back(col);
    }
    catalog.tables_.emplace(name, std::move(out));
  }
  return catalog;
}

const TableStatistics* StatsCatalog::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const ColumnStatistics* StatsCatalog::FindColumn(const std::string& table,
                                                 int col) const {
  const TableStatistics* ts = FindTable(table);
  if (ts == nullptr || col < 0 ||
      static_cast<size_t>(col) >= ts->columns.size()) {
    return nullptr;
  }
  return &ts->columns[col];
}

}  // namespace plan
}  // namespace asqp
