// Statistics catalog for the cost-based planner (src/plan).
//
// A StatsCatalog is a compact, execution-oriented view of the per-column
// statistics the workloadgen collector already gathers (row counts, NDV,
// min/max, null counts): the cardinality estimator divides by NDV for
// equality predicates, interpolates min/max for ranges, and scales by the
// null fraction everywhere. Collect it once per database at load /
// MaterializeSet time and share it across engines — it is immutable after
// Collect and safe to read concurrently.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "storage/database.h"

namespace asqp {
namespace plan {

/// \brief Planner statistics for one column.
struct ColumnStatistics {
  /// Exact number of distinct non-NULL values; 0 = unknown.
  size_t ndv = 0;
  /// Numeric range (valid only when has_range is set).
  double min = 0.0;
  double max = 0.0;
  bool has_range = false;
  /// Fraction of rows that are NULL, in [0, 1].
  double null_fraction = 0.0;
};

/// \brief Planner statistics for one table.
struct TableStatistics {
  size_t row_count = 0;
  /// Aligned with the table's schema field order.
  std::vector<ColumnStatistics> columns;
};

/// \brief Immutable per-database statistics, keyed by table name.
class StatsCatalog {
 public:
  /// Scan every table of `db` (single pass per column, via
  /// workloadgen::DatabaseStats).
  static StatsCatalog Collect(const storage::Database& db);

  const TableStatistics* FindTable(const std::string& name) const;
  /// Column stats by table name + schema field index; null when the table
  /// is unknown or the index is out of range.
  const ColumnStatistics* FindColumn(const std::string& table, int col) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, TableStatistics> tables_;
};

}  // namespace plan
}  // namespace asqp
