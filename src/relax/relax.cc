#include "relax/relax.h"

#include <algorithm>
#include <cmath>

namespace asqp {
namespace relax {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using storage::Value;
using workloadgen::ColumnStats;
using workloadgen::DatabaseStats;

/// Find stats for a column reference within the query's FROM tables.
const ColumnStats* LookupColumn(const Expr& ref,
                                const sql::SelectStatement& stmt,
                                const DatabaseStats& stats) {
  for (const sql::TableRef& t : stmt.from) {
    if (!ref.qualifier.empty() && ref.qualifier != t.binding_name() &&
        ref.qualifier != t.table) {
      continue;
    }
    const workloadgen::TableStats* ts = stats.FindTable(t.table);
    if (ts == nullptr) continue;
    const ColumnStats* cs = ts->FindColumn(ref.column);
    if (cs != nullptr) return cs;
  }
  return nullptr;
}

Value NumericLike(const Value& reference, double v) {
  if (reference.type() == storage::ValueType::kInt64) {
    return Value(static_cast<int64_t>(std::llround(v)));
  }
  return Value(v);
}

/// True when `e` is `<column> <cmp> <numeric literal>` (either order).
bool MatchColCmpConst(const Expr& e, const Expr** col, const Expr** lit,
                      bool* col_on_left) {
  if (e.kind != ExprKind::kBinary || !sql::IsComparison(e.op)) return false;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    *col = e.left.get();
    *lit = e.right.get();
    *col_on_left = true;
    return true;
  }
  if (e.right->kind == ExprKind::kColumnRef &&
      e.left->kind == ExprKind::kLiteral) {
    *col = e.right.get();
    *lit = e.left.get();
    *col_on_left = false;
    return true;
  }
  return false;
}

/// Sibling categorical values for extending equality / IN predicates:
/// frequent values not already present.
std::vector<Value> Siblings(const ColumnStats& cs,
                            const std::vector<Value>& existing, size_t count,
                            util::Rng* rng) {
  std::vector<Value> out;
  if (cs.top_values.empty()) return out;
  // Start from a random offset so different relaxations diversify.
  const size_t start = rng->NextBounded(cs.top_values.size());
  for (size_t i = 0; i < cs.top_values.size() && out.size() < count; ++i) {
    const std::string& candidate =
        cs.top_values[(start + i) % cs.top_values.size()].first;
    bool present = false;
    for (const Value& v : existing) {
      if (v.type() == storage::ValueType::kString &&
          v.AsString() == candidate) {
        present = true;
        break;
      }
    }
    if (!present) out.emplace_back(candidate);
  }
  return out;
}

class Relaxer {
 public:
  Relaxer(const sql::SelectStatement& stmt, const DatabaseStats& stats,
          const RelaxOptions& options, util::Rng* rng)
      : stmt_(stmt), stats_(stats), options_(options), rng_(rng) {}

  /// Relax one conjunct; returns nullptr when the conjunct is dropped.
  ExprPtr RelaxConjunct(const ExprPtr& conjunct) {
    // Never drop or touch equi-join predicates (col = col): dropping one
    // would change the query's shape, not relax it.
    if (conjunct->kind == ExprKind::kBinary && conjunct->op == BinOp::kEq &&
        conjunct->left->kind == ExprKind::kColumnRef &&
        conjunct->right->kind == ExprKind::kColumnRef) {
      return conjunct->Clone();
    }
    if (rng_->Bernoulli(options_.drop_probability)) return nullptr;
    return RelaxExpr(conjunct);
  }

 private:
  ExprPtr RelaxExpr(const ExprPtr& expr) {
    switch (expr->kind) {
      case ExprKind::kBinary: {
        if (expr->op == BinOp::kAnd || expr->op == BinOp::kOr) {
          // Recurse; inside OR/AND subtrees nothing is dropped (dropping a
          // branch of an OR would *shrink* the result).
          return Expr::Binary(expr->op, RelaxExpr(expr->left),
                              RelaxExpr(expr->right));
        }
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        bool col_on_left = false;
        if (!MatchColCmpConst(*expr, &col, &lit, &col_on_left)) {
          return expr->Clone();
        }
        const ColumnStats* cs = LookupColumn(*col, stmt_, stats_);
        return RelaxComparison(*expr, *col, *lit, col_on_left, cs);
      }
      case ExprKind::kBetween:
        return RelaxBetween(*expr);
      case ExprKind::kIn:
        return RelaxIn(*expr);
      case ExprKind::kLike:
        return RelaxLike(*expr);
      default:
        return expr->Clone();
    }
  }

  ExprPtr RelaxComparison(const Expr& e, const Expr& col, const Expr& lit,
                          bool col_on_left, const ColumnStats* cs) {
    const Value& v = lit.literal;
    // Categorical equality -> IN with siblings.
    if (e.op == BinOp::kEq && v.type() == storage::ValueType::kString &&
        cs != nullptr) {
      std::vector<Value> list = {v};
      for (Value& s : Siblings(*cs, list, options_.in_extension, rng_)) {
        list.push_back(std::move(s));
      }
      return Expr::In(col.Clone(), std::move(list));
    }
    if (!v.is_numeric() || cs == nullptr || !cs->is_numeric()) {
      return e.Clone();
    }
    const double range = std::max(cs->max - cs->min, 1e-9);
    const double delta = options_.widen_fraction * range;
    const double num = v.ToNumeric();

    // Normalize direction: what does the predicate bound for the column?
    BinOp op = e.op;
    if (!col_on_left) {
      switch (op) {
        case BinOp::kLt: op = BinOp::kGt; break;
        case BinOp::kLe: op = BinOp::kGe; break;
        case BinOp::kGt: op = BinOp::kLt; break;
        case BinOp::kGe: op = BinOp::kLe; break;
        default: break;
      }
    }
    switch (op) {
      case BinOp::kEq:
        return Expr::Between(col.Clone(), NumericLike(v, num - delta),
                             NumericLike(v, num + delta));
      case BinOp::kLt:
      case BinOp::kLe:
        return Expr::Binary(op, col.Clone(),
                            Expr::Literal(NumericLike(v, num + delta)));
      case BinOp::kGt:
      case BinOp::kGe:
        return Expr::Binary(op, col.Clone(),
                            Expr::Literal(NumericLike(v, num - delta)));
      default:
        return e.Clone();
    }
  }

  ExprPtr RelaxBetween(const Expr& e) {
    if (e.negated || e.left->kind != ExprKind::kColumnRef) return e.Clone();
    const ColumnStats* cs = LookupColumn(*e.left, stmt_, stats_);
    if (cs == nullptr || !cs->is_numeric() || !e.between_lo.is_numeric() ||
        !e.between_hi.is_numeric()) {
      return e.Clone();
    }
    const double range = std::max(cs->max - cs->min, 1e-9);
    const double delta = options_.widen_fraction * range;
    return Expr::Between(
        e.left->Clone(),
        NumericLike(e.between_lo, e.between_lo.ToNumeric() - delta),
        NumericLike(e.between_hi, e.between_hi.ToNumeric() + delta));
  }

  ExprPtr RelaxIn(const Expr& e) {
    if (e.negated || e.left->kind != ExprKind::kColumnRef) return e.Clone();
    const ColumnStats* cs = LookupColumn(*e.left, stmt_, stats_);
    ExprPtr out = e.Clone();
    if (cs != nullptr) {
      for (Value& s :
           Siblings(*cs, out->in_list, options_.in_extension, rng_)) {
        out->in_list.push_back(std::move(s));
      }
    }
    return out;
  }

  ExprPtr RelaxLike(const Expr& e) {
    if (e.negated) return e.Clone();
    // Shorten a literal prefix: 'abcd%' -> 'abc%' (never below one char).
    const std::string& p = e.like_pattern;
    const size_t wild = p.find_first_of("%_");
    if (wild == std::string::npos || wild < 2) return e.Clone();
    ExprPtr out = e.Clone();
    out->like_pattern = p.substr(0, wild - 1) + p.substr(wild);
    return out;
  }

  const sql::SelectStatement& stmt_;
  const DatabaseStats& stats_;
  const RelaxOptions& options_;
  util::Rng* rng_;
};

}  // namespace

sql::SelectStatement RelaxQuery(const sql::SelectStatement& stmt,
                                const DatabaseStats& stats,
                                const RelaxOptions& options, util::Rng* rng) {
  sql::SelectStatement out = stmt.Clone();
  // The relaxed query is used to *collect* candidate tuples, so the user's
  // result-size cap must not constrain it.
  out.limit = -1;
  out.order_by.clear();

  if (out.where == nullptr) return out;
  std::vector<ExprPtr> conjuncts;
  sql::CollectConjuncts(out.where, &conjuncts);

  Relaxer relaxer(out, stats, options, rng);
  std::vector<ExprPtr> relaxed;
  relaxed.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    ExprPtr r = relaxer.RelaxConjunct(c);
    if (r != nullptr) relaxed.push_back(std::move(r));
  }
  out.where = sql::AndAll(relaxed);
  return out;
}

}  // namespace relax
}  // namespace asqp
