// Query relaxation (pre-processing step, Section 4.2): loosen predicate
// conditions so each generalized query returns a superset of its original
// result. This pulls tuples beyond the training workload into the action
// space, which is how the system generalizes to future queries (C4).
//
// Relaxations applied (all statistics-guided):
//   * numeric comparisons  col < c   ->  col < c + widen * range
//   * numeric equality     col = c   ->  col BETWEEN c - d AND c + d
//   * BETWEEN              widened on both ends
//   * categorical equality col = 'v' ->  col IN ('v', siblings...)
//   * IN lists             extended with frequent sibling values
//   * LIKE 'abc%'          prefix shortened
//   * any conjunct may be dropped with probability `drop_probability`
#pragma once

#include "sql/ast.h"
#include "util/random.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace relax {

struct RelaxOptions {
  /// Fraction of the column's value range by which ranges are widened.
  double widen_fraction = 0.35;
  /// Number of sibling categorical values added to equality / IN predicates.
  size_t in_extension = 5;
  /// Probability of dropping a filter conjunct outright. Aggressive
  /// dropping is the strongest generalization lever: it pulls in tuples
  /// adjacent to the workload that future queries are likely to touch.
  double drop_probability = 0.3;
};

/// Return a relaxed clone of `stmt`. The result set of the relaxed query is
/// a superset of the original's on the same database (LIMIT is removed;
/// dropped or widened predicates only admit more rows).
sql::SelectStatement RelaxQuery(const sql::SelectStatement& stmt,
                                const workloadgen::DatabaseStats& stats,
                                const RelaxOptions& options, util::Rng* rng);

}  // namespace relax
}  // namespace asqp
