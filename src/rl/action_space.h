// The RL action space built by the pre-processing pipeline (Section 4.2).
//
// Pre-processing executes relaxed query representatives over the database,
// variationally subsamples the joined result tuples into a *pool*, and
// groups pool tuples into *actions* (the paper: "an action encompasses
// multiple tuples sourced from different tables"). For reward evaluation
// during training we precompute, for every action, how many result tuples
// it contributes to every representative query — so a training step never
// touches the SQL engine. The final quality metric is still measured with
// real query execution over the materialized approximation set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"

namespace asqp {
namespace rl {

/// \brief One pool entry: a joined tuple, as (table, row) pairs.
struct PoolTuple {
  /// (table index into ActionSpace::table_names, physical row id).
  std::vector<std::pair<uint32_t, uint32_t>> rows;
};

/// \brief The precomputed training substrate for all environments.
struct ActionSpace {
  std::vector<std::string> table_names;
  std::vector<PoolTuple> pool;

  /// Pool indices grouped into each action.
  std::vector<std::vector<uint32_t>> action_tuples;
  /// Number of distinct base tuples each action adds (cost against k).
  std::vector<uint32_t> action_cost;

  /// contribution[a * num_queries + q]: result tuples of representative
  /// query q contributed by selecting action a.
  size_t num_queries = 0;
  std::vector<float> contribution;
  /// min(F, |q(T)|) per representative query, >= 1.
  std::vector<float> query_target;
  /// Normalized representative weights.
  std::vector<float> query_weight;

  /// Memory budget k (total base tuples).
  size_t budget = 0;

  size_t num_actions() const { return action_tuples.size(); }

  float ContributionOf(size_t action, size_t query) const {
    return contribution[action * num_queries + query];
  }

  /// Materialize a selected action set into an ApproximationSet.
  storage::ApproximationSet Materialize(
      const std::vector<size_t>& actions) const {
    storage::ApproximationSet out;
    for (size_t a : actions) {
      for (uint32_t tuple_idx : action_tuples[a]) {
        for (const auto& [table, row] : pool[tuple_idx].rows) {
          out.Add(table_names[table], row);
        }
      }
    }
    out.Seal();
    return out;
  }
};

}  // namespace rl
}  // namespace asqp
