#include "rl/env.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace asqp {
namespace rl {

Env::Env(const ActionSpace* space, size_t batch_size)
    : space_(space),
      batch_size_(std::min(batch_size == 0 ? space->num_queries : batch_size,
                           space->num_queries)),
      selected_(space->num_actions(), 0),
      coverage_(space->num_queries, 0.0f),
      state_(state_dim(), 0.0f),
      mask_(space->num_actions(), 0) {}

std::vector<size_t> Env::SelectedActions() const {
  std::vector<size_t> out;
  for (size_t a = 0; a < selected_.size(); ++a) {
    if (selected_[a]) out.push_back(a);
  }
  return out;
}

void Env::PickBatch(size_t episode_index) {
  batch_.clear();
  const size_t q = space_->num_queries;
  const size_t start = (episode_index * batch_size_) % q;
  for (size_t i = 0; i < batch_size_; ++i) {
    batch_.push_back((start + i) % q);
  }
}

void Env::ClearSelection() {
  std::fill(selected_.begin(), selected_.end(), 0);
  std::fill(coverage_.begin(), coverage_.end(), 0.0f);
  budget_used_ = 0;
}

void Env::ApplySelect(size_t action) {
  assert(!selected_[action]);
  selected_[action] = 1;
  budget_used_ += space_->action_cost[action];
  const size_t q = space_->num_queries;
  for (size_t i = 0; i < q; ++i) {
    coverage_[i] += space_->ContributionOf(action, i);
  }
}

void Env::ApplyUnselect(size_t action) {
  assert(selected_[action]);
  selected_[action] = 0;
  budget_used_ -= space_->action_cost[action];
  const size_t q = space_->num_queries;
  for (size_t i = 0; i < q; ++i) {
    coverage_[i] -= space_->ContributionOf(action, i);
  }
}

namespace {

double ScoreOver(const ActionSpace& space, const std::vector<float>& coverage,
                 const std::vector<size_t>& queries) {
  double total_weight = 0.0;
  double total = 0.0;
  for (size_t q : queries) {
    const double w = space.query_weight[q];
    total_weight += w;
    const double ratio =
        static_cast<double>(coverage[q]) / space.query_target[q];
    total += w * std::min(1.0, ratio);
  }
  return total_weight > 0.0 ? total / total_weight : 0.0;
}

}  // namespace

double Env::CurrentScore() const {
  return ScoreOver(*space_, coverage_, batch_);
}

double Env::FullScore() const {
  std::vector<size_t> all(space_->num_queries);
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ScoreOver(*space_, coverage_, all);
}

void Env::RefreshStateVector(float phase, float progress) {
  const size_t a = space_->num_actions();
  const size_t q = space_->num_queries;
  for (size_t i = 0; i < a; ++i) state_[i] = selected_[i] ? 1.0f : 0.0f;
  for (size_t i = 0; i < q; ++i) {
    state_[a + i] =
        std::min(1.0f, coverage_[i] / space_->query_target[i]);
  }
  const float budget_frac =
      space_->budget == 0
          ? 0.0f
          : 1.0f - static_cast<float>(budget_used_) /
                       static_cast<float>(space_->budget);
  state_[a + q] = std::max(0.0f, budget_frac);
  state_[a + q + 1] = phase;
  state_[a + q + 2] = progress;
}

void Env::MaskUnselectedFitting() {
  const size_t remaining = space_->budget - std::min(space_->budget, budget_used_);
  for (size_t i = 0; i < mask_.size(); ++i) {
    mask_[i] = (!selected_[i] && space_->action_cost[i] <= remaining) ? 1 : 0;
  }
}

// ---------------------------------------------------------------- GslEnv

void GslEnv::Reset(size_t episode_index, util::Rng* rng) {
  (void)rng;
  PickBatch(episode_index);
  ClearSelection();
  steps_ = 0;
  last_score_ = 0.0;
  MaskUnselectedFitting();
  RefreshStateVector(/*phase=*/0.0f, /*progress=*/0.0f);
}

StepResult GslEnv::Step(size_t action) {
  assert(mask_[action]);
  ApplySelect(action);
  ++steps_;
  const double score = CurrentScore();
  StepResult result;
  result.reward = score - last_score_;
  last_score_ = score;

  MaskUnselectedFitting();
  bool any_valid = false;
  for (uint8_t m : mask_) {
    if (m) {
      any_valid = true;
      break;
    }
  }
  result.done = !any_valid;
  const float progress =
      space_->budget == 0 ? 1.0f
                          : std::min(1.0f, static_cast<float>(budget_used_) /
                                               static_cast<float>(space_->budget));
  RefreshStateVector(0.0f, progress);
  return result;
}

// ---------------------------------------------------------------- DrpEnv

void DrpEnv::Reset(size_t episode_index, util::Rng* rng) {
  PickBatch(episode_index);
  ClearSelection();
  steps_ = 0;
  removing_ = true;

  // Random initial set filling the budget.
  std::vector<size_t> order(space_->num_actions());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  for (size_t a : order) {
    if (budget_used_ + space_->action_cost[a] > space_->budget) continue;
    ApplySelect(a);
  }
  pre_swap_score_ = CurrentScore();
  MaskForPhase();
  RefreshStateVector(/*phase=*/1.0f, /*progress=*/0.0f);
}

void DrpEnv::MaskForPhase() {
  if (removing_) {
    for (size_t i = 0; i < mask_.size(); ++i) mask_[i] = selected_[i];
  } else {
    MaskUnselectedFitting();
    // Allow re-adding the removed action: the "no change" option.
    const size_t remaining = space_->budget - budget_used_;
    if (space_->action_cost[last_removed_] <= remaining) {
      mask_[last_removed_] = 1;
    }
  }
}

StepResult DrpEnv::Step(size_t action) {
  assert(mask_[action]);
  StepResult result;
  if (removing_) {
    pre_swap_score_ = CurrentScore();
    ApplyUnselect(action);
    last_removed_ = action;
    removing_ = false;
  } else {
    ApplySelect(action);
    result.reward = CurrentScore() - pre_swap_score_;
    removing_ = true;
    ++steps_;
    result.done = steps_ >= horizon_;
  }
  MaskForPhase();
  // A dead end (nothing selectable) also terminates.
  bool any_valid = false;
  for (uint8_t m : mask_) {
    if (m) {
      any_valid = true;
      break;
    }
  }
  if (!any_valid) result.done = true;
  RefreshStateVector(removing_ ? 1.0f : 0.0f,
                     horizon_ == 0 ? 1.0f
                                   : std::min(1.0f, static_cast<float>(steps_) /
                                                        static_cast<float>(horizon_)));
  return result;
}

// -------------------------------------------------------------- HybridEnv

void HybridEnv::Reset(size_t episode_index, util::Rng* rng) {
  (void)rng;
  PickBatch(episode_index);
  ClearSelection();
  growing_ = true;
  removing_ = true;
  refine_steps_ = 0;
  steps_ = 0;
  last_score_ = 0.0;
  MaskUnselectedFitting();
  RefreshStateVector(0.0f, 0.0f);
}

void HybridEnv::MaskForPhase() {
  if (growing_) {
    MaskUnselectedFitting();
    return;
  }
  if (removing_) {
    for (size_t i = 0; i < mask_.size(); ++i) mask_[i] = selected_[i];
  } else {
    MaskUnselectedFitting();
    const size_t remaining = space_->budget - budget_used_;
    if (space_->action_cost[last_removed_] <= remaining) {
      mask_[last_removed_] = 1;
    }
  }
}

StepResult HybridEnv::Step(size_t action) {
  assert(mask_[action]);
  StepResult result;
  ++steps_;
  if (growing_) {
    ApplySelect(action);
    const double score = CurrentScore();
    result.reward = score - last_score_;
    last_score_ = score;
    MaskUnselectedFitting();
    bool any_valid = false;
    for (uint8_t m : mask_) {
      if (m) {
        any_valid = true;
        break;
      }
    }
    if (!any_valid) {
      growing_ = false;  // budget filled: switch to refinement
      removing_ = true;
    }
  } else if (removing_) {
    pre_swap_score_ = CurrentScore();
    ApplyUnselect(action);
    last_removed_ = action;
    removing_ = false;
  } else {
    ApplySelect(action);
    result.reward = CurrentScore() - pre_swap_score_;
    removing_ = true;
    ++refine_steps_;
    result.done = refine_steps_ >= refine_horizon_;
  }
  MaskForPhase();
  bool any_valid = false;
  for (uint8_t m : mask_) {
    if (m) {
      any_valid = true;
      break;
    }
  }
  if (!any_valid) result.done = true;
  const float phase = growing_ ? 0.0f : (removing_ ? 1.0f : 0.5f);
  const float progress =
      growing_
          ? (space_->budget == 0
                 ? 1.0f
                 : std::min(1.0f, static_cast<float>(budget_used_) /
                                      static_cast<float>(space_->budget)))
          : (refine_horizon_ == 0
                 ? 1.0f
                 : std::min(1.0f, static_cast<float>(refine_steps_) /
                                      static_cast<float>(refine_horizon_)));
  RefreshStateVector(phase, progress);
  return result;
}

}  // namespace rl
}  // namespace asqp
