// RL environments over the tabular action space (Section 5.2).
//
// All environments share one state layout so the same network shape works
// across the ablation study:
//   [ per-action selected indicator  (A floats)
//   | per-query coverage ratio       (Q floats, capped at 1)
//   | budget remaining fraction      (1)
//   | phase flag                     (1; DRP remove=1 / add=0)
//   | episode progress               (1) ]
//
// Rewards are computed against the episode's *query batch* (the paper
// trains each epoch on a distinct batch of queries): the batch score is
//   sum_{q in batch} w_q min(1, cov_q / target_q) / sum_{q in batch} w_q.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rl/action_space.h"
#include "util/random.h"

namespace asqp {
namespace rl {

struct StepResult {
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  explicit Env(const ActionSpace* space, size_t batch_size);
  virtual ~Env() = default;

  size_t action_count() const { return space_->num_actions(); }
  size_t state_dim() const {
    return space_->num_actions() + space_->num_queries + 3;
  }

  /// Start an episode; `episode_index` rotates the query batch.
  virtual void Reset(size_t episode_index, util::Rng* rng) = 0;
  virtual StepResult Step(size_t action) = 0;

  const std::vector<float>& state() const { return state_; }
  const std::vector<uint8_t>& action_mask() const { return mask_; }
  const ActionSpace* space() const { return space_; }

  /// Actions currently selected (the approximation set under construction).
  std::vector<size_t> SelectedActions() const;

  /// Batch score of the current selection (reward basis).
  double CurrentScore() const;

  /// Score of the current selection over *all* representative queries
  /// (reported by trainers; batch-independent).
  double FullScore() const;

 protected:
  void PickBatch(size_t episode_index);
  void ClearSelection();
  void ApplySelect(size_t action);
  void ApplyUnselect(size_t action);
  void RefreshStateVector(float phase, float progress);
  /// Default mask: unselected actions that fit the remaining budget.
  void MaskUnselectedFitting();

  const ActionSpace* space_;
  size_t batch_size_;
  std::vector<size_t> batch_;  // query indices in the current batch

  std::vector<uint8_t> selected_;     // per action
  std::vector<float> coverage_;       // per query, raw contribution sums
  size_t budget_used_ = 0;

  std::vector<float> state_;
  std::vector<uint8_t> mask_;
};

/// \brief Gradual-Set-Learning: grow the set from empty; reward = score
/// delta; episode ends when the budget is exhausted (or nothing fits).
class GslEnv : public Env {
 public:
  GslEnv(const ActionSpace* space, size_t batch_size)
      : Env(space, batch_size) {}

  void Reset(size_t episode_index, util::Rng* rng) override;
  StepResult Step(size_t action) override;

 private:
  double last_score_ = 0.0;
  size_t steps_ = 0;
};

/// \brief Drop-One: start from a random full set; alternate (remove, add)
/// action pairs; reward after each add = score delta across the swap.
/// Re-adding the removed action is the paper's "choose not to change".
class DrpEnv : public Env {
 public:
  DrpEnv(const ActionSpace* space, size_t batch_size, size_t horizon)
      : Env(space, batch_size), horizon_(horizon) {}

  void Reset(size_t episode_index, util::Rng* rng) override;
  StepResult Step(size_t action) override;

 private:
  void MaskForPhase();

  size_t horizon_;
  size_t steps_ = 0;
  bool removing_ = true;
  double pre_swap_score_ = 0.0;
  size_t last_removed_ = 0;
};

/// \brief GSL warm-start followed by DRP refinement (the "DRP + GSL"
/// ablation row): grow greedily-by-policy to the budget, then swap for
/// `refine_horizon` additional steps.
class HybridEnv : public Env {
 public:
  HybridEnv(const ActionSpace* space, size_t batch_size,
            size_t refine_horizon)
      : Env(space, batch_size), refine_horizon_(refine_horizon) {}

  void Reset(size_t episode_index, util::Rng* rng) override;
  StepResult Step(size_t action) override;

 private:
  void MaskForPhase();

  size_t refine_horizon_;
  bool growing_ = true;
  bool removing_ = true;  // sub-phase once refining
  size_t refine_steps_ = 0;
  double last_score_ = 0.0;
  double pre_swap_score_ = 0.0;
  size_t last_removed_ = 0;
  size_t steps_ = 0;
};

/// Factory signature used by trainers to give each rollout worker its own
/// environment instance.
using EnvFactory = std::function<std::unique_ptr<Env>()>;

}  // namespace rl
}  // namespace asqp
