#include "rl/policy.h"

#include <cmath>

namespace asqp {
namespace rl {

Policy Policy::Create(size_t state_dim, size_t action_count, size_t hidden_dim,
                      bool with_critic, uint64_t seed) {
  Policy p;
  p.actor = std::make_shared<nn::Mlp>(
      std::vector<size_t>{state_dim, hidden_dim, hidden_dim, action_count},
      nn::Activation::kTanh, seed);
  if (with_critic) {
    p.critic = std::make_shared<nn::Mlp>(
        std::vector<size_t>{state_dim, hidden_dim, hidden_dim, 1},
        nn::Activation::kTanh, seed ^ 0x9e3779b9ULL);
  }
  return p;
}

Policy Policy::Clone() const {
  Policy out;
  if (actor) out.actor = std::make_shared<nn::Mlp>(*actor);
  if (critic) out.critic = std::make_shared<nn::Mlp>(*critic);
  return out;
}

Policy::ActResult Policy::Act(const std::vector<float>& state,
                              const std::vector<uint8_t>& mask,
                              util::Rng* rng, bool greedy) const {
  ActResult result;
  const std::vector<float> logits = actor->Forward(state);
  result.probs = nn::MaskedSoftmax(logits, mask);
  if (greedy) {
    size_t best = 0;
    float best_p = -1.0f;
    for (size_t i = 0; i < result.probs.size(); ++i) {
      if (result.probs[i] > best_p) {
        best_p = result.probs[i];
        best = i;
      }
    }
    result.action = best;
  } else {
    result.action = nn::SampleCategorical(result.probs, rng);
  }
  const float p = result.probs[result.action];
  result.log_prob = std::log(std::max(p, 1e-12f));
  if (critic) {
    result.value = critic->Forward(state)[0];
  }
  return result;
}

}  // namespace rl
}  // namespace asqp
