// Actor / critic networks (Section 5.1): both take the environment state;
// the actor outputs one logit per action (masked softmax -> policy), the
// critic outputs the state value.
#pragma once

#include <memory>

#include "nn/mlp.h"
#include "util/random.h"

namespace asqp {
namespace rl {

/// \brief A trained (or in-training) policy, shareable across rollout
/// workers. The critic may be absent (REINFORCE ablation).
struct Policy {
  std::shared_ptr<nn::Mlp> actor;
  std::shared_ptr<nn::Mlp> critic;

  struct ActResult {
    size_t action = 0;
    float log_prob = 0.0f;
    float value = 0.0f;
    std::vector<float> probs;
  };

  /// Sample (or argmax) an action under the masked policy.
  ActResult Act(const std::vector<float>& state,
                const std::vector<uint8_t>& mask, util::Rng* rng,
                bool greedy = false) const;

  /// Deep copy (for per-worker snapshots).
  Policy Clone() const;

  static Policy Create(size_t state_dim, size_t action_count,
                       size_t hidden_dim, bool with_critic, uint64_t seed);
};

}  // namespace rl
}  // namespace asqp
