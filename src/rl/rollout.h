// Trajectory storage plus Generalized Advantage Estimation.
#pragma once

#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

namespace asqp {
namespace rl {

/// \brief Flat storage of transitions collected over possibly many
/// episodes. `episode_start[i]` marks where episode i begins.
struct RolloutBuffer {
  std::vector<std::vector<float>> states;
  std::vector<std::vector<uint8_t>> masks;
  std::vector<size_t> actions;
  std::vector<float> rewards;
  std::vector<float> values;     // V(s) under the collecting policy
  std::vector<float> log_probs;  // log pi_old(a|s)
  std::vector<std::vector<float>> old_probs;  // full old distribution (KL)
  std::vector<uint8_t> dones;

  // Filled by ComputeAdvantages:
  std::vector<float> advantages;
  std::vector<float> returns;

  size_t size() const { return actions.size(); }

  void Clear() {
    states.clear();
    masks.clear();
    actions.clear();
    rewards.clear();
    values.clear();
    log_probs.clear();
    old_probs.clear();
    dones.clear();
    advantages.clear();
    returns.clear();
  }

  void Append(RolloutBuffer&& other) {
    auto move_into = [](auto& dst, auto& src) {
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    };
    move_into(states, other.states);
    move_into(masks, other.masks);
    move_into(actions, other.actions);
    move_into(rewards, other.rewards);
    move_into(values, other.values);
    move_into(log_probs, other.log_probs);
    move_into(old_probs, other.old_probs);
    move_into(dones, other.dones);
    other.Clear();
  }

  /// GAE(lambda): advantages + returns from rewards/values/dones. Episode
  /// boundaries are the `dones` flags; terminal bootstrap value is 0.
  void ComputeAdvantages(double gamma, double lambda) {
    const size_t n = size();
    advantages.assign(n, 0.0f);
    returns.assign(n, 0.0f);
    double gae = 0.0;
    for (size_t i = n; i-- > 0;) {
      const double next_value =
          (dones[i] || i + 1 >= n) ? 0.0 : static_cast<double>(values[i + 1]);
      const double not_done = dones[i] ? 0.0 : 1.0;
      const double delta =
          rewards[i] + gamma * next_value - static_cast<double>(values[i]);
      gae = delta + gamma * lambda * not_done * gae;
      if (dones[i]) gae = delta;  // restart accumulation at episode ends
      advantages[i] = static_cast<float>(gae);
      returns[i] = static_cast<float>(gae + values[i]);
    }
  }

  /// Plain discounted returns-to-go (REINFORCE, which has no critic).
  void ComputeReturnsToGo(double gamma) {
    const size_t n = size();
    returns.assign(n, 0.0f);
    double running = 0.0;
    for (size_t i = n; i-- > 0;) {
      if (dones[i]) running = 0.0;
      running = rewards[i] + gamma * running;
      returns[i] = static_cast<float>(running);
    }
    // Advantage = return - batch mean (variance-reduction baseline).
    double mean = 0.0;
    for (float r : returns) mean += r;
    mean /= n == 0 ? 1.0 : static_cast<double>(n);
    advantages.assign(n, 0.0f);
    for (size_t i = 0; i < n; ++i) {
      advantages[i] = static_cast<float>(returns[i] - mean);
    }
  }

  /// Normalize advantages to zero mean / unit variance (standard PPO).
  void NormalizeAdvantages() {
    const size_t n = advantages.size();
    if (n < 2) return;
    double mean = 0.0;
    for (float a : advantages) mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (float a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const double stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    for (float& a : advantages) {
      a = static_cast<float>((a - mean) / stddev);
    }
  }
};

}  // namespace rl
}  // namespace asqp
