#include "rl/trainer.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "io/io.h"
#include "nn/mlp.h"
#include "rl/rollout.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace asqp {
namespace rl {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kPpo: return "ppo";
    case Algorithm::kA2c: return "a2c";
    case Algorithm::kReinforce: return "reinforce";
  }
  return "?";
}

namespace {

/// Collect one episode into `buffer` using `policy` (sampling).
/// Returns the episode's final full score.
double CollectEpisode(Env* env, const Policy& policy, size_t episode_index,
                      size_t max_steps, double diversity_coef,
                      util::Rng* rng, RolloutBuffer* buffer) {
  const ActionSpace* space_for_diversity =
      diversity_coef > 0.0 ? env->space() : nullptr;
  env->Reset(episode_index, rng);
  size_t steps = 0;
  while (steps < max_steps) {
    // Dead-end guard: no valid action.
    bool any_valid = false;
    for (uint8_t m : env->action_mask()) {
      if (m) {
        any_valid = true;
        break;
      }
    }
    if (!any_valid) break;

    const Policy::ActResult act = policy.Act(env->state(), env->action_mask(), rng);
    buffer->states.push_back(env->state());
    buffer->masks.push_back(env->action_mask());
    buffer->actions.push_back(act.action);
    buffer->values.push_back(act.value);
    buffer->log_probs.push_back(act.log_prob);
    buffer->old_probs.push_back(act.probs);

    const StepResult step = env->Step(act.action);
    double reward = step.reward;
    ++steps;
    const bool done = step.done || steps >= max_steps;
    if (done && diversity_coef > 0.0 && space_for_diversity != nullptr) {
      // Diversity regularizer: distinct base tuples / total budget.
      const storage::ApproximationSet set =
          space_for_diversity->Materialize(env->SelectedActions());
      const double frac =
          space_for_diversity->budget == 0
              ? 0.0
              : static_cast<double>(set.TotalTuples()) /
                    static_cast<double>(space_for_diversity->budget);
      reward += diversity_coef * frac;
    }
    buffer->rewards.push_back(static_cast<float>(reward));
    buffer->dones.push_back(done ? 1 : 0);
    if (step.done) break;
  }
  if (!buffer->dones.empty()) buffer->dones.back() = 1;
  return env->FullScore();
}

/// One gradient step over a minibatch of transitions.
struct UpdateStats {
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
};

UpdateStats UpdateMinibatch(const TrainerConfig& config, Policy* policy,
                            nn::Adam* actor_opt, nn::Adam* critic_opt,
                            const RolloutBuffer& buffer,
                            const std::vector<size_t>& indices) {
  UpdateStats stats;
  const bool use_clip = config.algorithm == Algorithm::kPpo;
  const bool use_critic = config.algorithm != Algorithm::kReinforce;
  const float inv_n = 1.0f / static_cast<float>(indices.size());

  for (size_t idx : indices) {
    const std::vector<float>& state = buffer.states[idx];
    const std::vector<uint8_t>& mask = buffer.masks[idx];
    const size_t action = buffer.actions[idx];
    const float advantage = buffer.advantages[idx];
    const float old_log_prob = buffer.log_probs[idx];

    // Actor forward.
    nn::Mlp::Cache actor_cache;
    const std::vector<float> logits =
        policy->actor->Forward(state, &actor_cache);
    const std::vector<float> probs = nn::MaskedSoftmax(logits, mask);
    const float p_a = std::max(probs[action], 1e-12f);
    const float log_prob = std::log(p_a);
    const float entropy = nn::Entropy(probs);
    stats.entropy += entropy * inv_n;

    // Policy-gradient coefficient g: dL/dlogp(a).
    float g = 0.0f;
    if (use_clip) {
      const float ratio = std::exp(log_prob - old_log_prob);
      const float lo = 1.0f - static_cast<float>(config.clip_eps);
      const float hi = 1.0f + static_cast<float>(config.clip_eps);
      const float unclipped = ratio * advantage;
      const float clipped = std::clamp(ratio, lo, hi) * advantage;
      // d(-min)/dlogp: zero when the clipped branch is active & binding.
      if (unclipped <= clipped) {
        g = -unclipped;  // d(ratio*A)/dlogp = ratio*A
      } else if (ratio >= lo && ratio <= hi) {
        g = -ratio * advantage;
      } else {
        g = 0.0f;
      }
      stats.policy_loss += -std::min(unclipped, clipped) * inv_n;
    } else {
      g = -advantage;  // vanilla policy gradient
      stats.policy_loss += -log_prob * advantage * inv_n;
    }

    // dL/dlogit_i = g * (delta_ia - p_i)
    //             - entropy_coef * dH/dlogit_i
    //             + kl_coef * (p_i - p_old_i)        (PPO only).
    std::vector<float> dlogits(logits.size(), 0.0f);
    for (size_t i = 0; i < dlogits.size(); ++i) {
      if (!mask[i]) continue;
      const float p_i = probs[i];
      float d = g * ((i == action ? 1.0f : 0.0f) - p_i);
      if (config.entropy_coef > 0.0 && p_i > 1e-12f) {
        // dH/dz_i = -p_i (log p_i + H); loss has -entropy_coef * H.
        d += static_cast<float>(config.entropy_coef) * p_i *
             (std::log(p_i) + entropy);
      }
      if (use_clip && config.kl_coef > 0.0) {
        d += static_cast<float>(config.kl_coef) *
             (p_i - buffer.old_probs[idx][i]);
      }
      dlogits[i] = d * inv_n;
    }
    policy->actor->Backward(actor_cache, dlogits);

    // Critic update toward the empirical return.
    if (use_critic) {
      nn::Mlp::Cache critic_cache;
      const float v = policy->critic->Forward(state, &critic_cache)[0];
      const float err = v - buffer.returns[idx];
      stats.value_loss += 0.5f * err * err * inv_n;
      policy->critic->Backward(critic_cache, {err * inv_n});
    }
  }
  actor_opt->Step();
  if (use_critic && critic_opt != nullptr) critic_opt->Step();
  return stats;
}

/// True when the policy's weights or the aggregated update statistics
/// contain NaN/Inf — the signal that this iteration's update diverged.
bool UpdateDiverged(const Policy& policy, const UpdateStats& stats,
                    double iter_score) {
  if (!std::isfinite(stats.policy_loss) || !std::isfinite(stats.value_loss) ||
      !std::isfinite(stats.entropy) || !std::isfinite(iter_score)) {
    return true;
  }
  if (policy.actor != nullptr && policy.actor->HasNonFiniteParameters()) {
    return true;
  }
  if (policy.critic != nullptr && policy.critic->HasNonFiniteParameters()) {
    return true;
  }
  return false;
}

/// Mutable training state outside TrainResult that a checkpoint must
/// capture for a deterministic resume.
struct LoopState {
  util::Rng* rng = nullptr;
  size_t episode_counter = 0;
  double early_stop_best = -1.0;
  size_t early_stop_since_best = 0;
  double learning_rate = 0.0;
  size_t rollbacks = 0;
  size_t next_iteration = 0;
};

TrainCheckpoint Snapshot(const TrainResult& result, const nn::Adam& actor_opt,
                         const nn::Adam* critic_opt, const LoopState& loop) {
  TrainCheckpoint ckpt;
  ckpt.policy = result.policy.Clone();
  ckpt.actor_opt = actor_opt.GetState();
  if (critic_opt != nullptr) ckpt.critic_opt = critic_opt->GetState();
  ckpt.rng = loop.rng->GetState();
  ckpt.learning_rate = loop.learning_rate;
  ckpt.next_iteration = loop.next_iteration;
  ckpt.episode_counter = loop.episode_counter;
  ckpt.iteration_scores = result.iteration_scores;
  ckpt.best_score = result.best_score;
  ckpt.episodes_run = result.episodes_run;
  ckpt.early_stop_best = loop.early_stop_best;
  ckpt.early_stop_since_best = loop.early_stop_since_best;
  ckpt.divergence_rollbacks = loop.rollbacks;
  return ckpt;
}

/// Restore a snapshot *in place*: the optimizers keep their raw pointers
/// into `result->policy`'s networks, so weights are copied rather than the
/// Policy objects swapped.
util::Status ApplyCheckpoint(const TrainCheckpoint& ckpt, TrainResult* result,
                             nn::Adam* actor_opt, nn::Adam* critic_opt,
                             LoopState* loop) {
  if (ckpt.policy.actor == nullptr ||
      ckpt.policy.actor->Dims() != result->policy.actor->Dims()) {
    return util::Status::InvalidArgument(
        "checkpoint actor shape does not match this training run");
  }
  if ((ckpt.policy.critic != nullptr) != (result->policy.critic != nullptr)) {
    return util::Status::InvalidArgument(
        "checkpoint critic presence does not match the algorithm");
  }
  if (ckpt.policy.critic != nullptr &&
      ckpt.policy.critic->Dims() != result->policy.critic->Dims()) {
    return util::Status::InvalidArgument(
        "checkpoint critic shape does not match this training run");
  }
  result->policy.actor->CopyWeightsFrom(*ckpt.policy.actor);
  if (result->policy.critic != nullptr) {
    result->policy.critic->CopyWeightsFrom(*ckpt.policy.critic);
  }
  if (!actor_opt->SetState(ckpt.actor_opt)) {
    return util::Status::InvalidArgument(
        "checkpoint actor optimizer state has the wrong size");
  }
  if (critic_opt != nullptr && !critic_opt->SetState(ckpt.critic_opt)) {
    return util::Status::InvalidArgument(
        "checkpoint critic optimizer state has the wrong size");
  }
  actor_opt->set_lr(ckpt.learning_rate);
  if (critic_opt != nullptr) critic_opt->set_lr(ckpt.learning_rate);
  loop->rng->SetState(ckpt.rng);
  loop->learning_rate = ckpt.learning_rate;
  loop->next_iteration = ckpt.next_iteration;
  loop->episode_counter = ckpt.episode_counter;
  loop->early_stop_best = ckpt.early_stop_best;
  loop->early_stop_since_best = ckpt.early_stop_since_best;
  loop->rollbacks = ckpt.divergence_rollbacks;
  result->iteration_scores = ckpt.iteration_scores;
  result->best_score = ckpt.best_score;
  result->episodes_run = ckpt.episodes_run;
  result->iterations_run = ckpt.next_iteration;
  return util::Status::OK();
}

}  // namespace

std::vector<size_t> RunPolicy(Env* env, const Policy& policy, uint64_t seed,
                              bool greedy, size_t max_steps) {
  util::Rng rng(seed);
  env->Reset(/*episode_index=*/0, &rng);
  for (size_t step = 0; step < max_steps; ++step) {
    bool any_valid = false;
    for (uint8_t m : env->action_mask()) {
      if (m) {
        any_valid = true;
        break;
      }
    }
    if (!any_valid) break;
    const Policy::ActResult act =
        policy.Act(env->state(), env->action_mask(), &rng, greedy);
    if (env->Step(act.action).done) break;
  }
  return env->SelectedActions();
}

util::Result<TrainResult> Train(const EnvFactory& factory,
                                const TrainerConfig& config) {
  // Probe one environment for dimensions.
  std::unique_ptr<Env> probe = factory();
  if (probe == nullptr) {
    return util::Status::InvalidArgument("env factory returned null");
  }
  if (probe->action_count() == 0) {
    return util::Status::InvalidArgument("environment has no actions");
  }

  TrainResult result;
  result.policy = Policy::Create(
      probe->state_dim(), probe->action_count(), config.hidden_dim,
      /*with_critic=*/config.algorithm != Algorithm::kReinforce, config.seed);

  nn::Adam::Options opt_options;
  opt_options.lr = config.learning_rate;
  opt_options.max_grad_norm = config.max_grad_norm;
  nn::Adam actor_opt(result.policy.actor.get(), opt_options);
  std::unique_ptr<nn::Adam> critic_opt;
  if (result.policy.critic) {
    critic_opt =
        std::make_unique<nn::Adam>(result.policy.critic.get(), opt_options);
  }

  // Parallel actor-learners: one env per worker.
  const size_t num_workers = std::max<size_t>(1, config.num_workers);
  std::vector<std::unique_ptr<Env>> envs;
  envs.push_back(std::move(probe));
  for (size_t w = 1; w < num_workers; ++w) envs.push_back(factory());
  util::ThreadPool pool(num_workers);

  util::Rng main_rng(config.seed);
  LoopState loop;
  loop.rng = &main_rng;
  loop.learning_rate = config.learning_rate;

  // Resume an interrupted run: restore the full training state from disk.
  if (config.resume_from_checkpoint && !config.checkpoint_path.empty()) {
    util::Result<TrainCheckpoint> loaded =
        io::LoadCheckpoint(config.checkpoint_path);
    if (loaded.ok()) {
      ASQP_RETURN_NOT_OK(ApplyCheckpoint(loaded.value(), &result, &actor_opt,
                                         critic_opt.get(), &loop));
      result.resumed = true;
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      // A missing checkpoint means a fresh run; a corrupt one is an error.
      return loaded.status();
    }
  }

  // Last known-good iteration snapshot, the rollback target when an
  // update diverges.
  TrainCheckpoint last_good = Snapshot(result, actor_opt, critic_opt.get(),
                                       loop);

  size_t iter = loop.next_iteration;
  while (iter < config.iterations) {
    // --- Collection phase: workers roll out snapshots of the policy.
    const Policy snapshot = result.policy.Clone();
    std::vector<RolloutBuffer> worker_buffers(num_workers);
    std::vector<double> worker_scores(num_workers, 0.0);
    std::vector<size_t> worker_episodes(num_workers, 0);

    const size_t episodes =
        std::max<size_t>(1, config.episodes_per_iteration);
    std::vector<uint64_t> worker_seeds(num_workers);
    for (size_t w = 0; w < num_workers; ++w) worker_seeds[w] = main_rng.Next();

    pool.ParallelFor(num_workers, [&](size_t w) {
      util::Rng rng(worker_seeds[w]);
      // Worker w handles episodes w, w+W, w+2W, ...
      for (size_t e = w; e < episodes; e += num_workers) {
        const double score = CollectEpisode(
            envs[w].get(), snapshot, loop.episode_counter + e,
            config.max_episode_steps, config.diversity_coef, &rng,
            &worker_buffers[w]);
        worker_scores[w] += score;
        ++worker_episodes[w];
      }
    });
    loop.episode_counter += episodes;

    RolloutBuffer buffer;
    double iter_score = 0.0;
    size_t iter_episodes = 0;
    for (size_t w = 0; w < num_workers; ++w) {
      buffer.Append(std::move(worker_buffers[w]));
      iter_score += worker_scores[w];
      iter_episodes += worker_episodes[w];
    }
    if (buffer.size() == 0) {
      return util::Status::ExecutionError(
          "rollout collection produced no transitions");
    }
    iter_score /= static_cast<double>(std::max<size_t>(1, iter_episodes));

    // --- Advantage estimation.
    if (config.algorithm == Algorithm::kReinforce) {
      buffer.ComputeReturnsToGo(config.gamma);
    } else {
      buffer.ComputeAdvantages(config.gamma, config.gae_lambda);
    }
    buffer.NormalizeAdvantages();

    // --- Update phase.
    const size_t epochs =
        config.algorithm == Algorithm::kPpo ? config.update_epochs : 1;
    std::vector<size_t> order(buffer.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    UpdateStats iter_stats;
    for (size_t epoch = 0; epoch < epochs; ++epoch) {
      main_rng.Shuffle(&order);
      for (size_t start = 0; start < order.size();
           start += config.minibatch_size) {
        const size_t end =
            std::min(order.size(), start + config.minibatch_size);
        std::vector<size_t> minibatch(order.begin() + start,
                                      order.begin() + end);
        const UpdateStats stats =
            UpdateMinibatch(config, &result.policy, &actor_opt,
                            critic_opt.get(), buffer, minibatch);
        iter_stats.policy_loss += stats.policy_loss;
        iter_stats.value_loss += stats.value_loss;
        iter_stats.entropy += stats.entropy;
      }
    }

    // --- Divergence guard: a non-finite loss, score, or weight means this
    // iteration produced garbage. Roll back to the last good snapshot,
    // back off the learning rate, and retry — bounded, so a persistent
    // numerical failure surfaces as an error instead of a broken policy.
    if (UpdateDiverged(result.policy, iter_stats, iter_score)) {
      if (loop.rollbacks >= config.max_divergence_retries) {
        return util::Status::ExecutionError(util::Format(
            "training diverged at iteration %zu and exhausted %zu "
            "rollback retries",
            iter, config.max_divergence_retries));
      }
      const size_t rollbacks = loop.rollbacks + 1;
      ASQP_RETURN_NOT_OK(ApplyCheckpoint(last_good, &result, &actor_opt,
                                         critic_opt.get(), &loop));
      loop.rollbacks = rollbacks;
      loop.learning_rate *= config.divergence_lr_backoff;
      actor_opt.set_lr(loop.learning_rate);
      if (critic_opt != nullptr) critic_opt->set_lr(loop.learning_rate);
      iter = loop.next_iteration;
      continue;
    }

    // --- Commit the iteration.
    result.iteration_scores.push_back(iter_score);
    result.episodes_run += iter_episodes;
    result.iterations_run = iter + 1;
    result.best_score = std::max(result.best_score, iter_score);

    // --- Early stopping on the training curve.
    if (iter_score > loop.early_stop_best + config.early_stop_min_delta) {
      loop.early_stop_best = iter_score;
      loop.early_stop_since_best = 0;
    } else {
      ++loop.early_stop_since_best;
    }

    ++iter;
    loop.next_iteration = iter;
    last_good = Snapshot(result, actor_opt, critic_opt.get(), loop);
    if (!config.checkpoint_path.empty() && config.checkpoint_interval > 0 &&
        (iter % config.checkpoint_interval == 0 ||
         iter == config.iterations)) {
      ASQP_RETURN_NOT_OK(
          io::SaveCheckpoint(last_good, config.checkpoint_path));
    }

    if (config.early_stop_patience > 0 &&
        loop.early_stop_since_best >= config.early_stop_patience) {
      break;
    }
  }
  result.divergence_rollbacks = loop.rollbacks;
  result.final_learning_rate = loop.learning_rate;
  return result;
}

}  // namespace rl
}  // namespace asqp
