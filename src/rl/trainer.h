// RL trainers (Section 5): PPO actor-critic (the full ASQP-RL agent), A2C
// (the "-ppo" ablation: actor-critic without the proximal clipped
// surrogate / KL penalty), and REINFORCE (the "-ppo -ac" ablation: no
// critic at all). Rollouts are collected by parallel workers, each holding
// a snapshot of the current policy — the paper's asynchronous
// actor-learner architecture, scaled to the local machine.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rl/env.h"
#include "rl/policy.h"
#include "util/status.h"

namespace asqp {
namespace rl {

enum class Algorithm {
  kPpo,        // clipped surrogate + KL penalty + critic (full agent)
  kA2c,        // critic, no clipping / KL ("- ppo")
  kReinforce,  // no critic ("- ppo - ac")
};

const char* AlgorithmName(Algorithm a);

struct TrainerConfig {
  Algorithm algorithm = Algorithm::kPpo;

  size_t iterations = 40;
  size_t episodes_per_iteration = 8;  // split across workers
  size_t num_workers = 4;             // parallel actor-learners
  size_t max_episode_steps = 512;

  // Optimization.
  double learning_rate = 5e-4;
  size_t update_epochs = 4;     // PPO epochs per iteration (1 for A2C/RF)
  size_t minibatch_size = 64;
  double gamma = 0.995;
  double gae_lambda = 0.95;
  double clip_eps = 0.2;        // PPO clip range
  double kl_coef = 0.2;         // paper default
  double entropy_coef = 0.001;  // paper default
  double max_grad_norm = 1.0;
  size_t hidden_dim = 128;

  /// Terminal-reward bonus proportional to the fraction of distinct base
  /// tuples in the selection (the Section 5.1 diversity regularizer).
  double diversity_coef = 0.0;

  /// Early stopping: stop when the best full score has not improved by
  /// `early_stop_min_delta` for `early_stop_patience` iterations
  /// (0 = disabled).
  size_t early_stop_patience = 0;
  double early_stop_min_delta = 1e-3;

  uint64_t seed = 1;

  // ---- Resilience (divergence recovery + checkpoint/resume).

  /// When an update produces non-finite losses, gradients, or weights, the
  /// trainer rolls back to the last good iteration snapshot, multiplies
  /// the learning rate by `divergence_lr_backoff`, and retries — up to
  /// `max_divergence_retries` rollbacks before Train returns
  /// kExecutionError instead of a garbage policy.
  size_t max_divergence_retries = 3;
  double divergence_lr_backoff = 0.5;

  /// Periodic checkpointing: every `checkpoint_interval` iterations the
  /// full training state (policy + Adam moments + RNG + counters) is
  /// written to `checkpoint_path` (empty = disabled). With
  /// `resume_from_checkpoint`, Train first loads `checkpoint_path` (if it
  /// exists) and continues from the stored iteration; an interrupted run
  /// resumed this way reproduces the uninterrupted run bit-for-bit.
  std::string checkpoint_path;
  size_t checkpoint_interval = 1;
  bool resume_from_checkpoint = false;
};

/// \brief Everything needed to resume (or roll back) training
/// deterministically: policy weights, optimizer moments, the main RNG
/// stream, and all loop counters including early-stopping state.
struct TrainCheckpoint {
  Policy policy;
  nn::Adam::State actor_opt;
  nn::Adam::State critic_opt;  // empty when the algorithm has no critic
  util::Rng::State rng;
  double learning_rate = 0.0;
  size_t next_iteration = 0;
  size_t episode_counter = 0;
  std::vector<double> iteration_scores;
  double best_score = 0.0;
  size_t episodes_run = 0;
  double early_stop_best = -1.0;
  size_t early_stop_since_best = 0;
  size_t divergence_rollbacks = 0;
};

struct TrainResult {
  Policy policy;
  /// Mean end-of-episode full score per iteration (training curve).
  std::vector<double> iteration_scores;
  double best_score = 0.0;
  size_t episodes_run = 0;
  size_t iterations_run = 0;
  /// Times a diverged update was rolled back to the last good snapshot.
  size_t divergence_rollbacks = 0;
  /// Learning rate after any divergence backoff.
  double final_learning_rate = 0.0;
  /// True when training continued from an on-disk checkpoint.
  bool resumed = false;
};

/// Train a policy over environments produced by `factory`. All
/// environments must share action_count / state_dim.
[[nodiscard]] util::Result<TrainResult> Train(const EnvFactory& factory,
                                const TrainerConfig& config);

/// Roll out `policy` once (greedy or sampled) and return the selected
/// actions of the final state. Used at inference (Algorithm 2).
std::vector<size_t> RunPolicy(Env* env, const Policy& policy, uint64_t seed,
                              bool greedy, size_t max_steps = 4096);

}  // namespace rl
}  // namespace asqp
