#include "sample/sampler.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"

namespace asqp {
namespace sample {

std::vector<size_t> UniformSample(size_t n, size_t target, util::Rng* rng) {
  return rng->SampleIndices(n, target);
}

std::vector<size_t> StratifiedSample(const std::vector<size_t>& strata,
                                     size_t num_strata, size_t target,
                                     util::Rng* rng) {
  if (strata.empty() || target == 0) return {};
  // Bucket items by stratum.
  std::vector<std::vector<size_t>> buckets(num_strata);
  for (size_t i = 0; i < strata.size(); ++i) {
    if (strata[i] < num_strata) buckets[strata[i]].push_back(i);
  }
  // sqrt allocation.
  double total_weight = 0.0;
  std::vector<double> weights(num_strata, 0.0);
  for (size_t s = 0; s < num_strata; ++s) {
    weights[s] = std::sqrt(static_cast<double>(buckets[s].size()));
    total_weight += weights[s];
  }
  if (total_weight == 0.0) return {};

  std::vector<size_t> out;
  out.reserve(std::min(target, strata.size()));
  size_t assigned = 0;
  for (size_t s = 0; s < num_strata; ++s) {
    if (buckets[s].empty()) continue;
    size_t quota = static_cast<size_t>(
        std::floor(static_cast<double>(target) * weights[s] / total_weight));
    quota = std::max<size_t>(quota, 1);  // never starve a non-empty stratum
    quota = std::min(quota, buckets[s].size());
    const std::vector<size_t> picks = rng->SampleIndices(buckets[s].size(), quota);
    for (size_t p : picks) out.push_back(buckets[s][p]);
    assigned += quota;
  }
  // Top up (or trim) to exactly min(target, n): floor allocation may
  // under-fill; per-stratum minimums may over-fill.
  const size_t want = std::min(target, strata.size());
  if (out.size() > want) {
    rng->Shuffle(&out);
    out.resize(want);
  } else if (out.size() < want) {
    std::vector<bool> chosen(strata.size(), false);
    for (size_t i : out) chosen[i] = true;
    std::vector<size_t> rest;
    for (size_t i = 0; i < strata.size(); ++i) {
      if (!chosen[i]) rest.push_back(i);
    }
    rng->Shuffle(&rest);
    for (size_t i = 0; i < rest.size() && out.size() < want; ++i) {
      out.push_back(rest[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

util::Result<std::vector<size_t>> VariationalSubsample(
    const std::vector<embed::Vector>& points, size_t target,
    VariationalOptions options) {
  if (points.empty()) {
    return util::Status::InvalidArgument(
        "variational subsampling over an empty pool");
  }
  util::Rng rng(options.seed);
  if (target >= points.size()) {
    std::vector<size_t> all(points.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  const size_t k = std::min(options.num_strata, points.size());
  cluster::KMeansOptions kopts;
  kopts.seed = options.seed;
  ASQP_ASSIGN_OR_RETURN(cluster::ClusteringResult clustering,
                        cluster::KMeans(points, k, kopts));
  return StratifiedSample(clustering.assignment, k, target, &rng);
}

}  // namespace sample
}  // namespace asqp
