// Subsampling strategies over candidate tuple pools.
//
// `VariationalSubsample` is our stand-in for the paper's "variational
// subsampling" [VerdictDB]: instead of fitting a latent-variable
// probabilistic model, we cluster the tuple embeddings into latent strata
// and allocate the sample budget across strata by the square-root rule
// (sqrt allocation preserves rare strata that uniform sampling would
// starve — the property the pipeline needs from variational subsampling).
#pragma once

#include <cstddef>
#include <vector>

#include "embed/vector_ops.h"
#include "util/random.h"
#include "util/status.h"

namespace asqp {
namespace sample {

/// Uniformly sample `target` distinct indices from [0, n).
std::vector<size_t> UniformSample(size_t n, size_t target, util::Rng* rng);

/// Stratified sampling: `strata[i]` is the stratum of item i. The budget is
/// split across strata proportionally to sqrt(stratum size), each stratum
/// sampled uniformly. Returns sorted distinct indices.
std::vector<size_t> StratifiedSample(const std::vector<size_t>& strata,
                                     size_t num_strata, size_t target,
                                     util::Rng* rng);

struct VariationalOptions {
  /// Number of latent strata (clusters); clamped to the pool size.
  size_t num_strata = 16;
  uint64_t seed = 23;
};

/// Variational subsampling over embedded tuples: k-means into latent
/// strata, then sqrt-allocated stratified sampling. Returns sorted indices
/// into `points`.
[[nodiscard]] util::Result<std::vector<size_t>> VariationalSubsample(
    const std::vector<embed::Vector>& points, size_t target,
    VariationalOptions options = {});

}  // namespace sample
}  // namespace asqp
