#include "serve/answer_cache.h"

#include <algorithm>
#include <utility>

namespace asqp {
namespace serve {

size_t EstimateAnswerBytes(const core::AnswerResult& result) {
  size_t bytes = sizeof(core::AnswerResult);
  bytes += result.fallback_reason.size();
  for (const std::string& name : result.result.column_names()) {
    bytes += sizeof(std::string) + name.size();
  }
  for (const auto& row : result.result.rows()) {
    bytes += sizeof(row) + row.size() * sizeof(storage::Value);
    for (const storage::Value& v : row) {
      if (v.type() == storage::ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

AnswerCache::AnswerCache(size_t byte_budget, size_t num_shards)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / std::max<size_t>(1, num_shards)),
      shards_(std::max<size_t>(1, num_shards)) {}

std::shared_ptr<const core::AnswerResult> AnswerCache::Lookup(
    const sql::QueryFingerprint& fp, uint64_t generation) {
  Shard& shard = ShardFor(fp.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fp.hash);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  Entry& entry = *it->second;
  if (entry.generation != generation) {
    // FineTune swapped the approximation set since this was cached.
    shard.bytes -= entry.bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.invalidations;
    ++shard.misses;
    return nullptr;
  }
  if (entry.canonical != fp.canonical) {
    ++shard.hash_collisions;
    ++shard.misses;
    return nullptr;
  }
  // Move to the front of the LRU list (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return entry.answer;
}

void AnswerCache::Insert(const sql::QueryFingerprint& fp, uint64_t generation,
                         core::AnswerResult result) {
  const size_t bytes = EstimateAnswerBytes(result);
  if (bytes > shard_budget_) return;  // would evict the whole shard
  Shard& shard = ShardFor(fp.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fp.hash);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  Entry entry;
  entry.hash = fp.hash;
  entry.canonical = fp.canonical;
  entry.generation = generation;
  entry.bytes = bytes;
  entry.answer =
      std::make_shared<const core::AnswerResult>(std::move(result));
  shard.lru.push_front(std::move(entry));
  shard.index[fp.hash] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.hash);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  // A single over-budget entry cannot remain (bytes <= shard_budget_ was
  // checked above), so the loop always terminates under budget.
}

void AnswerCache::InvalidateOlderThan(uint64_t generation) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->generation < generation) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->hash);
        it = shard.lru.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void AnswerCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

AnswerCache::Stats AnswerCache::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.invalidations += shard.invalidations;
    out.hash_collisions += shard.hash_collisions;
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace serve
}  // namespace asqp
