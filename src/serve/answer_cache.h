// Sharded, concurrent, fingerprint-keyed answer cache for the serving
// layer. Entries are complete AnswerResults keyed by sql::QueryFingerprint
// (64-bit hash + collision-checked canonical text) and stamped with the
// model's approximation-set generation: a FineTune bumps the generation,
// which lazily invalidates every older entry on its next lookup (plus an
// eager sweep via InvalidateOlderThan). Eviction is LRU under a byte
// budget, maintained independently per shard so concurrent sessions on
// different shards never contend on one lock.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "sql/canonicalize.h"
#include "util/annotations.h"

namespace asqp {
namespace serve {

/// Rough in-memory footprint of a cached answer (values + strings +
/// column names + row overhead). Used for the cache's byte budget.
size_t EstimateAnswerBytes(const core::AnswerResult& result);

class AnswerCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    /// Entries dropped to stay under the byte budget (LRU order).
    uint64_t evictions = 0;
    /// Entries dropped because their generation went stale.
    uint64_t invalidations = 0;
    /// Lookups that matched a hash but not the canonical text.
    uint64_t hash_collisions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  /// `byte_budget` caps the summed EstimateAnswerBytes of live entries
  /// (0 disables caching entirely); the budget is split evenly across
  /// `num_shards` independently locked shards.
  explicit AnswerCache(size_t byte_budget, size_t num_shards = 8);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Return the cached answer for `fp` at `generation`, or nullptr. An
  /// entry with a stale generation is erased (counted as invalidation +
  /// miss); a hash collision with different canonical text is a miss.
  /// The returned pointer is immutable and safe to read concurrently
  /// with eviction (shared ownership).
  std::shared_ptr<const core::AnswerResult> Lookup(
      const sql::QueryFingerprint& fp, uint64_t generation);

  /// Insert (or replace) the answer for `fp` at `generation`, then evict
  /// LRU entries until the shard is back under budget. Answers larger
  /// than a whole shard's budget are not cached.
  void Insert(const sql::QueryFingerprint& fp, uint64_t generation,
              core::AnswerResult result);

  /// Eagerly drop every entry older than `generation` (FineTune sweep —
  /// lazy lookup invalidation would keep stale bytes resident).
  void InvalidateOlderThan(uint64_t generation);

  void Clear();

  /// Aggregated over all shards (each shard's counters are internally
  /// consistent; the aggregate is a near-instantaneous snapshot).
  Stats stats() const;

  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    uint64_t hash = 0;
    std::string canonical;
    uint64_t generation = 0;
    size_t bytes = 0;
    std::shared_ptr<const core::AnswerResult> answer;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used. One entry per hash (collision-checked
    /// against the canonical text).
    std::list<Entry> lru ASQP_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        ASQP_GUARDED_BY(mu);
    size_t bytes ASQP_GUARDED_BY(mu) = 0;
    uint64_t hits ASQP_GUARDED_BY(mu) = 0;
    uint64_t misses ASQP_GUARDED_BY(mu) = 0;
    uint64_t insertions ASQP_GUARDED_BY(mu) = 0;
    uint64_t evictions ASQP_GUARDED_BY(mu) = 0;
    uint64_t invalidations ASQP_GUARDED_BY(mu) = 0;
    uint64_t hash_collisions ASQP_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t hash) {
    return shards_[hash % shards_.size()];
  }

  size_t byte_budget_;
  size_t shard_budget_;
  mutable std::vector<Shard> shards_;
};

}  // namespace serve
}  // namespace asqp
