#include "serve/answer_future.h"

#include <utility>

namespace asqp {
namespace serve {

bool AnswerFuture::Ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

util::Result<core::AnswerResult> AnswerFuture::Get() const {
  if (state_ == nullptr) {
    return util::Status::Internal("waiting on an invalid AnswerFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->result.has_value(); });
  return *state_->result;
}

util::Result<core::AnswerResult> AnswerFuture::Take() {
  if (state_ == nullptr) {
    return util::Status::Internal("waiting on an invalid AnswerFuture");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->result.has_value(); });
  return std::move(*state_->result);
}

void AnswerFuture::OnReady(Callback callback) const {
  if (state_ == nullptr) return;
  // Once resolved the result is set-once and immutable, so a pointer taken
  // under the lock stays valid outside it — run the callback without
  // holding the state lock (it may Get()/OnReady() other futures).
  const util::Result<core::AnswerResult>* resolved = nullptr;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->result.has_value()) {
      state_->callbacks.push_back(std::move(callback));
      return;
    }
    resolved = &*state_->result;
  }
  callback(*resolved);
}

void AnswerPromise::Resolve(util::Result<core::AnswerResult> result) const {
  std::vector<AnswerFuture::Callback> callbacks;
  const util::Result<core::AnswerResult>* resolved = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->result.has_value()) return;  // first resolution wins
    state_->result.emplace(std::move(result));
    resolved = &*state_->result;
    callbacks.swap(state_->callbacks);
  }
  state_->cv.notify_all();
  for (AnswerFuture::Callback& callback : callbacks) {
    callback(*resolved);
  }
}

void CompletionQueue::Track(const AnswerFuture& future, uint64_t tag) {
  {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->outstanding += 1;
  }
  // The callback owns a reference to Inner, so completions arriving after
  // the CompletionQueue object is gone still have somewhere to land.
  std::shared_ptr<Inner> inner = inner_;
  future.OnReady([inner, tag](const util::Result<core::AnswerResult>& result) {
    {
      std::lock_guard<std::mutex> lock(inner->mu);
      inner->ready.push_back(Completion{tag, result});
    }
    inner->cv.notify_one();
  });
}

std::optional<CompletionQueue::Completion> CompletionQueue::Next() {
  std::unique_lock<std::mutex> lock(inner_->mu);
  inner_->cv.wait(lock, [this] {
    return !inner_->ready.empty() || inner_->outstanding == 0;
  });
  if (inner_->ready.empty()) return std::nullopt;
  Completion done = std::move(inner_->ready.front());
  inner_->ready.pop_front();
  inner_->outstanding -= 1;
  return done;
}

size_t CompletionQueue::pending() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->outstanding;
}

}  // namespace serve
}  // namespace asqp
