// Future/callback-based completion for the serving layer's async sessions.
//
// ServeEngine::AnswerAsync returns an AnswerFuture immediately; the batch
// scheduler resolves the paired AnswerPromise when the query's batch
// executes. A session waits with Get() (blocking, returns a copy of the
// shared result), registers an OnReady callback (invoked inline if the
// future already resolved, otherwise on the resolving executor thread), or
// multiplexes many futures onto one waiter with a CompletionQueue — so
// hundreds of logical sessions can be in flight while only the scheduler's
// fixed executor threads exist.
//
// Resolution is set-once: the first Resolve wins and later ones are
// ignored, so a shutdown flush racing a normal completion is benign.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/model.h"
#include "util/annotations.h"
#include "util/status.h"

namespace asqp {
namespace serve {

class AnswerPromise;

class AnswerFuture {
 public:
  using Callback = std::function<void(const util::Result<core::AnswerResult>&)>;

  /// Default-constructed futures are invalid (no promise attached).
  AnswerFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the promise resolved (non-blocking).
  bool Ready() const;

  /// Block until resolved; returns a copy of the result. Invalid futures
  /// return kInternal.
  util::Result<core::AnswerResult> Get() const;

  /// Block until resolved and move the result out — the single-consumer
  /// fast path (no row-set copy). After Take(), other copies of this
  /// future observe a valid but unspecified result; callers that share a
  /// future use Get(). Invalid futures return kInternal.
  util::Result<core::AnswerResult> Take();

  /// Register `callback` to run when the future resolves. If it already
  /// resolved, the callback runs inline on this thread before OnReady
  /// returns; otherwise it runs on the resolving thread. Callbacks must
  /// not block the resolving thread on other futures of the same batch.
  void OnReady(Callback callback) const;

 private:
  friend class AnswerPromise;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<util::Result<core::AnswerResult>> result
        ASQP_GUARDED_BY(mu);
    std::vector<Callback> callbacks ASQP_GUARDED_BY(mu);
  };

  explicit AnswerFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// The producer side: ServeEngine holds the promise inside the scheduler
/// ticket and resolves it when the batch executes (or is shed/rejected).
/// Copyable — copies share one resolution state.
class AnswerPromise {
 public:
  AnswerPromise() : state_(std::make_shared<AnswerFuture::State>()) {}

  AnswerFuture future() const { return AnswerFuture(state_); }

  /// Resolve the shared state (first call wins; later calls are no-ops)
  /// and run any registered callbacks on this thread.
  void Resolve(util::Result<core::AnswerResult> result) const;

 private:
  std::shared_ptr<AnswerFuture::State> state_;
};

/// \brief Multiplexes many AnswerFutures onto one waiter: Track() each
/// future with a caller-chosen tag, then loop Next() until it returns
/// nullopt (everything tracked has been delivered). One completion is
/// delivered exactly once regardless of how many threads call Next().
class CompletionQueue {
 public:
  struct Completion {
    uint64_t tag = 0;
    util::Result<core::AnswerResult> result;
  };

  /// Register `future`; its completion will surface through Next() carrying
  /// `tag`. An already-resolved future surfaces immediately.
  void Track(const AnswerFuture& future, uint64_t tag);

  /// Block until a tracked future resolves and return its completion, or
  /// nullopt when no tracked future is outstanding.
  std::optional<Completion> Next();

  /// Tracked futures not yet delivered through Next().
  size_t pending() const;

 private:
  struct Inner {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Completion> ready ASQP_GUARDED_BY(mu);
    size_t outstanding ASQP_GUARDED_BY(mu) = 0;
  };

  /// Shared with the futures' callbacks: a completion arriving after the
  /// queue's destruction lands on the Inner kept alive by the callback.
  std::shared_ptr<Inner> inner_ = std::make_shared<Inner>();
};

}  // namespace serve
}  // namespace asqp
