#include "serve/batch_scheduler.h"

#include <algorithm>
#include <utility>

namespace asqp {
namespace serve {

BatchScheduler::BatchScheduler(Options options, ExecuteFn execute)
    : options_(options), execute_(std::move(execute)) {
  gatherer_ = std::thread([this] { GatherLoop(); });
  const size_t n = std::max<size_t>(1, options_.executors);
  executors_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

BatchScheduler::~BatchScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  gather_cv_.notify_all();
  exec_cv_.notify_all();
  // The gatherer flushes every gathering group into ready_ before it
  // exits; executors drain ready_ to empty before they exit — so every
  // submitted ticket's promise resolves before destruction completes.
  gatherer_.join();
  for (std::thread& t : executors_) t.join();
}

bool BatchScheduler::Submit(Ticket ticket) {
  const std::string key = ticket.group_key;
  bool promoted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queued_tickets_ >= options_.queue_capacity) {
      ++rejected_;
      return false;
    }
    ++submitted_;
    ++queued_tickets_;
    Group& group = gathering_[key];
    if (group.tickets.empty()) group.oldest = Clock::now();
    group.tickets.push_back(std::move(ticket));
    const bool full =
        group.tickets.size() >= std::max<size_t>(1, options_.max_batch);
    if (full || options_.window_seconds <= 0.0) {
      ++batches_formed_;
      batch_members_ += group.tickets.size();
      ready_.push_back(std::move(group.tickets));
      gathering_.erase(key);
      promoted = true;
    }
  }
  if (promoted) {
    exec_cv_.notify_one();
  } else {
    // A new group may now carry the earliest gather deadline.
    gather_cv_.notify_one();
  }
  return true;
}

void BatchScheduler::GatherLoop() {
  const auto window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(0.0, options_.window_seconds)));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (gathering_.empty()) {
      gather_cv_.wait(lock, [this] { return stop_ || !gathering_.empty(); });
      continue;
    }
    Clock::time_point earliest = Clock::time_point::max();
    for (const auto& entry : gathering_) {
      earliest = std::min(earliest, entry.second.oldest + window);
    }
    gather_cv_.wait_until(lock, earliest);
    if (stop_) break;
    const Clock::time_point now = Clock::now();
    bool promoted = false;
    for (auto it = gathering_.begin(); it != gathering_.end();) {
      if (now >= it->second.oldest + window) {
        ++batches_formed_;
        batch_members_ += it->second.tickets.size();
        ready_.push_back(std::move(it->second.tickets));
        it = gathering_.erase(it);
        promoted = true;
      } else {
        ++it;
      }
    }
    if (promoted) exec_cv_.notify_all();
  }
  // Shutdown flush: promote every gathering group so its members execute
  // (and resolve) rather than vanish.
  for (auto& entry : gathering_) {
    ++batches_formed_;
    batch_members_ += entry.second.tickets.size();
    ready_.push_back(std::move(entry.second.tickets));
  }
  gathering_.clear();
  flushed_ = true;
  exec_cv_.notify_all();
}

void BatchScheduler::ExecutorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    exec_cv_.wait(lock,
                  [this] { return !ready_.empty() || (stop_ && flushed_); });
    if (ready_.empty()) break;  // stopped, flushed, and drained
    std::vector<Ticket> batch = std::move(ready_.front());
    ready_.pop_front();
    queued_tickets_ -= batch.size();
    lock.unlock();
    execute_(std::move(batch));
    lock.lock();
  }
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.batches_formed = batches_formed_;
  s.batch_members = batch_members_;
  return s;
}

size_t BatchScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_tickets_;
}

}  // namespace serve
}  // namespace asqp
