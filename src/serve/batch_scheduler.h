// Shared-scan batch formation for the serving layer.
//
// AnswerAsync turns each admitted query into a Ticket (statement copy,
// caller context, fingerprint, promise) and Submit()s it here; the
// FifoSemaphore thread-per-waiter admission of the synchronous path
// becomes this bounded ticket queue. A gather thread groups tickets by
// their table-set key: a group executes as one batch when it reaches
// max_batch members or its oldest ticket has waited out the gather
// window, whichever comes first — so queries over the same tables share
// one scan pass (multi-query optimization), while disjoint-table queries
// sit in different groups and never wait on each other's batches. A fixed
// pool of executor threads drains ready batches through the engine's
// ExecuteFn (ServeEngine::ExecuteBatch), which resolves every member's
// promise; sessions wait on futures, not threads.
//
// Shutdown flushes: the destructor stops intake, promotes every gathering
// group to a batch, executes them all, then joins — no ticket is ever
// dropped with an unresolved promise.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/answer_future.h"
#include "sql/ast.h"
#include "sql/canonicalize.h"
#include "util/annotations.h"
#include "util/exec_context.h"

namespace asqp {
namespace serve {

class BatchScheduler {
 public:
  struct Options {
    /// Seconds a group's oldest ticket waits for peers before the group
    /// executes. <= 0 promotes tickets to batches immediately (async
    /// execution without cross-query gathering).
    double window_seconds = 0.001;
    /// A group reaching this many members executes without waiting.
    size_t max_batch = 8;
    /// Tickets queued (gathering + ready) before Submit rejects.
    size_t queue_capacity = 16;
    /// Executor threads draining ready batches (the batched path's
    /// in-flight bound, replacing the semaphore's permit count).
    size_t executors = 1;
  };

  /// One queued query. The statement is an owned deep copy (the caller's
  /// may die while the ticket waits); the context shares the caller's
  /// cancellation flag and deadline.
  struct Ticket {
    sql::SelectStatement stmt;
    util::ExecContext context;
    sql::QueryFingerprint fingerprint;
    /// Grouping key: the sorted, deduplicated bound table names.
    std::string group_key;
    AnswerPromise promise;
  };

  using ExecuteFn = std::function<void(std::vector<Ticket>&&)>;

  /// `execute` runs on executor threads and must resolve every ticket's
  /// promise (ServeEngine::ExecuteBatch does).
  BatchScheduler(Options options, ExecuteFn execute);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue a ticket. Returns false — without resolving the promise —
  /// when the queue is at capacity or the scheduler is shutting down; the
  /// caller owns the rejection (shed / typed back-pressure error).
  [[nodiscard]] bool Submit(Ticket ticket);

  struct Stats {
    uint64_t submitted = 0;       ///< tickets accepted
    uint64_t rejected = 0;        ///< Submit refusals (queue full)
    uint64_t batches_formed = 0;  ///< groups promoted to execution
    uint64_t batch_members = 0;   ///< tickets across all formed batches
  };
  Stats stats() const;

  /// Tickets gathering or ready but not yet handed to an executor.
  size_t QueueDepth() const;

  const Options& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Groups only live inside `gathering_`, so their fields inherit its
  /// lock protocol.
  struct Group {
    std::vector<Ticket> tickets ASQP_GUARDED_BY(mu_);
    /// Arrival of the first (oldest) ticket.
    Clock::time_point oldest ASQP_GUARDED_BY(mu_);
  };

  void GatherLoop();
  void ExecutorLoop();

  const Options options_;
  const ExecuteFn execute_;

  mutable std::mutex mu_;
  std::condition_variable gather_cv_;
  std::condition_variable exec_cv_;
  bool stop_ ASQP_GUARDED_BY(mu_) = false;
  bool flushed_ ASQP_GUARDED_BY(mu_) = false;
  std::map<std::string, Group> gathering_ ASQP_GUARDED_BY(mu_);
  std::deque<std::vector<Ticket>> ready_ ASQP_GUARDED_BY(mu_);
  size_t queued_tickets_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t submitted_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t batches_formed_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t batch_members_ ASQP_GUARDED_BY(mu_) = 0;

  std::thread gatherer_;
  std::vector<std::thread> executors_;
};

}  // namespace serve
}  // namespace asqp
