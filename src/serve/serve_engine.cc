#include "serve/serve_engine.h"

#include <algorithm>
#include <utility>

#include "sql/binder.h"
#include "sql/parser.h"

namespace asqp {
namespace serve {

ServeOptions ServeOptions::FromConfig(const core::AsqpConfig& config) {
  ServeOptions options;
  options.max_inflight = std::max<size_t>(1, config.serve_max_inflight);
  options.queue_capacity = config.serve_queue_capacity;
  options.pool_threads =
      config.serve_pool_threads > 0
          ? config.serve_pool_threads
          : std::max<size_t>(1, config.exec_threads > 1
                                    ? config.exec_threads - 1
                                    : 1);
  options.cache_bytes = config.cache_bytes;
  options.shed_to_learned = config.serve_shed_to_learned;
  return options;
}

ServeEngine::ServeEngine(core::AsqpModel* model, ServeOptions options)
    : model_(model),
      options_(options),
      pool_(std::make_shared<util::ThreadPool>(
          std::max<size_t>(1, options.pool_threads))),
      admission_(std::max<size_t>(1, options.max_inflight),
                 options.queue_capacity),
      cache_(options.cache_bytes,
             std::max<size_t>(1, options.cache_shards)) {
  model_->SetExecutionPool(pool_);
}

ServeEngine::~ServeEngine() {
  // Detach the model from the pool we are about to destroy: the model
  // outlives the engine and must not execute on a dead pool.
  model_->SetExecutionPool(nullptr);
}

util::Result<core::AnswerResult> ServeEngine::Answer(
    const sql::SelectStatement& stmt, const util::ExecContext& context) {
  // Load-shedding fast path: a request that is already dead on arrival
  // never costs the admission queue or an execution slot. Raw deadline /
  // cancellation reads here, never ExecContext::Check() — the latter
  // fires the exec.deadline fault point and would turn away healthy
  // clients under chaos testing.
  if (context.IsCancelled()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::Cancelled(
        "serve: request already cancelled on arrival");
  }
  if (context.deadline().Expired()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::DeadlineExceeded(
        "serve: deadline already expired on arrival");
  }

  // Pre-admission reader scope: binding and the cache probe read the
  // model (database schema, generation), so they must see a stable model
  // — a concurrent FineTune may otherwise swap the policy or bump the
  // generation mid-fingerprint. The lock is released before admission:
  // queued waiters must not hold a reader lock or FineTune's writer
  // acquisition would deadlock against a full admission queue.
  sql::QueryFingerprint fp;
  {
    std::shared_lock<std::shared_mutex> reader(model_mu_);
    // Fingerprint the *bound* statement so table aliases normalize away.
    // Binding is cheap (name resolution only) relative to execution, and
    // a failed bind short-circuits before admission.
    ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound,
                          sql::Bind(stmt, *model_->database()));
    fp = sql::FingerprintQuery(bound.stmt);

    // Cache hits bypass admission entirely: they cost a shard lock and a
    // copy, not an execution slot.
    if (auto hit = cache_.Lookup(fp, model_->generation())) {
      core::AnswerResult result = *hit;
      result.from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }

  // Admission: bounded in-flight executions, FIFO queue behind them, the
  // caller's deadline/cancellation honored while waiting. A request that
  // cannot be admitted is load-shed to the learned fallback when the
  // query is in its class; otherwise queue-full keeps its typed
  // back-pressure error and expiry/cancellation while queued becomes a
  // typed kDegraded (the budget is gone — there is nothing to retry).
  {
    util::Status admitted = admission_.Acquire(context);
    if (!admitted.ok()) {
      const bool queue_full =
          admitted.code() == util::StatusCode::kResourceExhausted;
      if (queue_full) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
      } else {
        admission_expired_.fetch_add(1, std::memory_order_relaxed);
      }
      const char* shed_reason =
          queue_full ? "shed:queue_full"
          : admitted.code() == util::StatusCode::kCancelled
              ? "shed:cancelled"
              : "shed:admission_deadline";
      if (options_.shed_to_learned) {
        std::shared_lock<std::shared_mutex> reader(model_mu_);
        util::Result<core::AnswerResult> shed =
            model_->TryLearnedAnswer(stmt);
        if (shed.ok()) {
          shed.value().fallback_reason = shed_reason;
          shed_learned_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          return shed;
        }
      }
      if (queue_full) return admitted;
      degraded_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::Degraded(
          "admission budget exhausted while queued and the learned tier "
          "cannot answer: " +
          admitted.ToString());
    }
  }
  util::SemaphoreReleaser release(&admission_);
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // Reader lock: many Answers run concurrently; FineTune excludes them.
  std::shared_lock<std::shared_mutex> reader(model_mu_);
  const uint64_t generation = model_->generation();
  util::Result<core::AnswerResult> answered = model_->Answer(stmt, context);
  if (!answered.ok()) {
    const util::Status& failure = answered.status();
    if (failure.code() == util::StatusCode::kDeadlineExceeded ||
        failure.code() == util::StatusCode::kCancelled) {
      // Belt and suspenders: the ladder degrades deadline/cancellation
      // failures itself, but one racing the ladder's tier boundaries can
      // still leak — convert it here so an admitted client never sees a
      // raw timeout.
      if (options_.shed_to_learned) {
        util::Result<core::AnswerResult> shed =
            model_->TryLearnedAnswer(stmt);
        if (shed.ok()) {
          shed.value().fallback_reason =
              "shed:" + core::FallbackReasonFromStatus(failure);
          shed_learned_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          return shed;
        }
      }
      degraded_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::Degraded(
          "no tier could answer within the budget: " + failure.ToString());
    }
    if (failure.code() == util::StatusCode::kDegraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    return failure;
  }
  core::AnswerResult result = std::move(answered).value();
  // Degraded (fell-back) answers are not cached: a retry without pressure
  // may serve the better approximation-set answer.
  if (!result.fell_back) {
    cache_.Insert(fp, generation, result);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

util::Result<core::AnswerResult> ServeEngine::AnswerSql(
    const std::string& sql, const util::ExecContext& context) {
  ASQP_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  return Answer(stmt, context);
}

util::Status ServeEngine::FineTune(const metric::Workload& new_queries) {
  std::unique_lock<std::shared_mutex> writer(model_mu_);
  ASQP_RETURN_NOT_OK(model_->FineTune(new_queries));
  // Lazy per-lookup invalidation already guarantees correctness; the
  // eager sweep frees the stale entries' bytes immediately.
  cache_.InvalidateOlderThan(model_->generation());
  return util::Status::OK();
}

}  // namespace serve
}  // namespace asqp
