#include "serve/serve_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/binder.h"
#include "sql/parser.h"

namespace asqp {
namespace serve {

ServeOptions ServeOptions::FromConfig(const core::AsqpConfig& config) {
  ServeOptions options;
  options.max_inflight = std::max<size_t>(1, config.serve_max_inflight);
  options.queue_capacity = config.serve_queue_capacity;
  options.pool_threads =
      config.serve_pool_threads > 0
          ? config.serve_pool_threads
          : std::max<size_t>(1, config.exec_threads > 1
                                    ? config.exec_threads - 1
                                    : 1);
  options.cache_bytes = config.cache_bytes;
  options.shed_to_learned = config.serve_shed_to_learned;
  options.batch_window_ms = config.serve_batch_window_ms;
  options.batch_max_queries = config.serve_batch_max_queries;
  options.async = config.serve_async;
  return options;
}

ServeEngine::ServeEngine(core::AsqpModel* model, ServeOptions options)
    : model_(model),
      options_(options),
      pool_(std::make_shared<util::ThreadPool>(
          std::max<size_t>(1, options.pool_threads))),
      admission_(std::max<size_t>(1, options.max_inflight),
                 options.queue_capacity),
      cache_(options.cache_bytes,
             std::max<size_t>(1, options.cache_shards)) {
  model_->SetExecutionPool(pool_);
  if (options_.batch_window_ms > 0.0 || options_.async) {
    BatchScheduler::Options sched;
    sched.window_seconds = std::max(0.0, options_.batch_window_ms) / 1000.0;
    sched.max_batch = std::max<size_t>(1, options_.batch_max_queries);
    sched.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
    // Executor threads are the batched path's in-flight bound, matching
    // the synchronous path's semaphore permit count.
    sched.executors = std::max<size_t>(1, options_.max_inflight);
    scheduler_ = std::make_unique<BatchScheduler>(
        sched, [this](std::vector<BatchScheduler::Ticket>&& batch) {
          ExecuteBatch(std::move(batch));
        });
  }
}

ServeEngine::~ServeEngine() {
  // Stop intake and flush every pending batch while the model and pool
  // are still alive (the scheduler's destructor executes them), then
  // detach the model from the pool we are about to destroy: the model
  // outlives the engine and must not execute on a dead pool.
  scheduler_.reset();
  model_->SetExecutionPool(nullptr);
}

util::Result<core::AnswerResult> ServeEngine::Answer(
    const sql::SelectStatement& stmt, const util::ExecContext& context) {
  // With the scheduler on there is exactly one serving path: synchronous
  // callers ride the batched/async machinery and block on the future, so
  // their queries gather into the same shared-scan batches. Take(), not
  // Get(): this future has exactly one consumer, so the resolved answer
  // moves out without a row-set copy.
  if (scheduler_ != nullptr) return AnswerAsync(stmt, context).Take();

  // Load-shedding fast path: a request that is already dead on arrival
  // never costs the admission queue or an execution slot. Raw deadline /
  // cancellation reads here, never ExecContext::Check() — the latter
  // fires the exec.deadline fault point and would turn away healthy
  // clients under chaos testing.
  if (context.IsCancelled()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::Cancelled(
        "serve: request already cancelled on arrival");
  }
  if (context.deadline().Expired()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::DeadlineExceeded(
        "serve: deadline already expired on arrival");
  }

  // Pre-admission reader scope: binding and the cache probe read the
  // model (database schema, generation), so they must see a stable model
  // — a concurrent FineTune may otherwise swap the policy or bump the
  // generation mid-fingerprint. The lock is released before admission:
  // queued waiters must not hold a reader lock or FineTune's writer
  // acquisition would deadlock against a full admission queue.
  sql::QueryFingerprint fp;
  {
    std::shared_lock<std::shared_mutex> reader(model_mu_);
    // Fingerprint the *bound* statement so table aliases normalize away.
    // Binding is cheap (name resolution only) relative to execution, and
    // a failed bind short-circuits before admission.
    ASQP_ASSIGN_OR_RETURN(sql::BoundQuery bound,
                          sql::Bind(stmt, *model_->database()));
    fp = sql::FingerprintQuery(bound.stmt);

    // Cache hits bypass admission entirely: they cost a shard lock and a
    // copy, not an execution slot.
    if (auto hit = cache_.Lookup(fp, model_->generation())) {
      core::AnswerResult result = *hit;
      result.from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }

  // Admission: bounded in-flight executions, FIFO queue behind them, the
  // caller's deadline/cancellation honored while waiting. A request that
  // cannot be admitted is load-shed to the learned fallback when the
  // query is in its class; otherwise queue-full keeps its typed
  // back-pressure error and expiry/cancellation while queued becomes a
  // typed kDegraded (the budget is gone — there is nothing to retry).
  {
    util::Status admitted = admission_.Acquire(context);
    if (!admitted.ok()) {
      const bool queue_full =
          admitted.code() == util::StatusCode::kResourceExhausted;
      if (queue_full) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
      } else {
        admission_expired_.fetch_add(1, std::memory_order_relaxed);
      }
      const char* shed_reason =
          queue_full ? "shed:queue_full"
          : admitted.code() == util::StatusCode::kCancelled
              ? "shed:cancelled"
              : "shed:admission_deadline";
      if (options_.shed_to_learned) {
        std::shared_lock<std::shared_mutex> reader(model_mu_);
        util::Result<core::AnswerResult> shed =
            model_->TryLearnedAnswer(stmt);
        if (shed.ok()) {
          shed.value().fallback_reason = shed_reason;
          shed_learned_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          return shed;
        }
      }
      if (queue_full) return admitted;
      degraded_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::Degraded(
          "admission budget exhausted while queued and the learned tier "
          "cannot answer: " +
          admitted.ToString());
    }
  }
  util::SemaphoreReleaser release(&admission_);
  admitted_.fetch_add(1, std::memory_order_relaxed);

  // Reader lock: many Answers run concurrently; FineTune excludes them.
  std::shared_lock<std::shared_mutex> reader(model_mu_);
  const uint64_t generation = model_->generation();
  util::Result<core::AnswerResult> answered = model_->Answer(stmt, context);
  if (!answered.ok()) {
    const util::Status& failure = answered.status();
    if (failure.code() == util::StatusCode::kDeadlineExceeded ||
        failure.code() == util::StatusCode::kCancelled) {
      // Belt and suspenders: the ladder degrades deadline/cancellation
      // failures itself, but one racing the ladder's tier boundaries can
      // still leak — convert it here so an admitted client never sees a
      // raw timeout.
      if (options_.shed_to_learned) {
        util::Result<core::AnswerResult> shed =
            model_->TryLearnedAnswer(stmt);
        if (shed.ok()) {
          shed.value().fallback_reason =
              "shed:" + core::FallbackReasonFromStatus(failure);
          shed_learned_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          return shed;
        }
      }
      degraded_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::Degraded(
          "no tier could answer within the budget: " + failure.ToString());
    }
    if (failure.code() == util::StatusCode::kDegraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    return failure;
  }
  core::AnswerResult result = std::move(answered).value();
  // Degraded (fell-back) answers are not cached: a retry without pressure
  // may serve the better approximation-set answer.
  if (!result.fell_back) {
    cache_.Insert(fp, generation, result);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

util::Result<core::AnswerResult> ServeEngine::AnswerSql(
    const std::string& sql, const util::ExecContext& context) {
  ASQP_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(sql));
  return Answer(stmt, context);
}

AnswerFuture ServeEngine::AnswerAsync(const sql::SelectStatement& stmt,
                                      const util::ExecContext& context) {
  AnswerPromise promise;
  AnswerFuture future = promise.future();
  if (scheduler_ == nullptr) {
    // No scheduler: degrade gracefully to the synchronous path, resolved
    // before the future is returned.
    promise.Resolve(Answer(stmt, context));
    return future;
  }

  // Same fast-path raw checks as the synchronous path: a dead-on-arrival
  // request never costs a ticket slot. Raw reads, never Check() — chaos
  // testing arms the exec.deadline fault point.
  if (context.IsCancelled()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    promise.Resolve(util::Status::Cancelled(
        "serve: request already cancelled on arrival"));
    return future;
  }
  if (context.deadline().Expired()) {
    expired_fast_path_.fetch_add(1, std::memory_order_relaxed);
    promise.Resolve(util::Status::DeadlineExceeded(
        "serve: deadline already expired on arrival"));
    return future;
  }

  BatchScheduler::Ticket ticket;
  {
    // Reader scope mirrors the synchronous pre-admission scope: bind,
    // fingerprint, cache probe. Released before Submit — tickets queue in
    // the scheduler, not under the model lock.
    std::shared_lock<std::shared_mutex> reader(model_mu_);
    util::Result<sql::BoundQuery> bound = sql::Bind(stmt, *model_->database());
    if (!bound.ok()) {
      promise.Resolve(bound.status());
      return future;
    }
    ticket.fingerprint = sql::FingerprintQuery(bound.value().stmt);
    if (auto hit = cache_.Lookup(ticket.fingerprint, model_->generation())) {
      core::AnswerResult result = *hit;
      result.from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      promise.Resolve(std::move(result));
      return future;
    }
    // Group key: sorted, deduplicated bound table names — queries over the
    // same table set gather into one shared-scan batch regardless of the
    // order tables appear in the FROM list.
    std::vector<std::string> names;
    names.reserve(bound.value().tables.size());
    for (const auto& table : bound.value().tables) {
      names.push_back(table->name());
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    for (const std::string& name : names) {
      if (!ticket.group_key.empty()) ticket.group_key += ',';
      ticket.group_key += name;
    }
  }
  ticket.stmt = stmt.Clone();
  ticket.context = context;
  ticket.promise = promise;

  if (!scheduler_->Submit(std::move(ticket))) {
    // Ticket queue full: same shed / typed back-pressure contract as a
    // full admission queue on the synchronous path.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (options_.shed_to_learned) {
      std::shared_lock<std::shared_mutex> reader(model_mu_);
      util::Result<core::AnswerResult> shed = model_->TryLearnedAnswer(stmt);
      if (shed.ok()) {
        shed.value().fallback_reason = "shed:queue_full";
        shed_learned_.fetch_add(1, std::memory_order_relaxed);
        served_.fetch_add(1, std::memory_order_relaxed);
        promise.Resolve(std::move(shed));
        return future;
      }
    }
    promise.Resolve(util::Status::ResourceExhausted(
        "serve: batch ticket queue is full"));
  }
  return future;
}

AnswerFuture ServeEngine::AnswerSqlAsync(const std::string& sql,
                                         const util::ExecContext& context) {
  util::Result<sql::SelectStatement> stmt = sql::Parse(sql);
  if (!stmt.ok()) {
    AnswerPromise promise;
    promise.Resolve(stmt.status());
    return promise.future();
  }
  return AnswerAsync(stmt.value(), context);
}

void ServeEngine::ExecuteBatch(std::vector<BatchScheduler::Ticket>&& tickets) {
  // Reader lock for the whole batch: FineTune's writer waits for at most
  // one in-flight batch per executor thread.
  std::shared_lock<std::shared_mutex> reader(model_mu_);
  const uint64_t generation = model_->generation();

  // Triage each ticket: expired/cancelled while queued (shed, as the
  // synchronous admission path does), answered by the cache since it was
  // submitted, or deduplicated onto a canonically-equivalent peer in the
  // same batch. Survivors become batch representatives.
  struct Representative {
    size_t ticket = 0;
    std::vector<size_t> duplicates;
  };
  std::vector<Representative> reps;
  std::map<std::string, size_t> by_canonical;
  for (size_t i = 0; i < tickets.size(); ++i) {
    BatchScheduler::Ticket& ticket = tickets[i];
    const bool cancelled = ticket.context.IsCancelled();
    if (cancelled || ticket.context.deadline().Expired()) {
      admission_expired_.fetch_add(1, std::memory_order_relaxed);
      const char* shed_reason =
          cancelled ? "shed:cancelled" : "shed:admission_deadline";
      if (options_.shed_to_learned) {
        util::Result<core::AnswerResult> shed =
            model_->TryLearnedAnswer(ticket.stmt);
        if (shed.ok()) {
          shed.value().fallback_reason = shed_reason;
          shed_learned_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          ticket.promise.Resolve(std::move(shed));
          continue;
        }
      }
      degraded_.fetch_add(1, std::memory_order_relaxed);
      ticket.promise.Resolve(util::Status::Degraded(
          "admission budget exhausted while queued and the learned tier "
          "cannot answer"));
      continue;
    }
    if (auto hit = cache_.Lookup(ticket.fingerprint, generation)) {
      core::AnswerResult result = *hit;
      result.from_cache = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      ticket.promise.Resolve(std::move(result));
      continue;
    }
    const auto ins =
        by_canonical.emplace(ticket.fingerprint.canonical, reps.size());
    if (ins.second) {
      reps.push_back(Representative{i, {}});
    } else {
      // Canonically equivalent to an earlier member: same canonical text
      // implies byte-identical results, so one execution serves both.
      reps[ins.first->second].duplicates.push_back(i);
      shared_scan_saved_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (reps.empty()) return;
  admitted_.fetch_add(reps.size(), std::memory_order_relaxed);

  std::vector<core::AsqpModel::BatchQuery> queries;
  queries.reserve(reps.size());
  for (const Representative& rep : reps) {
    const BatchScheduler::Ticket& t = tickets[rep.ticket];
    queries.push_back(core::AsqpModel::BatchQuery{&t.stmt, t.context,
                                                  &t.fingerprint.canonical});
  }
  core::AsqpModel::BatchStats bstats;
  std::vector<util::Result<core::AnswerResult>> answers =
      model_->AnswerBatch(queries, &plan_cache_, &bstats);
  shared_scan_saved_.fetch_add(bstats.scans_saved, std::memory_order_relaxed);
  batch_solo_.fetch_add(bstats.solo, std::memory_order_relaxed);

  // Per-representative tail — the same shed/degrade conversion the
  // synchronous path applies after model_->Answer. A member that failed
  // degrades alone; its peers' results are already computed and resolve
  // normally.
  for (size_t r = 0; r < reps.size(); ++r) {
    const Representative& rep = reps[r];
    BatchScheduler::Ticket& ticket = tickets[rep.ticket];
    util::Result<core::AnswerResult> outcome = std::move(answers[r]);
    if (!outcome.ok()) {
      const util::Status failure = outcome.status();
      if (failure.code() == util::StatusCode::kDeadlineExceeded ||
          failure.code() == util::StatusCode::kCancelled) {
        bool converted = false;
        if (options_.shed_to_learned) {
          util::Result<core::AnswerResult> shed =
              model_->TryLearnedAnswer(ticket.stmt);
          if (shed.ok()) {
            shed.value().fallback_reason =
                "shed:" + core::FallbackReasonFromStatus(failure);
            shed_learned_.fetch_add(1, std::memory_order_relaxed);
            outcome = std::move(shed);
            converted = true;
          }
        }
        if (!converted) {
          degraded_.fetch_add(1, std::memory_order_relaxed);
          outcome = util::Status::Degraded(
              "no tier could answer within the budget: " +
              failure.ToString());
        }
      } else if (failure.code() == util::StatusCode::kDegraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Degraded (fell-back) answers are not cached, as on the
      // synchronous path.
      if (!outcome.value().fell_back) {
        cache_.Insert(ticket.fingerprint, generation, outcome.value());
      }
    }
    if (outcome.ok()) {
      served_.fetch_add(1 + rep.duplicates.size(),
                        std::memory_order_relaxed);
    }
    for (size_t dup : rep.duplicates) {
      tickets[dup].promise.Resolve(outcome);
    }
    ticket.promise.Resolve(std::move(outcome));
  }
}

util::Status ServeEngine::FineTune(const metric::Workload& new_queries) {
  std::unique_lock<std::shared_mutex> writer(model_mu_);
  ASQP_RETURN_NOT_OK(model_->FineTune(new_queries));
  // Lazy per-lookup invalidation already guarantees correctness; the
  // eager sweep frees the stale entries' bytes immediately. Cached plans
  // bind against the old approximation set, so drop them all.
  cache_.InvalidateOlderThan(model_->generation());
  plan_cache_.Clear();
  return util::Status::OK();
}

}  // namespace serve
}  // namespace asqp
