// The concurrent serving layer: one ServeEngine fronts one trained
// AsqpModel for N simultaneous mediator sessions.
//
// Three mechanisms turn the single-query mediator into a server:
//   1. A process-wide util::ThreadPool shared by every session's
//      morsel-parallel execution (injected via ExecOptions::shared_pool),
//      so N concurrent queries use one bounded pool instead of N private
//      ones — total execution threads never exceed the configured cap
//      (observable via util::ThreadPool::LiveWorkerCount()).
//   2. Admission control: a FIFO-fair semaphore bounds in-flight queries
//      at serve_max_inflight; further sessions queue (bounded at
//      serve_queue_capacity, honoring each waiter's ExecContext deadline/
//      cancellation) or are rejected with kResourceExhausted.
//   3. A sharded answer cache keyed by sql::QueryFingerprint of the bound
//      AST: repeat queries — in any equivalent spelling — return the
//      cached AnswerResult without executing or occupying an admission
//      slot. Entries are stamped with the model's approximation-set
//      generation; FineTune() bumps it, invalidating every stale entry.
//   4. Overload control (the serve side of the degradation ladder): a
//      request whose deadline is already dead is turned away before it
//      costs an admission slot; a request that cannot be admitted (queue
//      full, expired/cancelled while queued) is load-shed to the model's
//      learned fallback when it can take the query; and a deadline or
//      cancellation that leaks out of the ladder is converted to a
//      learned answer or a typed kDegraded — under overload a client gets
//      an answer (possibly approximate, with an error estimate) or a
//      typed degradation, never a raw timeout.
//   5. Batched multi-query execution + async sessions (opt-in via
//      batch_window_ms > 0 or async): queries become scheduler tickets
//      grouped by table set within a gather window; each batch plans its
//      members once (fingerprint-keyed plan reuse) and executes one
//      shared scan pass per table (AsqpModel::AnswerBatch), with results
//      byte-identical to the unbatched path. AnswerAsync returns an
//      AnswerFuture resolved by the scheduler's fixed executor threads,
//      so hundreds of sessions wait without hundreds of threads; the
//      FifoSemaphore admission of the synchronous path becomes the
//      scheduler's bounded ticket queue (queue-full keeps the same shed /
//      back-pressure semantics).
//
// Answer() calls may run from any number of threads. FineTune() takes the
// engine's writer lock, so in-flight queries drain before the model is
// retrained and new arrivals wait until the swap completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "core/config.h"
#include "core/model.h"
#include "plan/plan_reuse.h"
#include "serve/answer_cache.h"
#include "serve/answer_future.h"
#include "serve/batch_scheduler.h"
#include "util/annotations.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace asqp {
namespace serve {

struct ServeOptions {
  /// Concurrent Answer() executions admitted at once.
  size_t max_inflight = 4;
  /// Sessions allowed to queue behind them (excess is rejected).
  size_t queue_capacity = 16;
  /// Worker threads in the shared execution pool. Total morsel
  /// concurrency per query = pool workers + the session's own thread.
  /// 0 = 1 worker.
  size_t pool_threads = 1;
  /// Answer-cache byte budget (0 disables caching).
  size_t cache_bytes = 64ull << 20;
  size_t cache_shards = 8;
  /// Load shedding: when admission fails (queue full, deadline expired or
  /// cancelled while queued) or a deadline/cancellation leaks out of the
  /// ladder, answer supported aggregate queries from the model's learned
  /// fallback instead of erroring. Unsupported queries keep the typed
  /// admission error (queue full) or degrade to kDegraded.
  bool shed_to_learned = true;
  /// Gather window for shared-scan batching, in milliseconds. > 0 routes
  /// queries through the BatchScheduler: same-table-set queries arriving
  /// within the window execute as one batch sharing a single scan pass per
  /// table. 0 (the default) keeps batching off unless `async` turns the
  /// scheduler on with an empty window (immediate per-query batches).
  double batch_window_ms = 0.0;
  /// Queries a gathering group may accumulate before it executes without
  /// waiting out the window.
  size_t batch_max_queries = 8;
  /// Route queries through the scheduler even with a zero window, so
  /// AnswerAsync never blocks the caller (futures resolve on the
  /// scheduler's executor threads).
  bool async = false;

  /// Derive the serving knobs from a model's AsqpConfig
  /// (serve_max_inflight, serve_queue_capacity, serve_pool_threads /
  /// exec_threads, cache_bytes, serve_shed_to_learned,
  /// serve_batch_window_ms, serve_batch_max_queries, serve_async).
  static ServeOptions FromConfig(const core::AsqpConfig& config);
};

class ServeEngine {
 public:
  /// `model` must outlive the engine. The engine re-routes the model's
  /// execution through its shared pool (AsqpModel::SetExecutionPool).
  ServeEngine(core::AsqpModel* model, ServeOptions options);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serve one query: fingerprint -> cache lookup -> (on miss) admission
  /// -> AsqpModel::Answer -> cache fill. Cache hits return immediately
  /// with AnswerResult::from_cache set, bypassing admission. `context`
  /// bounds both the admission wait and the execution.
  [[nodiscard]] util::Result<core::AnswerResult> Answer(
      const sql::SelectStatement& stmt,
      const util::ExecContext& context = util::ExecContext());

  /// Parse `sql`, then Answer() it.
  [[nodiscard]] util::Result<core::AnswerResult> AnswerSql(
      const std::string& sql,
      const util::ExecContext& context = util::ExecContext());

  /// Serve one query without blocking the caller: returns an AnswerFuture
  /// that resolves when the query's batch executes (or immediately on a
  /// cache hit / fast-path rejection). Requires the scheduler (`async` or
  /// `batch_window_ms > 0`); with the scheduler off this degenerates to a
  /// pre-resolved future holding Answer()'s result. Results are
  /// byte-identical to the synchronous path.
  [[nodiscard]] AnswerFuture AnswerAsync(
      const sql::SelectStatement& stmt,
      const util::ExecContext& context = util::ExecContext());

  /// Parse `sql`, then AnswerAsync() it (parse errors resolve the future).
  [[nodiscard]] AnswerFuture AnswerSqlAsync(
      const std::string& sql,
      const util::ExecContext& context = util::ExecContext());

  /// Retrain on drifted/new queries (AsqpModel::FineTune) under the
  /// writer lock: waits for in-flight queries to drain, swaps the model
  /// state, and invalidates every cached answer from older generations.
  [[nodiscard]] util::Status FineTune(const metric::Workload& new_queries);

  struct Stats {
    uint64_t served = 0;          ///< successful Answer() calls
    uint64_t cache_hits = 0;      ///< served straight from the cache
    uint64_t admitted = 0;        ///< entered execution
    uint64_t rejected = 0;        ///< admission queue full
    uint64_t admission_expired = 0;  ///< deadline/cancel while queued
    uint64_t shed_learned = 0;    ///< load-shed to the learned fallback
    uint64_t degraded = 0;        ///< every tier exhausted (kDegraded)
    uint64_t expired_fast_path = 0;  ///< dead on arrival, never admitted
    /// Batching/queue observability (all zero with the scheduler off).
    uint64_t queue_depth = 0;     ///< tickets queued right now (gauge)
    uint64_t batches_formed = 0;  ///< ticket groups promoted to execution
    uint64_t batch_members = 0;   ///< tickets across all formed batches
    uint64_t shared_scan_saved = 0;  ///< table scans avoided by sharing
    uint64_t batch_solo = 0;      ///< members that fell back to solo exec
  };
  Stats stats() const {
    Stats s{served_.load(std::memory_order_relaxed),
            cache_hits_.load(std::memory_order_relaxed),
            admitted_.load(std::memory_order_relaxed),
            rejected_.load(std::memory_order_relaxed),
            admission_expired_.load(std::memory_order_relaxed),
            shed_learned_.load(std::memory_order_relaxed),
            degraded_.load(std::memory_order_relaxed),
            expired_fast_path_.load(std::memory_order_relaxed),
            0,
            0,
            0,
            shared_scan_saved_.load(std::memory_order_relaxed),
            batch_solo_.load(std::memory_order_relaxed)};
    if (scheduler_ != nullptr) {
      const BatchScheduler::Stats b = scheduler_->stats();
      s.queue_depth = scheduler_->QueueDepth();
      s.batches_formed = b.batches_formed;
      s.batch_members = b.batch_members;
    }
    return s;
  }

  const AnswerCache& cache() const { return cache_; }
  AnswerCache& mutable_cache() { return cache_; }
  const ServeOptions& options() const { return options_; }
  /// Unsynchronized escape hatch for setup/instrumentation in tests and
  /// benches; do not use while Answer/FineTune are in flight.
  core::AsqpModel* model() { return model_; }  // NOLINT(asqp-guard-violation)
  /// The shared execution pool (for instrumentation/tests).
  util::ThreadPool* pool() { return pool_.get(); }

 private:
  /// Drain one scheduler batch on an executor thread: per-ticket expiry /
  /// cache re-probe / canonical dedup, then AsqpModel::AnswerBatch for the
  /// representatives, then resolve every ticket's promise with the same
  /// shed/degrade tail as the synchronous path.
  void ExecuteBatch(std::vector<BatchScheduler::Ticket>&& tickets);

  /// Readers (shared_lock): Answer() binds, fingerprints, and executes
  /// against a stable model. Writer (unique_lock): FineTune().
  core::AsqpModel* model_ ASQP_GUARDED_BY(model_mu_);
  ServeOptions options_;
  std::shared_ptr<util::ThreadPool> pool_;
  util::FifoSemaphore admission_;
  AnswerCache cache_;
  /// Fingerprint-keyed planned-query reuse for batch members (internally
  /// synchronized; generation-stamped like the answer cache).
  plan::PlanReuseCache plan_cache_;
  std::shared_mutex model_mu_;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> admission_expired_{0};
  std::atomic<uint64_t> shed_learned_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> expired_fast_path_{0};
  std::atomic<uint64_t> shared_scan_saved_{0};
  std::atomic<uint64_t> batch_solo_{0};

  /// Non-null iff batching/async is on. Declared last so its destructor
  /// runs first: pending batches flush against a still-live engine.
  std::unique_ptr<BatchScheduler> scheduler_;
};

}  // namespace serve
}  // namespace asqp
