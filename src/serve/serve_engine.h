// The concurrent serving layer: one ServeEngine fronts one trained
// AsqpModel for N simultaneous mediator sessions.
//
// Three mechanisms turn the single-query mediator into a server:
//   1. A process-wide util::ThreadPool shared by every session's
//      morsel-parallel execution (injected via ExecOptions::shared_pool),
//      so N concurrent queries use one bounded pool instead of N private
//      ones — total execution threads never exceed the configured cap
//      (observable via util::ThreadPool::LiveWorkerCount()).
//   2. Admission control: a FIFO-fair semaphore bounds in-flight queries
//      at serve_max_inflight; further sessions queue (bounded at
//      serve_queue_capacity, honoring each waiter's ExecContext deadline/
//      cancellation) or are rejected with kResourceExhausted.
//   3. A sharded answer cache keyed by sql::QueryFingerprint of the bound
//      AST: repeat queries — in any equivalent spelling — return the
//      cached AnswerResult without executing or occupying an admission
//      slot. Entries are stamped with the model's approximation-set
//      generation; FineTune() bumps it, invalidating every stale entry.
//   4. Overload control (the serve side of the degradation ladder): a
//      request whose deadline is already dead is turned away before it
//      costs an admission slot; a request that cannot be admitted (queue
//      full, expired/cancelled while queued) is load-shed to the model's
//      learned fallback when it can take the query; and a deadline or
//      cancellation that leaks out of the ladder is converted to a
//      learned answer or a typed kDegraded — under overload a client gets
//      an answer (possibly approximate, with an error estimate) or a
//      typed degradation, never a raw timeout.
//
// Answer() calls may run from any number of threads. FineTune() takes the
// engine's writer lock, so in-flight queries drain before the model is
// retrained and new arrivals wait until the swap completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "core/config.h"
#include "core/model.h"
#include "serve/answer_cache.h"
#include "util/annotations.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace asqp {
namespace serve {

struct ServeOptions {
  /// Concurrent Answer() executions admitted at once.
  size_t max_inflight = 4;
  /// Sessions allowed to queue behind them (excess is rejected).
  size_t queue_capacity = 16;
  /// Worker threads in the shared execution pool. Total morsel
  /// concurrency per query = pool workers + the session's own thread.
  /// 0 = 1 worker.
  size_t pool_threads = 1;
  /// Answer-cache byte budget (0 disables caching).
  size_t cache_bytes = 64ull << 20;
  size_t cache_shards = 8;
  /// Load shedding: when admission fails (queue full, deadline expired or
  /// cancelled while queued) or a deadline/cancellation leaks out of the
  /// ladder, answer supported aggregate queries from the model's learned
  /// fallback instead of erroring. Unsupported queries keep the typed
  /// admission error (queue full) or degrade to kDegraded.
  bool shed_to_learned = true;

  /// Derive the serving knobs from a model's AsqpConfig
  /// (serve_max_inflight, serve_queue_capacity, serve_pool_threads /
  /// exec_threads, cache_bytes, serve_shed_to_learned).
  static ServeOptions FromConfig(const core::AsqpConfig& config);
};

class ServeEngine {
 public:
  /// `model` must outlive the engine. The engine re-routes the model's
  /// execution through its shared pool (AsqpModel::SetExecutionPool).
  ServeEngine(core::AsqpModel* model, ServeOptions options);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serve one query: fingerprint -> cache lookup -> (on miss) admission
  /// -> AsqpModel::Answer -> cache fill. Cache hits return immediately
  /// with AnswerResult::from_cache set, bypassing admission. `context`
  /// bounds both the admission wait and the execution.
  [[nodiscard]] util::Result<core::AnswerResult> Answer(
      const sql::SelectStatement& stmt,
      const util::ExecContext& context = util::ExecContext());

  /// Parse `sql`, then Answer() it.
  [[nodiscard]] util::Result<core::AnswerResult> AnswerSql(
      const std::string& sql,
      const util::ExecContext& context = util::ExecContext());

  /// Retrain on drifted/new queries (AsqpModel::FineTune) under the
  /// writer lock: waits for in-flight queries to drain, swaps the model
  /// state, and invalidates every cached answer from older generations.
  [[nodiscard]] util::Status FineTune(const metric::Workload& new_queries);

  struct Stats {
    uint64_t served = 0;          ///< successful Answer() calls
    uint64_t cache_hits = 0;      ///< served straight from the cache
    uint64_t admitted = 0;        ///< entered execution
    uint64_t rejected = 0;        ///< admission queue full
    uint64_t admission_expired = 0;  ///< deadline/cancel while queued
    uint64_t shed_learned = 0;    ///< load-shed to the learned fallback
    uint64_t degraded = 0;        ///< every tier exhausted (kDegraded)
    uint64_t expired_fast_path = 0;  ///< dead on arrival, never admitted
  };
  Stats stats() const {
    return Stats{served_.load(std::memory_order_relaxed),
                 cache_hits_.load(std::memory_order_relaxed),
                 admitted_.load(std::memory_order_relaxed),
                 rejected_.load(std::memory_order_relaxed),
                 admission_expired_.load(std::memory_order_relaxed),
                 shed_learned_.load(std::memory_order_relaxed),
                 degraded_.load(std::memory_order_relaxed),
                 expired_fast_path_.load(std::memory_order_relaxed)};
  }

  const AnswerCache& cache() const { return cache_; }
  AnswerCache& mutable_cache() { return cache_; }
  const ServeOptions& options() const { return options_; }
  /// Unsynchronized escape hatch for setup/instrumentation in tests and
  /// benches; do not use while Answer/FineTune are in flight.
  core::AsqpModel* model() { return model_; }  // NOLINT(asqp-guard-violation)
  /// The shared execution pool (for instrumentation/tests).
  util::ThreadPool* pool() { return pool_.get(); }

 private:
  /// Readers (shared_lock): Answer() binds, fingerprints, and executes
  /// against a stable model. Writer (unique_lock): FineTune().
  core::AsqpModel* model_ ASQP_GUARDED_BY(model_mu_);
  ServeOptions options_;
  std::shared_ptr<util::ThreadPool> pool_;
  util::FifoSemaphore admission_;
  AnswerCache cache_;
  std::shared_mutex model_mu_;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> admission_expired_{0};
  std::atomic<uint64_t> shed_learned_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> expired_fast_path_{0};
};

}  // namespace serve
}  // namespace asqp
