#include "sql/ast.h"

#include <sstream>

namespace asqp {
namespace sql {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
  }
  return "?";
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone: return "";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::In(ExprPtr operand, std::vector<storage::Value> list,
                 bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIn;
  e->left = std::move(operand);
  e->in_list = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr Expr::Between(ExprPtr operand, storage::Value lo, storage::Value hi,
                      bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->left = std::move(operand);
  e->between_lo = std::move(lo);
  e->between_hi = std::move(hi);
  e->negated = negated;
  return e;
}

ExprPtr Expr::Like(ExprPtr operand, std::string pattern, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLike;
  e->left = std::move(operand);
  e->like_pattern = std::move(pattern);
  e->negated = negated;
  return e;
}

ExprPtr Expr::IsNull(ExprPtr operand, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->left = std::move(operand);
  e->negated = negated;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

namespace {

std::string QuoteLiteral(const storage::Value& v) {
  if (v.type() == storage::ValueType::kString) {
    std::string out = "'";
    for (char c : v.AsString()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return v.ToString();
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return QuoteLiteral(literal);
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kBinary: {
      const bool paren = op == BinOp::kOr || op == BinOp::kAnd;
      std::string l = left->ToSql();
      std::string r = right->ToSql();
      std::string body = l + " " + BinOpName(op) + " " + r;
      return paren ? "(" + body + ")" : body;
    }
    case ExprKind::kNot:
      return "NOT (" + left->ToSql() + ")";
    case ExprKind::kIn: {
      std::string body = left->ToSql();
      body += negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i) body += ", ";
        body += QuoteLiteral(in_list[i]);
      }
      body += ")";
      return body;
    }
    case ExprKind::kBetween:
      return left->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             QuoteLiteral(between_lo) + " AND " + QuoteLiteral(between_hi);
    case ExprKind::kLike:
      return left->ToSql() + (negated ? " NOT LIKE " : " LIKE ") +
             QuoteLiteral(storage::Value(like_pattern));
    case ExprKind::kIsNull:
      return left->ToSql() + (negated ? " IS NOT NULL" : " IS NULL");
  }
  return "?";
}

SelectItem SelectItem::Clone() const {
  SelectItem out = *this;
  if (expr) out.expr = expr->Clone();
  return out;
}

std::string SelectItem::ToSql() const {
  std::string body;
  if (agg != AggFunc::kNone) {
    body = std::string(AggFuncName(agg)) + "(" +
           (distinct ? "DISTINCT " : "") + (star ? "*" : expr->ToSql()) + ")";
  } else {
    body = star ? "*" : expr->ToSql();
  }
  if (!alias.empty()) body += " AS " + alias;
  return body;
}

bool SelectStatement::HasAggregates() const {
  for (const SelectItem& item : items) {
    if (item.agg != AggFunc::kNone) return true;
  }
  return !group_by.empty();
}

SelectStatement SelectStatement::Clone() const {
  SelectStatement out;
  out.distinct = distinct;
  out.from = from;
  out.limit = limit;
  out.items.reserve(items.size());
  for (const SelectItem& item : items) out.items.push_back(item.Clone());
  if (where) out.where = where->Clone();
  if (having) out.having = having->Clone();
  out.group_by.reserve(group_by.size());
  for (const ExprPtr& g : group_by) out.group_by.push_back(g->Clone());
  out.order_by.reserve(order_by.size());
  for (const OrderItem& o : order_by) {
    out.order_by.push_back(OrderItem{o.expr->Clone(), o.desc});
  }
  return out;
}

std::string SelectStatement::ToSql() const {
  std::ostringstream out;
  out << "SELECT ";
  if (distinct) out << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out << ", ";
    out << items[i].ToSql();
  }
  out << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i) out << ", ";
    out << from[i].table;
    if (!from[i].alias.empty()) out << " " << from[i].alias;
  }
  if (where) out << " WHERE " << where->ToSql();
  if (!group_by.empty()) {
    out << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out << ", ";
      out << group_by[i]->ToSql();
    }
  }
  if (having) out << " HAVING " << having->ToSql();
  if (!order_by.empty()) {
    out << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out << ", ";
      out << order_by[i].expr->ToSql();
      if (order_by[i].desc) out << " DESC";
    }
  }
  if (limit >= 0) out << " LIMIT " << limit;
  return out.str();
}

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == BinOp::kAnd) {
    CollectConjuncts(expr->left, out);
    CollectConjuncts(expr->right, out);
    return;
  }
  out->push_back(expr);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const ExprPtr& c : conjuncts) {
    acc = acc ? Expr::Binary(BinOp::kAnd, acc, c) : c;
  }
  return acc;
}

}  // namespace sql
}  // namespace asqp
