// Abstract syntax tree for the SPJ + aggregate dialect used by the paper's
// workloads:
//
//   SELECT [DISTINCT] item, ...        item: col | agg(col) | COUNT(*) | *
//   FROM t1 [a1], t2 [a2], ...         (or t1 JOIN t2 ON ...)
//   WHERE <boolean expr>               =, <>, <, <=, >, >=, AND, OR, NOT,
//                                      IN (...), BETWEEN, LIKE, IS [NOT] NULL,
//                                      and +,-,*,/ arithmetic
//   GROUP BY col, ...
//   HAVING <expr over output columns / aliases>
//   ORDER BY col [ASC|DESC], ...      (over output columns for aggregates)
//   LIMIT n
//
// The AST is deliberately mutation-friendly (shared_ptr nodes with Clone):
// the query-relaxation pass rewrites predicates in place on a clone.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace asqp {
namespace sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kBinary,
  kNot,
  kIn,
  kBetween,
  kLike,
  kIsNull,
};

enum class BinOp : uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons
  kAnd, kOr,                      // boolean
  kAdd, kSub, kMul, kDiv,         // arithmetic
};

const char* BinOpName(BinOp op);
bool IsComparison(BinOp op);

struct Expr {
  ExprKind kind;

  // kLiteral
  storage::Value literal;

  // kColumnRef: `qualifier.column` (qualifier may be empty). The binder
  // fills table_idx/col_idx; they are -1 until then.
  std::string qualifier;
  std::string column;
  int table_idx = -1;
  int col_idx = -1;

  // kBinary / kNot (kNot uses `left` only)
  BinOp op = BinOp::kEq;
  ExprPtr left;
  ExprPtr right;

  // kIn / kBetween / kLike / kIsNull operate on `left`; `negated` encodes
  // NOT IN / NOT BETWEEN / NOT LIKE / IS NOT NULL.
  bool negated = false;
  std::vector<storage::Value> in_list;   // kIn
  storage::Value between_lo;             // kBetween
  storage::Value between_hi;             // kBetween
  std::string like_pattern;              // kLike; '%' and '_' wildcards

  static ExprPtr Literal(storage::Value v);
  static ExprPtr ColumnRef(std::string qualifier, std::string column);
  static ExprPtr Binary(BinOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr In(ExprPtr operand, std::vector<storage::Value> list,
                    bool negated = false);
  static ExprPtr Between(ExprPtr operand, storage::Value lo, storage::Value hi,
                         bool negated = false);
  static ExprPtr Like(ExprPtr operand, std::string pattern,
                      bool negated = false);
  static ExprPtr IsNull(ExprPtr operand, bool negated = false);

  /// Deep copy.
  ExprPtr Clone() const;

  /// Render back to SQL text (used by embeddings, logging, and tests).
  std::string ToSql() const;
};

enum class AggFunc : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };
const char* AggFuncName(AggFunc f);

struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ExprPtr expr;       // null when star is set (e.g. COUNT(*), SELECT *)
  bool star = false;  // `*` or COUNT(*)
  bool distinct = false;  // COUNT(DISTINCT expr)
  std::string alias;

  SelectItem Clone() const;
  std::string ToSql() const;
};

struct TableRef {
  std::string table;
  std::string alias;  // empty means use table name

  const std::string& binding_name() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

/// \brief A parsed SELECT statement.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by;
  /// HAVING over the aggregate output: column refs name output columns
  /// (select-item aliases, grouped column names, or lower-case aggregate
  /// function names).
  ExprPtr having;                // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;            // -1 means no LIMIT

  bool HasAggregates() const;

  /// Deep copy.
  SelectStatement Clone() const;

  /// Render back to SQL text.
  std::string ToSql() const;
};

/// Split a boolean expression into top-level AND conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Rebuild a conjunction from a conjunct list (null for empty list).
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

}  // namespace sql
}  // namespace asqp
