#include "sql/binder.h"

#include <algorithm>

#include "sql/parser.h"
#include "util/string_util.h"

namespace asqp {
namespace sql {

namespace {

using util::Result;
using util::Status;

class Binder {
 public:
  Binder(const SelectStatement& stmt, const storage::Database& db)
      : db_(db), out_{} {
    out_.stmt = stmt.Clone();
  }

  Result<BoundQuery> Run() {
    // Resolve FROM tables.
    for (const TableRef& ref : out_.stmt.from) {
      ASQP_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                            db_.GetTable(ref.table));
      out_.tables.push_back(std::move(t));
    }
    // Resolve column references everywhere.
    for (SelectItem& item : out_.stmt.items) {
      if (item.expr) ASQP_RETURN_NOT_OK(BindExpr(item.expr));
    }
    if (out_.stmt.where) ASQP_RETURN_NOT_OK(BindExpr(out_.stmt.where));
    for (ExprPtr& g : out_.stmt.group_by) ASQP_RETURN_NOT_OK(BindExpr(g));
    // HAVING and, in aggregate queries, ORDER BY reference *output*
    // columns (aliases / aggregate names); leave refs that do not resolve
    // against the tables unbound — the executor resolves them by output
    // name.
    const bool lenient_order = out_.stmt.HasAggregates();
    for (OrderItem& o : out_.stmt.order_by) {
      ASQP_RETURN_NOT_OK(BindExpr(o.expr, lenient_order));
    }
    if (out_.stmt.having) {
      ASQP_RETURN_NOT_OK(BindExpr(out_.stmt.having, /*lenient=*/true));
    }

    // Classify WHERE conjuncts.
    out_.filters.resize(out_.tables.size());
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(out_.stmt.where, &conjuncts);
    for (ExprPtr& c : conjuncts) {
      ASQP_RETURN_NOT_OK(Classify(c));
    }
    return std::move(out_);
  }

 private:
  Status BindExpr(const ExprPtr& expr, bool lenient = false) {
    if (!expr) return Status::OK();
    if (expr->kind == ExprKind::kColumnRef) {
      const Status st = ResolveColumn(expr.get());
      if (!st.ok() && lenient && st.code() == util::StatusCode::kNotFound) {
        return Status::OK();  // resolved by output name at execution
      }
      return st;
    }
    ASQP_RETURN_NOT_OK(BindExpr(expr->left, lenient));
    ASQP_RETURN_NOT_OK(BindExpr(expr->right, lenient));
    return Status::OK();
  }

  Status ResolveColumn(Expr* ref) {
    int found_table = -1;
    int found_col = -1;
    for (size_t t = 0; t < out_.stmt.from.size(); ++t) {
      const TableRef& tr = out_.stmt.from[t];
      if (!ref->qualifier.empty() && ref->qualifier != tr.binding_name() &&
          ref->qualifier != tr.table) {
        continue;
      }
      auto idx = out_.tables[t]->schema().FieldIndex(ref->column);
      if (!idx.has_value()) continue;
      if (found_table >= 0) {
        return Status::InvalidArgument(
            util::Format("ambiguous column reference '%s'", ref->column.c_str()));
      }
      found_table = static_cast<int>(t);
      found_col = static_cast<int>(*idx);
    }
    if (found_table < 0) {
      return Status::NotFound(util::Format(
          "column '%s%s%s' not found in any FROM table",
          ref->qualifier.c_str(), ref->qualifier.empty() ? "" : ".",
          ref->column.c_str()));
    }
    ref->table_idx = found_table;
    ref->col_idx = found_col;
    return Status::OK();
  }

  /// Tables referenced under `expr` appended to `tables` (deduped by caller).
  static void ReferencedTables(const ExprPtr& expr, std::vector<int>* tables) {
    if (!expr) return;
    if (expr->kind == ExprKind::kColumnRef) {
      tables->push_back(expr->table_idx);
      return;
    }
    ReferencedTables(expr->left, tables);
    ReferencedTables(expr->right, tables);
  }

  Status Classify(const ExprPtr& conjunct) {
    std::vector<int> refs;
    ReferencedTables(conjunct, &refs);
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());

    if (refs.empty()) {
      // Constant predicate; keep as residual (rare, cheap to evaluate).
      out_.residual.push_back(conjunct);
      out_.residual_tables.push_back({});
      return Status::OK();
    }
    if (refs.size() == 1) {
      out_.filters[refs[0]].push_back(conjunct);
      return Status::OK();
    }
    // t1.c = t2.c equi-join?
    if (refs.size() == 2 && conjunct->kind == ExprKind::kBinary &&
        conjunct->op == BinOp::kEq &&
        conjunct->left->kind == ExprKind::kColumnRef &&
        conjunct->right->kind == ExprKind::kColumnRef) {
      JoinPredicate jp;
      jp.left_table = conjunct->left->table_idx;
      jp.left_col = conjunct->left->col_idx;
      jp.right_table = conjunct->right->table_idx;
      jp.right_col = conjunct->right->col_idx;
      out_.joins.push_back(jp);
      return Status::OK();
    }
    out_.residual.push_back(conjunct);
    out_.residual_tables.push_back(refs);
    return Status::OK();
  }

  const storage::Database& db_;
  BoundQuery out_;
};

}  // namespace

Result<BoundQuery> Bind(const SelectStatement& stmt,
                        const storage::Database& db) {
  Binder binder(stmt, db);
  return binder.Run();
}

Result<BoundQuery> ParseAndBind(const std::string& sql,
                                const storage::Database& db) {
  ASQP_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Bind(stmt, db);
}

}  // namespace sql
}  // namespace asqp
