// Name resolution + predicate classification. The binder resolves every
// column reference against the catalog, then splits the WHERE clause into
//   * per-table filter conjuncts (reference exactly one table),
//   * equi-join predicates  (t1.c1 = t2.c2),
//   * residual conjuncts    (everything else).
// The executor consumes this decomposition directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace sql {

/// \brief An equi-join predicate between two FROM entries.
struct JoinPredicate {
  int left_table = -1;
  int left_col = -1;
  int right_table = -1;
  int right_col = -1;
};

/// \brief How the executor should produce one FROM entry's filtered
/// candidate rows. kFullScan (the binder's output) evaluates every visible
/// row; kIndexRange — chosen by the planner's access-path rule when an
/// ordered index exists and the converted conjunct is selective — binary-
/// searches the index for candidate ordinals first. Either way the
/// executor re-evaluates *all* filter conjuncts over the candidates, so an
/// access path can only change cost, never bytes (and the executor falls
/// back to kFullScan whenever the named index is unavailable at runtime).
struct AccessPath {
  enum class Kind : uint8_t { kFullScan, kIndexRange };
  Kind kind = Kind::kFullScan;
  /// Indexed column (schema position in the FROM entry's table).
  int column = -1;
  /// Value range of the converted conjunct, in Value::Compare order.
  bool has_lower = false;
  bool has_upper = false;
  bool lower_inclusive = true;
  bool upper_inclusive = true;
  storage::Value lower;
  storage::Value upper;
  /// Estimated selectivity of the converted conjunct (EXPLAIN only).
  double selectivity = 1.0;
};

/// \brief A fully resolved query, ready for execution.
struct BoundQuery {
  SelectStatement stmt;  // deep copy with annotated column refs
  std::vector<std::shared_ptr<storage::Table>> tables;  // aligned with stmt.from

  /// filters[t] = conjuncts referencing only table t.
  std::vector<std::vector<ExprPtr>> filters;
  std::vector<JoinPredicate> joins;
  std::vector<ExprPtr> residual;

  /// Tables referenced by each residual conjunct (aligned with `residual`).
  std::vector<std::vector<int>> residual_tables;

  /// Access path per FROM entry, chosen by the planner (plan::PlanQuery).
  /// Empty (the binder's output) = full scans everywhere; the executor
  /// also treats any size mismatch as all-full-scans.
  std::vector<AccessPath> access_paths;

  /// Join sequence chosen by the planner (plan::PlanQuery): the first
  /// entry seeds the join, the rest attach in order. Empty (the binder's
  /// output) = the executor picks its runtime-greedy order from actual
  /// filtered candidate counts. The executor ignores anything that is not
  /// a permutation of [0, num_tables).
  std::vector<int> join_order;

  size_t num_tables() const { return tables.size(); }
};

/// Resolve `stmt` against `db`.
[[nodiscard]] util::Result<BoundQuery> Bind(const SelectStatement& stmt,
                              const storage::Database& db);

/// Convenience: parse + bind.
[[nodiscard]] util::Result<BoundQuery> ParseAndBind(const std::string& sql,
                                      const storage::Database& db);

}  // namespace sql
}  // namespace asqp
