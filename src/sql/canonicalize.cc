#include "sql/canonicalize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/string_util.h"

namespace asqp {
namespace sql {

namespace {

/// How a literal renders: kExact keeps the type tag (scalar positions,
/// where INT64 vs DOUBLE changes the produced Value); kCompare normalizes
/// numeric spelling (comparison positions, where the executor compares
/// numerically across INT64/DOUBLE).
enum class LiteralMode { kExact, kCompare };

void AppendDouble(double d, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('\'');
  for (char c : s) {
    if (c == '\'') out->push_back('\'');
    out->push_back(c);
  }
  out->push_back('\'');
}

void AppendLiteral(const storage::Value& v, LiteralMode mode,
                   std::string* out) {
  switch (v.type()) {
    case storage::ValueType::kNull:
      out->append("NULL");
      return;
    case storage::ValueType::kString:
      out->append("s:");
      AppendQuoted(v.AsString(), out);
      return;
    case storage::ValueType::kInt64:
      if (mode == LiteralMode::kCompare) {
        out->append("n:");
        out->append(std::to_string(v.AsInt64()));
      } else {
        out->append("i:");
        out->append(std::to_string(v.AsInt64()));
      }
      return;
    case storage::ValueType::kDouble: {
      const double d = v.AsDouble();
      if (mode == LiteralMode::kCompare) {
        out->append("n:");
        // 2000 and 2000.0 compare equal, so they must render equal: an
        // integral double within the exact-integer range prints as an
        // integer. (Beyond 2^53 doubles are not exact anyway.)
        if (std::isfinite(d) && d == std::floor(d) &&
            std::abs(d) < 9007199254740992.0) {
          out->append(std::to_string(static_cast<int64_t>(d)));
        } else {
          AppendDouble(d, out);
        }
      } else {
        out->append("d:");
        AppendDouble(d, out);
      }
      return;
    }
  }
  out->append("?");
}

std::string CanonExpr(const Expr& e, LiteralMode mode);

/// Render a comparison/IN/BETWEEN operand: literals in compare mode,
/// everything else descends in exact mode (literals inside arithmetic
/// keep their type — `a + 5` and `a + 5.0` can yield different Values).
std::string CanonComparand(const Expr& e) {
  return CanonExpr(e, e.kind == ExprKind::kLiteral ? LiteralMode::kCompare
                                                   : LiteralMode::kExact);
}

/// The comparison parts a BETWEEN expands into. Under the evaluator's
/// semantics `x BETWEEN lo AND hi` is exactly `x >= lo AND x <= hi` (both
/// spellings are false whenever the operand or either bound is NULL), and
/// `x NOT BETWEEN lo AND hi` with non-NULL bounds is exactly
/// `x < lo OR x > hi`. Rendering the parts through the comparison rules
/// (>/>= flip to </<= with swapped operands) collapses the two spellings
/// to one fingerprint.
void BetweenParts(const Expr& e, std::vector<std::string>* parts) {
  const std::string operand = CanonComparand(*e.left);
  std::string lo, hi;
  AppendLiteral(e.between_lo, LiteralMode::kCompare, &lo);
  AppendLiteral(e.between_hi, LiteralMode::kCompare, &hi);
  if (!e.negated) {
    // x >= lo == lo <= x;  x <= hi.
    parts->push_back("(<= " + lo + " " + operand + ")");
    parts->push_back("(<= " + operand + " " + hi + ")");
  } else {
    // x < lo;  x > hi == hi < x.
    parts->push_back("(< " + operand + " " + lo + ")");
    parts->push_back("(< " + hi + " " + operand + ")");
  }
}

/// Whether a kBetween may expand into its comparison parts. Non-negated:
/// always (with a NULL bound both spellings are constant-false). Negated:
/// only when both bounds are non-NULL — NOT BETWEEN with a NULL bound is
/// constant-false, but `x < NULL OR x > hi` can still pass via the other
/// disjunct, so the spellings differ and must not collide.
bool BetweenExpands(const Expr& e) {
  return !e.negated || (!e.between_lo.is_null() && !e.between_hi.is_null());
}

/// Flatten a same-op AND/OR chain into rendered operand parts. A BETWEEN
/// operand whose expansion op matches the chain (AND for BETWEEN, OR for
/// NOT BETWEEN) contributes its paired-inequality parts, so both
/// spellings flatten identically.
void FlattenParts(const Expr& e, BinOp op, std::vector<std::string>* parts) {
  if (e.kind == ExprKind::kBinary && e.op == op) {
    FlattenParts(*e.left, op, parts);
    FlattenParts(*e.right, op, parts);
    return;
  }
  if (e.kind == ExprKind::kBetween && BetweenExpands(e) &&
      ((op == BinOp::kAnd && !e.negated) || (op == BinOp::kOr && e.negated))) {
    BetweenParts(e, parts);
    return;
  }
  parts->push_back(CanonExpr(e, LiteralMode::kExact));
}

std::string CanonExpr(const Expr& e, LiteralMode mode) {
  std::string out;
  switch (e.kind) {
    case ExprKind::kLiteral:
      AppendLiteral(e.literal, mode, &out);
      return out;
    case ExprKind::kColumnRef:
      if (e.table_idx >= 0 && e.col_idx >= 0) {
        // Positional form: alias spelling is gone after binding.
        out = "t" + std::to_string(e.table_idx) + ".c" +
              std::to_string(e.col_idx);
      } else {
        // Unbound (e.g. HAVING refs over output columns): spelled form.
        out = "col:" + e.qualifier + ":" + e.column;
      }
      return out;
    case ExprKind::kBinary: {
      switch (e.op) {
        case BinOp::kAnd:
        case BinOp::kOr: {
          std::vector<std::string> parts;
          FlattenParts(e, e.op, &parts);
          std::sort(parts.begin(), parts.end());
          out = e.op == BinOp::kAnd ? "(AND" : "(OR";
          for (const std::string& p : parts) {
            out.push_back(' ');
            out.append(p);
          }
          out.push_back(')');
          return out;
        }
        case BinOp::kEq:
        case BinOp::kNe: {
          std::string l = CanonComparand(*e.left);
          std::string r = CanonComparand(*e.right);
          if (r < l) std::swap(l, r);
          out = e.op == BinOp::kEq ? "(= " : "(<> ";
          out += l + " " + r + ")";
          return out;
        }
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          // Normalize direction: a > b  ==  b < a;  a >= b  ==  b <= a.
          const bool flip = e.op == BinOp::kGt || e.op == BinOp::kGe;
          const Expr& lhs = flip ? *e.right : *e.left;
          const Expr& rhs = flip ? *e.left : *e.right;
          const bool strict = e.op == BinOp::kLt || e.op == BinOp::kGt;
          out = strict ? "(< " : "(<= ";
          out += CanonComparand(lhs) + " " + CanonComparand(rhs) + ")";
          return out;
        }
        case BinOp::kAdd:
        case BinOp::kMul: {
          // Commutative (IEEE addition/multiplication of two operands is
          // order-insensitive); associativity is NOT assumed, so chains
          // are not flattened.
          std::string l = CanonExpr(*e.left, LiteralMode::kExact);
          std::string r = CanonExpr(*e.right, LiteralMode::kExact);
          if (r < l) std::swap(l, r);
          out = e.op == BinOp::kAdd ? "(+ " : "(* ";
          out += l + " " + r + ")";
          return out;
        }
        case BinOp::kSub:
        case BinOp::kDiv:
          out = e.op == BinOp::kSub ? "(- " : "(/ ";
          out += CanonExpr(*e.left, LiteralMode::kExact) + " " +
                 CanonExpr(*e.right, LiteralMode::kExact) + ")";
          return out;
      }
      return out;
    }
    case ExprKind::kNot:
      return "(NOT " + CanonExpr(*e.left, LiteralMode::kExact) + ")";
    case ExprKind::kIn: {
      std::vector<std::string> vals;
      vals.reserve(e.in_list.size());
      for (const storage::Value& v : e.in_list) {
        std::string s;
        AppendLiteral(v, LiteralMode::kCompare, &s);
        vals.push_back(std::move(s));
      }
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      out = e.negated ? "(NIN " : "(IN ";
      out += CanonComparand(*e.left) + " [";
      for (size_t i = 0; i < vals.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append(vals[i]);
      }
      out += "])";
      return out;
    }
    case ExprKind::kBetween: {
      if (BetweenExpands(e)) {
        // Standalone BETWEEN renders as the AND/OR of its expansion parts,
        // matching what the paired-inequality spelling renders at the
        // same position.
        std::vector<std::string> parts;
        BetweenParts(e, &parts);
        std::sort(parts.begin(), parts.end());
        out = e.negated ? "(OR" : "(AND";
        for (const std::string& p : parts) {
          out.push_back(' ');
          out.append(p);
        }
        out.push_back(')');
        return out;
      }
      // Negated BETWEEN with a NULL bound: no sound expansion exists.
      out = "(NBETWEEN ";
      out += CanonComparand(*e.left);
      out.push_back(' ');
      AppendLiteral(e.between_lo, LiteralMode::kCompare, &out);
      out.push_back(' ');
      AppendLiteral(e.between_hi, LiteralMode::kCompare, &out);
      out.push_back(')');
      return out;
    }
    case ExprKind::kLike: {
      out = e.negated ? "(NLIKE " : "(LIKE ";
      out += CanonComparand(*e.left) + " ";
      AppendQuoted(e.like_pattern, &out);
      out.push_back(')');
      return out;
    }
    case ExprKind::kIsNull:
      return (e.negated ? "(NOTNULL " : "(ISNULL ") +
             CanonExpr(*e.left, LiteralMode::kExact) + ")";
  }
  return out;
}

void AppendSelectItem(const SelectItem& item, std::string* out) {
  out->append(AggFuncName(item.agg));
  out->push_back(':');
  if (item.distinct) out->append("D:");
  if (item.star) {
    out->push_back('*');
  } else if (item.expr != nullptr) {
    out->append(CanonExpr(*item.expr, LiteralMode::kExact));
  }
  // The alias is the output column name — part of the result bytes.
  if (!item.alias.empty()) {
    out->append(" AS ");
    out->append(item.alias);
  }
}

}  // namespace

std::string CanonicalizeExpr(const Expr& expr) {
  return CanonExpr(expr, LiteralMode::kExact);
}

std::string CanonicalizeStatement(const SelectStatement& stmt) {
  std::string out = "SELECT";
  if (stmt.distinct) out += " DISTINCT";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    out += i == 0 ? " " : "; ";
    AppendSelectItem(stmt.items[i], &out);
  }
  // FROM order is significant (join seeding, `SELECT *` column order);
  // aliases are not (refs render positionally).
  out += " FROM";
  for (const TableRef& t : stmt.from) {
    out.push_back(' ');
    out.append(t.table);
  }
  if (stmt.where != nullptr) {
    out += " WHERE " + CanonExpr(*stmt.where, LiteralMode::kExact);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY";
    for (const ExprPtr& g : stmt.group_by) {
      out.push_back(' ');
      out.append(CanonExpr(*g, LiteralMode::kExact));
    }
  }
  if (stmt.having != nullptr) {
    out += " HAVING " + CanonExpr(*stmt.having, LiteralMode::kExact);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY";
    for (const OrderItem& o : stmt.order_by) {
      out.push_back(' ');
      out.append(CanonExpr(*o.expr, LiteralMode::kExact));
      if (o.desc) out += " DESC";
    }
  }
  if (stmt.limit >= 0) out += " LIMIT " + std::to_string(stmt.limit);
  return out;
}

QueryFingerprint FingerprintQuery(const SelectStatement& bound_stmt) {
  QueryFingerprint fp;
  fp.canonical = CanonicalizeStatement(bound_stmt);
  fp.hash = util::Fnv1a(fp.canonical);
  return fp;
}

}  // namespace sql
}  // namespace asqp
