// Query fingerprinting for the serving layer's answer cache.
//
// CanonicalizeStatement renders a *bound* SELECT statement (column refs
// annotated by sql::Bind) into a canonical text form in which the
// equivalence-preserving spelling choices of exploratory front-ends
// collapse:
//   - table aliases vanish: column refs render positionally as
//     t<table_idx>.c<col_idx>, so `FROM title t WHERE t.year > 2000` and
//     `FROM title x WHERE x.year > 2000` agree;
//   - top-level AND/OR operand order is sorted (conjunct/disjunct chains
//     are flattened first), and the two operands of the commutative
//     operators =, <>, + and * are ordered canonically; > and >= flip to
//     < and <= with swapped operands;
//   - literals that are *compared* (a direct operand of a comparison, IN
//     list, or BETWEEN bound) normalize their numeric spelling: the
//     executor compares INT64 and DOUBLE numerically, so `year > 2000`
//     and `year > 2000.0` are the same predicate and render identically.
//     Literals in scalar position (select items, GROUP BY, arithmetic)
//     keep their exact type — `SELECT 5` and `SELECT 5.0` produce
//     differently-typed rows and must NOT collide;
//   - IN lists are sorted and deduplicated (set semantics).
//
// Everything that can change the result bytes stays significant: select
// item order and aliases (output column names), FROM order (join seeding
// and `SELECT *` column order), GROUP BY order (canonical group-key
// order), ORDER BY, DISTINCT, and LIMIT.
//
// The canonical text is a private s-expression dialect, not SQL — it is
// never re-parsed, only hashed and compared for equality.
#pragma once

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace asqp {
namespace sql {

/// \brief Cache key for one canonicalized query: a stable 64-bit FNV-1a
/// hash plus the full canonical text for collision checking.
struct QueryFingerprint {
  uint64_t hash = 0;
  std::string canonical;

  bool operator==(const QueryFingerprint& other) const {
    return hash == other.hash && canonical == other.canonical;
  }
  bool operator!=(const QueryFingerprint& other) const {
    return !(*this == other);
  }
};

/// Canonical text of a bound statement (see file comment for the rules).
/// Statements whose column refs are unbound (table_idx < 0) still
/// canonicalize — the spelled qualifier.column is used instead of the
/// positional form — but then alias normalization does not apply.
std::string CanonicalizeStatement(const SelectStatement& stmt);

/// Canonical text of a single bound expression — the same rendering
/// CanonicalizeStatement applies to WHERE subtrees (BETWEEN expands to its
/// paired-inequality form, so the two spellings agree). The planner uses
/// this to detect redundant conjuncts.
std::string CanonicalizeExpr(const Expr& expr);

/// Fingerprint = stable FNV-1a hash of CanonicalizeStatement + the text.
QueryFingerprint FingerprintQuery(const SelectStatement& bound_stmt);

}  // namespace sql
}  // namespace asqp
