#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "util/string_util.h"

namespace asqp {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM",  "WHERE",  "GROUP",  "BY",    "ORDER",
      "LIMIT",  "AND",      "OR",    "NOT",    "IN",     "BETWEEN", "LIKE",
      "IS",     "NULL",     "AS",    "JOIN",   "INNER",  "ON",    "ASC",
      "DESC",   "COUNT",    "SUM",   "AVG",    "MIN",    "MAX",   "HAVING",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = util::ToLower(word);
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          // `1.` followed by a non-digit is "1" then symbol "." (qualified
          // names never start with a digit, so this is unambiguous here).
          if (j + 1 >= n || !std::isdigit(static_cast<unsigned char>(input[j + 1]))) break;
          is_float = true;
        }
        ++j;
      }
      const std::string num = input.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += input[j];
        ++j;
      }
      if (!closed) {
        return util::Status::ParseError(
            util::Format("unterminated string literal at offset %zu", i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j;
    } else {
      // Symbols, including two-character operators.
      tok.type = TokenType::kSymbol;
      if ((c == '<' && i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) ||
          (c == '>' && i + 1 < n && input[i + 1] == '=') ||
          (c == '!' && i + 1 < n && input[i + 1] == '=')) {
        tok.text = input.substr(i, 2);
        if (tok.text == "!=") tok.text = "<>";
        i += 2;
      } else if (std::string("(),.=<>+-*/").find(c) != std::string::npos) {
        tok.text = std::string(1, c);
        ++i;
      } else {
        return util::Status::ParseError(
            util::Format("unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace asqp
