// SQL tokenizer.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace asqp {
namespace sql {

enum class TokenType : uint8_t {
  kKeyword,     // normalized upper-case keyword
  kIdentifier,  // table / column name (lower-cased)
  kInteger,
  kFloat,
  kString,      // quoted string literal, unescaped
  kSymbol,      // punctuation / operator: ( ) , . = <> < <= > >= + - * /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keyword/identifier/symbol text or string value
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenize `input`. Keywords are recognized case-insensitively and
/// normalized to upper-case; identifiers are lower-cased.
[[nodiscard]] util::Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace asqp
