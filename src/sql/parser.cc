#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/string_util.h"

namespace asqp {
namespace sql {

namespace {

using util::Result;
using util::Status;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    ASQP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) stmt.distinct = true;

    // Select list.
    while (true) {
      ASQP_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }

    ASQP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    // FROM list with optional JOIN ... ON (normalized to cross product +
    // WHERE conjuncts).
    std::vector<ExprPtr> join_conjuncts;
    ASQP_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt.from.push_back(std::move(first));
    while (true) {
      if (AcceptSymbol(",")) {
        ASQP_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt.from.push_back(std::move(t));
        continue;
      }
      if (PeekKeyword("JOIN") || PeekKeyword("INNER")) {
        AcceptKeyword("INNER");
        ASQP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        ASQP_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt.from.push_back(std::move(t));
        ASQP_RETURN_NOT_OK(ExpectKeyword("ON"));
        ASQP_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        join_conjuncts.push_back(std::move(cond));
        continue;
      }
      break;
    }

    if (AcceptKeyword("WHERE")) {
      ASQP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (!join_conjuncts.empty()) {
      ExprPtr joined = AndAll(join_conjuncts);
      stmt.where = stmt.where ? Expr::Binary(BinOp::kAnd, joined, stmt.where)
                              : joined;
    }

    if (AcceptKeyword("GROUP")) {
      ASQP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr g, ParsePrimary());
        stmt.group_by.push_back(std::move(g));
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("HAVING")) {
      if (stmt.group_by.empty() && !stmt.HasAggregates()) {
        return Status::ParseError("HAVING requires GROUP BY or aggregates");
      }
      ASQP_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }

    if (AcceptKeyword("ORDER")) {
      ASQP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        ASQP_ASSIGN_OR_RETURN(item.expr, ParsePrimary());
        if (AcceptKeyword("DESC")) item.desc = true;
        else AcceptKeyword("ASC");
        stmt.order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return ErrorHere("expected integer after LIMIT");
      }
      stmt.limit = Peek().int_value;
      Advance();
    }

    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    if (stmt.from.empty()) {
      return Status::ParseError("query has no FROM clause");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(util::Format(
          "expected %s at offset %zu (got '%s')", kw, Peek().position,
          Peek().text.c_str()));
    }
    return Status::OK();
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool AcceptSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(util::Format(
          "expected '%s' at offset %zu (got '%s')", sym, Peek().position,
          Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ErrorHere(const char* msg) {
    return Status::ParseError(
        util::Format("%s at offset %zu", msg, Peek().position));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    // Aggregate function?
    if (Peek().type == TokenType::kKeyword) {
      const std::string& kw = Peek().text;
      AggFunc agg = AggFunc::kNone;
      if (kw == "COUNT") agg = AggFunc::kCount;
      else if (kw == "SUM") agg = AggFunc::kSum;
      else if (kw == "AVG") agg = AggFunc::kAvg;
      else if (kw == "MIN") agg = AggFunc::kMin;
      else if (kw == "MAX") agg = AggFunc::kMax;
      if (agg != AggFunc::kNone) {
        Advance();
        item.agg = agg;
        ASQP_RETURN_NOT_OK(ExpectSymbol("("));
        if (AcceptKeyword("DISTINCT")) item.distinct = true;
        if (AcceptSymbol("*")) {
          if (item.distinct) return ErrorHere("DISTINCT * is not valid");
          item.star = true;
        } else {
          ASQP_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
        }
        ASQP_RETURN_NOT_OK(ExpectSymbol(")"));
        if (AcceptKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) {
            return ErrorHere("expected alias after AS");
          }
          item.alias = Peek().text;
          Advance();
        }
        return item;
      }
    }
    if (AcceptSymbol("*")) {
      item.star = true;
      return item;
    }
    ASQP_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      item.alias = Peek().text;
      Advance();
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name");
    }
    TableRef ref;
    ref.table = Peek().text;
    Advance();
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  // expr        := and_expr (OR and_expr)*
  // and_expr    := not_expr (AND not_expr)*
  // not_expr    := NOT not_expr | predicate
  // predicate   := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
  // additive    := multiplicative ((+|-) multiplicative)*
  // multiplicative := primary ((*|/) primary)*
  // primary     := literal | column_ref | ( expr )
  Result<ExprPtr> ParseExpr() {
    ASQP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ASQP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      ASQP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Not(std::move(operand));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    ASQP_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // Comparison operators.
    static const std::pair<const char*, BinOp> kCompare[] = {
        {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt}, {">", BinOp::kGt},
    };
    for (const auto& [sym, op] : kCompare) {
      if (AcceptSymbol(sym)) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Binary(op, std::move(left), std::move(right));
      }
    }
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (Peek(1).text == "IN" || Peek(1).text == "BETWEEN" ||
         Peek(1).text == "LIKE")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("IN")) {
      ASQP_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<storage::Value> list;
      while (true) {
        ASQP_ASSIGN_OR_RETURN(storage::Value v, ParseLiteralValue());
        list.push_back(std::move(v));
        if (!AcceptSymbol(",")) break;
      }
      ASQP_RETURN_NOT_OK(ExpectSymbol(")"));
      return Expr::In(std::move(left), std::move(list), negated);
    }
    if (AcceptKeyword("BETWEEN")) {
      ASQP_ASSIGN_OR_RETURN(storage::Value lo, ParseLiteralValue());
      ASQP_RETURN_NOT_OK(ExpectKeyword("AND"));
      ASQP_ASSIGN_OR_RETURN(storage::Value hi, ParseLiteralValue());
      return Expr::Between(std::move(left), std::move(lo), std::move(hi),
                           negated);
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return ErrorHere("expected string pattern after LIKE");
      }
      std::string pattern = Peek().text;
      Advance();
      return Expr::Like(std::move(left), std::move(pattern), negated);
    }
    if (AcceptKeyword("IS")) {
      bool is_not = AcceptKeyword("NOT");
      ASQP_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return Expr::IsNull(std::move(left), is_not);
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    ASQP_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinOp::kAdd, std::move(left), std::move(right));
      } else if (AcceptSymbol("-")) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Binary(BinOp::kSub, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASQP_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (AcceptSymbol("*")) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Binary(BinOp::kMul, std::move(left), std::move(right));
      } else if (AcceptSymbol("/")) {
        ASQP_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Binary(BinOp::kDiv, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<storage::Value> ParseLiteralValue() {
    bool neg = AcceptSymbol("-");
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        int64_t v = tok.int_value;
        Advance();
        return storage::Value(neg ? -v : v);
      }
      case TokenType::kFloat: {
        double v = tok.float_value;
        Advance();
        return storage::Value(neg ? -v : v);
      }
      case TokenType::kString: {
        if (neg) return ErrorHere("cannot negate a string literal");
        storage::Value v{tok.text};
        Advance();
        return v;
      }
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          if (neg) return ErrorHere("cannot negate NULL");
          Advance();
          return storage::Value::Null();
        }
        [[fallthrough]];
      default:
        return ErrorHere("expected literal value");
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString: {
        ASQP_ASSIGN_OR_RETURN(storage::Value v, ParseLiteralValue());
        return Expr::Literal(std::move(v));
      }
      case TokenType::kSymbol:
        if (tok.text == "(") {
          Advance();
          ASQP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          ASQP_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        if (tok.text == "-") {
          ASQP_ASSIGN_OR_RETURN(storage::Value v, ParseLiteralValue());
          return Expr::Literal(std::move(v));
        }
        return ErrorHere("unexpected symbol");
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          Advance();
          return Expr::Literal(storage::Value::Null());
        }
        // Aggregate-function names act as identifiers when not called:
        // e.g. HAVING count >= 3 references the output column "count".
        if ((tok.text == "COUNT" || tok.text == "SUM" || tok.text == "AVG" ||
             tok.text == "MIN" || tok.text == "MAX") &&
            !(Peek(1).type == TokenType::kSymbol && Peek(1).text == "(")) {
          std::string name = util::ToLower(tok.text);
          Advance();
          return Expr::ColumnRef("", std::move(name));
        }
        return ErrorHere("unexpected keyword");
      case TokenType::kIdentifier: {
        std::string first = tok.text;
        Advance();
        if (AcceptSymbol(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return ErrorHere("expected column name after '.'");
          }
          std::string col = Peek().text;
          Advance();
          return Expr::ColumnRef(std::move(first), std::move(col));
        }
        return Expr::ColumnRef("", std::move(first));
      }
      case TokenType::kEnd:
        return ErrorHere("unexpected end of input");
    }
    return ErrorHere("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<SelectStatement> Parse(const std::string& sql) {
  ASQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace sql
}  // namespace asqp
