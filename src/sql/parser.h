// Recursive-descent parser for the dialect described in ast.h.
#pragma once

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace asqp {
namespace sql {

/// Parse one SELECT statement. Returns ParseError with a position-annotated
/// message on malformed input.
[[nodiscard]] util::Result<SelectStatement> Parse(const std::string& sql);

}  // namespace sql
}  // namespace asqp
