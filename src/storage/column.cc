#include "storage/column.h"

#include "util/string_util.h"

namespace asqp {
namespace storage {

util::Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return util::Status::OK();
  }
  switch (type_) {
    case ValueType::kInt64:
      if (v.type() == ValueType::kInt64) {
        AppendInt64(v.AsInt64());
        return util::Status::OK();
      }
      if (v.type() == ValueType::kDouble) {
        AppendInt64(static_cast<int64_t>(v.AsDouble()));
        return util::Status::OK();
      }
      break;
    case ValueType::kDouble:
      if (v.is_numeric()) {
        AppendDouble(v.ToNumeric());
        return util::Status::OK();
      }
      break;
    case ValueType::kString:
      if (v.type() == ValueType::kString) {
        AppendString(v.AsString());
        return util::Status::OK();
      }
      break;
    default:
      break;
  }
  return util::Status::InvalidArgument(
      util::Format("cannot append %s value to %s column",
                   ValueTypeName(v.type()), ValueTypeName(type_)));
}

}  // namespace storage
}  // namespace asqp
