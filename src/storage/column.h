// Columnar storage for one table column: a typed dense vector plus a null
// mask. Strings are dictionary-encoded, which keeps the synthetic datasets
// (highly repetitive categoricals) compact and makes equality fast.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace asqp {
namespace storage {

class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return null_.size(); }

  void AppendNull() {
    null_.push_back(true);
    switch (type_) {
      case ValueType::kInt64: ints_.push_back(0); break;
      case ValueType::kDouble: doubles_.push_back(0.0); break;
      case ValueType::kString: codes_.push_back(0); break;
      default: break;
    }
  }

  void AppendInt64(int64_t v) {
    null_.push_back(false);
    ints_.push_back(v);
  }

  void AppendDouble(double v) {
    null_.push_back(false);
    doubles_.push_back(v);
  }

  void AppendString(const std::string& v) {
    null_.push_back(false);
    codes_.push_back(Intern(v));
  }

  /// Append a Value; the value type must match the column type or be NULL.
  [[nodiscard]] util::Status AppendValue(const Value& v);

  bool IsNull(size_t row) const { return null_[row]; }
  int64_t Int64At(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  const std::string& StringAt(size_t row) const { return dict_[codes_[row]]; }
  uint32_t StringCodeAt(size_t row) const { return codes_[row]; }
  size_t dict_size() const { return dict_.size(); }
  const std::string& dict_entry(uint32_t code) const { return dict_[code]; }

  /// Materialize row `row` as a Value (allocates for strings).
  Value ValueAt(size_t row) const {
    if (null_[row]) return Value::Null();
    switch (type_) {
      case ValueType::kInt64: return Value(ints_[row]);
      case ValueType::kDouble: return Value(doubles_[row]);
      case ValueType::kString: return Value(dict_[codes_[row]]);
      default: return Value::Null();
    }
  }

  /// Numeric view of row `row` (0.0 for NULL / strings).
  double NumericAt(size_t row) const {
    if (null_[row]) return 0.0;
    switch (type_) {
      case ValueType::kInt64: return static_cast<double>(ints_[row]);
      case ValueType::kDouble: return doubles_[row];
      default: return 0.0;
    }
  }

 private:
  uint32_t Intern(const std::string& s) {
    auto it = dict_index_.find(s);
    if (it != dict_index_.end()) return it->second;
    const uint32_t code = static_cast<uint32_t>(dict_.size());
    dict_.push_back(s);
    dict_index_.emplace(s, code);
    return code;
  }

  ValueType type_;
  std::vector<bool> null_;
  std::vector<int64_t> ints_;      // used when type_ == kInt64
  std::vector<double> doubles_;    // used when type_ == kDouble
  std::vector<uint32_t> codes_;    // used when type_ == kString
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
};

}  // namespace storage
}  // namespace asqp
