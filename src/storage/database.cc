#include "storage/database.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace asqp {
namespace storage {

util::Status Database::AddTable(std::shared_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return util::Status::AlreadyExists(
        util::Format("table %s already exists", name.c_str()));
  }
  tables_.emplace(name, std::move(table));
  return util::Status::OK();
}

util::Result<std::shared_ptr<Table>> Database::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return util::Status::NotFound(
        util::Format("table %s does not exist", name.c_str()));
  }
  return it->second;
}

void ApproximationSet::Add(const std::string& table, uint32_t row) {
  rows_[table].push_back(row);
  sealed_ = false;
}

void ApproximationSet::Seal() {
  for (auto& [_, v] : rows_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  sealed_ = true;
}

size_t ApproximationSet::TotalTuples() const {
  assert(sealed_);
  size_t total = 0;
  for (const auto& [_, v] : rows_) total += v.size();
  return total;
}

bool ApproximationSet::Contains(const std::string& table, uint32_t row) const {
  assert(sealed_);
  auto it = rows_.find(table);
  if (it == rows_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), row);
}

const std::vector<uint32_t>& ApproximationSet::RowsFor(
    const std::string& table) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = rows_.find(table);
  return it == rows_.end() ? kEmpty : it->second;
}

size_t DatabaseView::VisibleRows(const Table& table) const {
  if (subset_ == nullptr) return table.num_rows();
  return subset_->RowsFor(table.name()).size();
}

uint32_t DatabaseView::PhysicalRow(const Table& table, size_t ordinal) const {
  if (subset_ == nullptr) return static_cast<uint32_t>(ordinal);
  return subset_->RowsFor(table.name())[ordinal];
}

}  // namespace storage
}  // namespace asqp
