// Database catalog: a set of named tables, plus the DatabaseView
// abstraction used to execute queries over either the full data or an
// approximation set without materializing the subset.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace asqp {
namespace storage {

class Database {
 public:
  /// Add a table; fails if a table with the same name exists.
  [[nodiscard]] util::Status AddTable(std::shared_ptr<Table> table);

  /// Fetch a table by name.
  [[nodiscard]] util::Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
    return names;
  }

  size_t TotalRows() const {
    size_t total = 0;
    for (const auto& [_, t] : tables_) total += t->num_rows();
    return total;
  }

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

/// \brief Per-table subset of row ids: the "approximation set" S of the
/// paper. Row id vectors are kept sorted and unique.
class ApproximationSet {
 public:
  /// Add row `row` of table `table`; duplicate inserts are ignored.
  void Add(const std::string& table, uint32_t row);

  /// Number of tuples across all tables (the |S| bounded by k).
  size_t TotalTuples() const;

  bool Contains(const std::string& table, uint32_t row) const;

  const std::map<std::string, std::vector<uint32_t>>& rows() const {
    return rows_;
  }

  /// Row ids kept for `table` (empty if the table is absent).
  const std::vector<uint32_t>& RowsFor(const std::string& table) const;

  /// Normalize: sort + dedupe each per-table vector. Must be called after a
  /// batch of Add()s before Contains()/execution (Add keeps a dirty flag).
  void Seal();

 private:
  std::map<std::string, std::vector<uint32_t>> rows_;
  bool sealed_ = true;
};

/// \brief A view of a database restricted (optionally) to an
/// ApproximationSet. The executor scans through views so approximate
/// execution needs no data copies.
class DatabaseView {
 public:
  /// Full-database view.
  explicit DatabaseView(const Database* db) : db_(db), subset_(nullptr) {}

  /// Subset view; `subset` must outlive the view and be sealed.
  DatabaseView(const Database* db, const ApproximationSet* subset)
      : db_(db), subset_(subset) {}

  const Database& db() const { return *db_; }
  bool restricted() const { return subset_ != nullptr; }
  /// The restricting subset (null for a full-database view). Exposed for
  /// scope identity checks (storage::IndexCatalog::CoversView): two views
  /// over the same db and the same subset see identical visible rows.
  const ApproximationSet* subset() const { return subset_; }

  /// Number of visible rows of `table`.
  size_t VisibleRows(const Table& table) const;

  /// Map a visible-row ordinal to a physical row id of `table`.
  uint32_t PhysicalRow(const Table& table, size_t ordinal) const;

 private:
  const Database* db_;
  const ApproximationSet* subset_;
};

}  // namespace storage
}  // namespace asqp
