#include "storage/index.h"

#include <algorithm>

#include "util/fault_injector.h"
#include "util/string_util.h"

namespace asqp {
namespace storage {

IndexBound IndexBound::Equal(Value v) {
  IndexBound bound;
  bound.has_lower = bound.has_upper = true;
  bound.lower = v;
  bound.upper = std::move(v);
  return bound;
}

util::Result<OrderedIndex> OrderedIndex::Build(const DatabaseView& view,
                                               const Table& table,
                                               int column) {
  if (column < 0 || static_cast<size_t>(column) >= table.num_columns()) {
    return util::Status::InvalidArgument(
        util::Format("index build: %s has no column %d", table.name().c_str(),
                     column));
  }
  if (ASQP_FAULT_POINT("index.build")) {
    return util::Status::ResourceExhausted(util::Format(
        "injected fault(index.build): ordered index over %s.%s failed",
        table.name().c_str(),
        table.schema().field(static_cast<size_t>(column)).name.c_str()));
  }
  OrderedIndex index;
  index.table_ = table.name();
  index.column_ = column;
  const Column& col = table.column(static_cast<size_t>(column));
  const size_t visible = view.VisibleRows(table);
  index.keys_.reserve(visible);
  index.ordinals_.reserve(visible);
  for (size_t ord = 0; ord < visible; ++ord) {
    const uint32_t row = view.PhysicalRow(table, ord);
    Value v = col.ValueAt(row);
    if (v.is_null()) continue;  // comparisons never match NULL
    index.keys_.push_back(std::move(v));
    index.ordinals_.push_back(static_cast<uint32_t>(ord));
  }
  // Sort the permutation by (value, ordinal). keys_ arrives in ordinal
  // order, so a stable value sort of the positions yields ordinal-ordered
  // ties — deterministic for any input.
  std::vector<uint32_t> perm(index.ordinals_.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return index.keys_[a].Compare(index.keys_[b]) < 0;
  });
  std::vector<Value> keys;
  std::vector<uint32_t> ordinals;
  keys.reserve(perm.size());
  ordinals.reserve(perm.size());
  for (uint32_t p : perm) {
    keys.push_back(std::move(index.keys_[p]));
    ordinals.push_back(index.ordinals_[p]);
  }
  index.keys_ = std::move(keys);
  index.ordinals_ = std::move(ordinals);
  return index;
}

std::vector<uint32_t> OrderedIndex::LookupRange(const IndexBound& bound) const {
  const auto less = [](const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  };
  auto lo = keys_.begin();
  auto hi = keys_.end();
  if (bound.has_lower) {
    lo = bound.lower_inclusive
             ? std::lower_bound(keys_.begin(), keys_.end(), bound.lower, less)
             : std::upper_bound(keys_.begin(), keys_.end(), bound.lower, less);
  }
  if (bound.has_upper) {
    hi = bound.upper_inclusive
             ? std::upper_bound(keys_.begin(), keys_.end(), bound.upper, less)
             : std::lower_bound(keys_.begin(), keys_.end(), bound.upper, less);
  }
  if (lo >= hi) return {};
  std::vector<uint32_t> out(ordinals_.begin() + (lo - keys_.begin()),
                            ordinals_.begin() + (hi - keys_.begin()));
  // Candidates must come out in scan order (ascending ordinal), not value
  // order — that is what makes the consumer's output byte-identical to a
  // sequential full scan.
  std::sort(out.begin(), out.end());
  return out;
}

IndexCatalog IndexCatalog::Build(const DatabaseView& view,
                                 const std::vector<IndexColumnSpec>& columns,
                                 uint64_t generation) {
  IndexCatalog catalog;
  catalog.db_ = &view.db();
  catalog.subset_ = view.subset();
  catalog.generation_ = generation;
  for (const IndexColumnSpec& spec : columns) {
    auto table = view.db().GetTable(spec.table);
    if (!table.ok()) {
      ++catalog.failed_;
      continue;
    }
    util::Result<OrderedIndex> built =
        OrderedIndex::Build(view, *table.value(), spec.column);
    if (!built.ok()) {
      // Degrade, never break: the column stays unindexed and every query
      // over it takes the full-scan path.
      ++catalog.failed_;
      continue;
    }
    catalog.indexes_.emplace(std::make_pair(spec.table, spec.column),
                             std::move(built).value());
  }
  return catalog;
}

const OrderedIndex* IndexCatalog::Find(const std::string& table,
                                       int column) const {
  const auto it = indexes_.find(std::make_pair(table, column));
  return it == indexes_.end() ? nullptr : &it->second;
}

util::Result<std::vector<IndexColumnSpec>> ParseIndexColumns(
    const std::string& spec, const Database& db) {
  std::vector<IndexColumnSpec> out;
  for (const std::string& piece : util::Split(spec, ',')) {
    const std::string entry(util::Trim(piece));
    if (entry.empty()) continue;
    const size_t dot = entry.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == entry.size()) {
      return util::Status::InvalidArgument(util::Format(
          "index_columns: expected table.column, got \"%s\"", entry.c_str()));
    }
    const std::string table = entry.substr(0, dot);
    const std::string column = entry.substr(dot + 1);
    ASQP_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, db.GetTable(table));
    const auto idx = t->schema().FieldIndex(column);
    if (!idx.has_value()) {
      return util::Status::InvalidArgument(
          util::Format("index_columns: %s has no column \"%s\"",
                       table.c_str(), column.c_str()));
    }
    out.push_back({table, static_cast<int>(*idx)});
  }
  return out;
}

std::vector<IndexColumnSpec> AllIndexColumns(const Database& db) {
  std::vector<IndexColumnSpec> out;
  for (const std::string& name : db.TableNames()) {
    auto table = db.GetTable(name);
    if (!table.ok()) continue;
    for (size_t c = 0; c < table.value()->num_columns(); ++c) {
      out.push_back({name, static_cast<int>(c)});
    }
  }
  return out;
}

}  // namespace storage
}  // namespace asqp
