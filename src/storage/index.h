// Ordered secondary indexes over the rows visible through a DatabaseView.
//
// An OrderedIndex is a sorted permutation of one table's visible-row
// ordinals: entries are ordered by the column's Value (Value::Compare, the
// same total order the WHERE evaluator compares with) and NULL cells are
// excluded (a comparison against NULL is never true, so no predicate the
// planner converts can match them). Range lookups are two binary searches
// plus an ascending sort of the slice, so a selective predicate touches
// O(log n + matches) entries instead of scanning every visible row.
//
// An IndexCatalog owns the indexes of one *scope* — one (Database,
// ApproximationSet) pair, stamped with the model generation that built it.
// The executor only consults a catalog whose scope matches the view it is
// executing against (CoversView), so a full-database execution through an
// engine carrying approximation-set indexes silently full-scans instead of
// reading rows from the wrong scope. A column whose build fails (fault
// injection, future allocation failures) is simply absent from the
// catalog: every lookup path degrades to the sequential full scan, never
// to a wrong or dropped answer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/value.h"
#include "util/status.h"

namespace asqp {
namespace storage {

/// \brief A (possibly open-ended) range of column values, in the
/// Value::Compare order. Both bounds absent = every non-NULL row.
struct IndexBound {
  bool has_lower = false;
  bool has_upper = false;
  bool lower_inclusive = true;
  bool upper_inclusive = true;
  Value lower;
  Value upper;

  /// Point bound: lower = upper = v, both inclusive.
  static IndexBound Equal(Value v);
};

/// \brief Sorted-ordinal permutation index over one column of the rows
/// visible through a DatabaseView. Immutable once built.
class OrderedIndex {
 public:
  /// Build over `table`'s rows visible through `view`. Fails only on the
  /// registered `index.build` fault point (callers degrade to full scan).
  [[nodiscard]] static util::Result<OrderedIndex> Build(
      const DatabaseView& view, const Table& table, int column);

  const std::string& table_name() const { return table_; }
  int column() const { return column_; }
  /// Indexed entries = visible rows with a non-NULL column value.
  size_t num_entries() const { return ordinals_.size(); }

  /// Visible-row ordinals whose column value satisfies `bound`, sorted
  /// ascending — the same ordinal order a sequential scan visits, so a
  /// consumer that re-evaluates its predicates over these candidates
  /// produces byte-identical output to the full scan.
  std::vector<uint32_t> LookupRange(const IndexBound& bound) const;

 private:
  OrderedIndex() = default;

  std::string table_;
  int column_ = -1;
  /// Aligned arrays sorted by (keys_[i], ordinals_[i]): keys_ carries the
  /// column values so lookups never touch the (possibly mutated) view.
  std::vector<Value> keys_;
  std::vector<uint32_t> ordinals_;
};

/// \brief One column to index: table by name, column by schema position.
struct IndexColumnSpec {
  std::string table;
  int column = -1;
};

/// \brief The ordered indexes of one (Database, ApproximationSet) scope.
class IndexCatalog {
 public:
  /// Build indexes over `columns` of the rows visible through `view`.
  /// Never fails as a whole: a column whose build errors is skipped
  /// (counted in failed_builds()) and its queries full-scan instead.
  /// `generation` is the model generation this catalog serves (see
  /// AsqpModel::generation()); stale catalogs are detectable by stamp.
  static IndexCatalog Build(const DatabaseView& view,
                            const std::vector<IndexColumnSpec>& columns,
                            uint64_t generation);

  /// The index over (table, column), or null (not requested, build failed,
  /// or unknown) — null always means "use the full scan".
  const OrderedIndex* Find(const std::string& table, int column) const;

  /// True when `view` reads exactly the scope this catalog indexed: same
  /// Database and same ApproximationSet (by identity — index ordinals are
  /// positions in that subset's visible-row space).
  bool CoversView(const DatabaseView& view) const {
    return &view.db() == db_ && view.subset() == subset_;
  }

  uint64_t generation() const { return generation_; }
  size_t num_indexes() const { return indexes_.size(); }
  size_t failed_builds() const { return failed_; }

 private:
  const Database* db_ = nullptr;
  const ApproximationSet* subset_ = nullptr;
  uint64_t generation_ = 0;
  size_t failed_ = 0;
  std::map<std::pair<std::string, int>, OrderedIndex> indexes_;
};

/// Parse an AsqpConfig::index_columns spec — comma-separated
/// "table.column" pairs (column by name) — against `db`. Unknown tables or
/// columns fail with kInvalidArgument.
[[nodiscard]] util::Result<std::vector<IndexColumnSpec>> ParseIndexColumns(
    const std::string& spec, const Database& db);

/// Every column of every table in `db`: the index_auto default. The
/// approximation set is bounded by k tuples, so exhaustive indexing stays
/// cheap and the planner picks per-query which index (if any) pays.
std::vector<IndexColumnSpec> AllIndexColumns(const Database& db);

}  // namespace storage
}  // namespace asqp
