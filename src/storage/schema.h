// Relational schema: named, typed fields.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace asqp {
namespace storage {

/// \brief One column definition.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// \brief Ordered list of fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, if present.
  std::optional<size_t> FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    return std::nullopt;
  }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

 private:
  std::vector<Field> fields_;
};

}  // namespace storage
}  // namespace asqp
