#include "storage/table.h"

#include "util/string_util.h"

namespace asqp {
namespace storage {

util::Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return util::Status::InvalidArgument(
        util::Format("row arity %zu does not match schema arity %zu for table %s",
                     row.size(), columns_.size(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ASQP_RETURN_NOT_OK(columns_[i].AppendValue(row[i]));
  }
  return util::Status::OK();
}

}  // namespace storage
}  // namespace asqp
