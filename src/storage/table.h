// An in-memory columnar table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"
#include "util/status.h"

namespace asqp {
namespace storage {

class Table {
 public:
  Table(std::string name, Schema schema) : name_(std::move(name)), schema_(std::move(schema)) {
    columns_.reserve(schema_.num_fields());
    for (const Field& f : schema_.fields()) {
      columns_.emplace_back(f.type);
    }
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Append one row given as a vector of Values aligned with the schema.
  [[nodiscard]] util::Status AppendRow(const std::vector<Value>& row);

  /// Materialize a full row (for display / small results only).
  std::vector<Value> GetRow(size_t row) const {
    std::vector<Value> out;
    out.reserve(columns_.size());
    for (const Column& c : columns_) out.push_back(c.ValueAt(row));
    return out;
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace storage
}  // namespace asqp
