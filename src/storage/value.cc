#include "storage/value.h"

namespace asqp {
namespace storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "UNKNOWN";
}

}  // namespace storage
}  // namespace asqp
