// Scalar value type used at API boundaries (query constants, result rows).
// Bulk storage is columnar (see column.h); Value is for the narrow waist.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace asqp {
namespace storage {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// \brief A dynamically-typed scalar: NULL, INT64, DOUBLE, or STRING.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return repr_.index() == 0; }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: INT64 and DOUBLE both convert; anything else is 0.
  double ToNumeric() const {
    switch (type()) {
      case ValueType::kInt64: return static_cast<double>(AsInt64());
      case ValueType::kDouble: return AsDouble();
      default: return 0.0;
    }
  }

  bool is_numeric() const {
    const ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  }

  /// Total order used for sorting and comparison predicates. NULL sorts
  /// first; numerics compare numerically across INT64/DOUBLE; strings
  /// compare lexicographically; numeric < string across types.
  int Compare(const Value& other) const {
    const bool ln = is_null();
    const bool rn = other.is_null();
    if (ln || rn) return static_cast<int>(rn) - static_cast<int>(ln) == 0
                             ? 0
                             : (ln ? -1 : 1);
    const bool lnum = is_numeric();
    const bool rnum = other.is_numeric();
    if (lnum && rnum) {
      const double a = ToNumeric();
      const double b = other.ToNumeric();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    if (lnum != rnum) return lnum ? -1 : 1;
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const {
    switch (type()) {
      case ValueType::kNull: return "NULL";
      case ValueType::kInt64: return std::to_string(AsInt64());
      case ValueType::kDouble: {
        std::string s = std::to_string(AsDouble());
        return s;
      }
      case ValueType::kString: return AsString();
    }
    return "?";
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace storage
}  // namespace asqp
