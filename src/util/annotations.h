// Lock-discipline annotations, checked by the in-tree analyzer.
//
// These macros declare which mutex guards which field and which methods
// must not be entered while a given mutex is held. They expand to nothing
// at compile time on every toolchain — the checker is tools/asqp_lint
// (rules asqp-guard-violation / asqp-missing-guard), not the compiler —
// so the annotations cost nothing and work identically under GCC, Clang,
// and sanitizer builds. They deliberately mirror Clang thread-safety-
// analysis spelling (GUARDED_BY / EXCLUDES) so a future libclang-based
// checker could consume them unchanged.
//
// Usage:
//
//   class FifoSemaphore {
//    private:
//     std::mutex mu_;
//     size_t permits_ ASQP_GUARDED_BY(mu_);   // only touch under mu_
//    public:
//     void Release() ASQP_EXCLUDES(mu_);      // never call holding mu_
//   };
//
// asqp-lint enforces:
//   * every read/write of an ASQP_GUARDED_BY(mu) field happens inside a
//     lock_guard / unique_lock / scoped_lock / shared_lock scope on `mu`
//     (asqp-guard-violation);
//   * a field of an annotated class that is written under a lock but
//     carries no annotation is flagged, and a mutex member with no
//     declared protocol at all is flagged, so the annotation set cannot
//     silently rot (asqp-missing-guard);
//   * calling a same-class ASQP_EXCLUDES(mu) method while holding `mu`
//     is flagged as a self-deadlock (asqp-guard-violation).
//
// The mutex argument is matched by its final path component, so nested
// state can name its owner's lock: `size_t bytes ASQP_GUARDED_BY(mu);`
// inside AnswerCache::Shard matches `lock_guard lock(shard.mu)`.
#pragma once

#define ASQP_GUARDED_BY(mu)
#define ASQP_EXCLUDES(mu)
