// Cooperative cancellation and time/row budgets for long-running work.
//
// An ExecContext travels by const reference through an execution (query
// engine, baselines, training) and is polled inside inner loops. Polling
// is amortized through DeadlineTicker so the steady-state cost in a hot
// loop is a counter increment and one predictable branch; the clock and
// the cancellation flag are only touched every `stride` iterations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/fault_injector.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace asqp {
namespace util {

class ExecContext {
 public:
  /// Unlimited: never expires, never cancels, no row budget.
  ExecContext() = default;

  explicit ExecContext(Deadline deadline) : deadline_(deadline) {}

  static ExecContext WithDeadline(double seconds) {
    return ExecContext(Deadline::AfterSeconds(seconds));
  }
  static ExecContext Unlimited() { return ExecContext(); }

  const Deadline& deadline() const { return deadline_; }
  void set_deadline(Deadline deadline) { deadline_ = deadline; }

  /// Row budget for producers of intermediate/result rows (0 = unlimited).
  /// Exceeding it maps to kResourceExhausted.
  size_t max_rows() const { return max_rows_; }
  void set_max_rows(size_t rows) { max_rows_ = rows; }

  /// Arm this context for cooperative cancellation. Safe to call from a
  /// different thread than the one executing under the context.
  void EnableCancellation() {
    if (cancelled_ == nullptr) {
      cancelled_ = std::make_shared<std::atomic<bool>>(false);
    }
  }
  void RequestCancel() {
    EnableCancellation();
    cancelled_->store(true, std::memory_order_relaxed);
  }
  bool IsCancelled() const {
    return cancelled_ != nullptr &&
           cancelled_->load(std::memory_order_relaxed);
  }

  /// True when neither a deadline nor a cancellation flag nor a row budget
  /// is attached; callers may skip polling entirely.
  bool IsUnlimited() const {
    return deadline_.IsUnlimited() && cancelled_ == nullptr && max_rows_ == 0;
  }

  /// Poll the cancellation flag and the clock. `what` names the operation
  /// in the error message.
  [[nodiscard]] Status Check(const char* what) const {
    if (IsCancelled()) {
      return Status::Cancelled(std::string(what) + ": cancellation requested");
    }
    if (deadline_.Expired()) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    if (ASQP_FAULT_POINT("exec.deadline")) {
      return Status::DeadlineExceeded(
          "injected fault(exec.deadline): " + std::string(what) +
          ": deadline exceeded");
    }
    return Status::OK();
  }

  /// Row-budget check for a producer that has materialized `rows` rows.
  [[nodiscard]] Status CheckRows(size_t rows, const char* what) const {
    if (max_rows_ > 0 && rows > max_rows_) {
      return Status::ResourceExhausted(std::string(what) +
                                       ": row budget exceeded");
    }
    return Status::OK();
  }

 private:
  Deadline deadline_ = Deadline::Unlimited();
  std::shared_ptr<std::atomic<bool>> cancelled_;
  size_t max_rows_ = 0;
};

/// \brief Amortized deadline/cancellation polling for hot loops.
///
/// Tick() is called once per unit of work (row, trial, step); only every
/// `stride`-th call touches the clock. The first call always polls, so an
/// already-expired deadline is detected before any real work. Expiry is
/// sticky: once observed, every later Tick() reports it without polling.
class DeadlineTicker {
 public:
  explicit DeadlineTicker(const ExecContext& context, uint32_t stride = 1024)
      : context_(&context),
        stride_(stride == 0 ? 1 : stride),
        skip_(context.IsUnlimited()) {}

  /// Deadline-only form used by callers that hold a bare util::Deadline
  /// (the time-capped baselines).
  explicit DeadlineTicker(const Deadline& deadline, uint32_t stride = 1024)
      : owned_(ExecContext(deadline)),
        context_(&owned_),
        stride_(stride == 0 ? 1 : stride),
        skip_(deadline.IsUnlimited()) {}

  /// Returns non-OK (kDeadlineExceeded / kCancelled) once the context
  /// trips. `what` names the operation for the error message.
  [[nodiscard]] Status Tick(const char* what) {
    if (skip_) return Status::OK();
    if (!stopped_.ok()) return stopped_;
    if (ticks_++ % stride_ == 0) {
      stopped_ = context_->Check(what);
      return stopped_;
    }
    return Status::OK();
  }

  /// Boolean form for best-effort loops that return their best-so-far
  /// answer instead of an error (BRT / GRE baselines).
  bool Expired(const char* what = "time-capped search") {
    return !Tick(what).ok();
  }

 private:
  ExecContext owned_;  // backing storage for the Deadline constructor
  const ExecContext* context_;
  uint32_t stride_;
  uint32_t ticks_ = 0;
  bool skip_;
  Status stopped_;
};

}  // namespace util
}  // namespace asqp
