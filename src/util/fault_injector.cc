#include "util/fault_injector.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/annotations.h"
#include "util/fault_points.h"
#include "util/string_util.h"

namespace asqp {
namespace util {

std::atomic<bool> FaultInjector::enabled_{false};

struct FaultInjector::Impl {
  struct Point {
    int remaining ASQP_GUARDED_BY(mu) = 0;  // calls left to fire (-1 = always)
    int skip ASQP_GUARDED_BY(mu) = 0;       // calls to ignore first
    int fired ASQP_GUARDED_BY(mu) = 0;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points ASQP_GUARDED_BY(mu);
};

namespace {

/// Strict integer parse for the env spec: the whole (trimmed) field must
/// be a decimal integer. Unlike atoi, rejects trailing junk and overflow,
/// so "nn.adam.nan_grad:1e3" is a loud configuration error instead of a
/// silently mis-armed point.
bool ParseSpecInt(std::string_view field, int* out) {
  const std::string s(Trim(field));
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (value < -1 || value > 1'000'000'000) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

FaultInjector::FaultInjector() : impl_(new Impl) {
  // Runs during static initialization (see kEnvParsedAtStartup below), so
  // a malformed entry cannot surface as a Status: ArmFromSpec reports it
  // on stderr and skips it, never silently arming a garbage count.
  const char* env = std::getenv("ASQP_FAULT_POINTS");
  if (env == nullptr || *env == '\0') return;
  (void)ArmFromSpec(env);
}

size_t FaultInjector::ArmFromSpec(std::string_view spec_list) {
  size_t armed = 0;
  for (const std::string& entry : Split(spec_list, ',')) {
    const std::string spec(Trim(entry));
    if (spec.empty()) continue;
    const std::vector<std::string> parts = Split(spec, ':');
    const std::string point(Trim(parts[0]));
    int count = 1;
    int skip = 0;
    const bool valid =
        !point.empty() && parts.size() <= 3 &&
        (parts.size() < 2 || ParseSpecInt(parts[1], &count)) &&
        (parts.size() < 3 || ParseSpecInt(parts[2], &skip)) && skip >= 0;
    if (!valid) {
      std::fprintf(stderr,
                   "ASQP_FAULT_POINTS: ignoring malformed entry '%s' "
                   "(want \"<point>[:<count>[:<skip>]]\")\n",
                   spec.c_str());
      continue;
    }
    Arm(point, count, skip);
    ++armed;
  }
  return armed;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

namespace {
// Parse ASQP_FAULT_POINTS before main(): the enabled() fast path is
// consulted before Global(), so without this an env-armed process whose
// code never calls Global() directly would stay disarmed forever.
[[maybe_unused]] const bool kEnvParsedAtStartup =
    (FaultInjector::Global(), true);
}  // namespace

bool FaultInjector::ShouldFail(const char* point) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(point);
  if (it == impl_->points.end()) return false;
  Impl::Point& p = it->second;
  if (p.skip > 0) {
    --p.skip;
    return false;
  }
  if (p.remaining == 0) return false;
  if (p.remaining > 0) --p.remaining;
  ++p.fired;
  return true;
}

void FaultInjector::Arm(const std::string& point, int count, int skip) {
  if (!IsRegisteredFaultPoint(point)) {
    // Arming is test/ops tooling, so a typo'd point name must be loud: the
    // injection would otherwise silently never fire. Registration lives in
    // util/fault_points.h and is enforced at lint time for source literals.
    std::fprintf(stderr,
                 "FaultInjector: arming unregistered fault point '%s' "
                 "(not in util/fault_points.h; it will never fire)\n",
                 point.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->points[point] = Impl::Point{count, skip, 0};
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

int FaultInjector::fire_count(const std::string& point) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(point);
  return it == impl_->points.end() ? 0 : it->second.fired;
}

}  // namespace util
}  // namespace asqp
