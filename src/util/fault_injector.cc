#include "util/fault_injector.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/string_util.h"

namespace asqp {
namespace util {

std::atomic<bool> FaultInjector::enabled_{false};

struct FaultInjector::Impl {
  struct Point {
    int remaining = 0;  // calls left to fire (-1 = always)
    int skip = 0;       // calls to ignore first
    int fired = 0;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  const char* env = std::getenv("ASQP_FAULT_POINTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& entry : Split(env, ',')) {
    const std::string spec(Trim(entry));
    if (spec.empty()) continue;
    const std::vector<std::string> parts = Split(spec, ':');
    int count = 1;
    int skip = 0;
    if (parts.size() >= 2) count = std::atoi(parts[1].c_str());
    if (parts.size() >= 3) skip = std::atoi(parts[2].c_str());
    Arm(parts[0], count, skip);
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

namespace {
// Parse ASQP_FAULT_POINTS before main(): the enabled() fast path is
// consulted before Global(), so without this an env-armed process whose
// code never calls Global() directly would stay disarmed forever.
[[maybe_unused]] const bool kEnvParsedAtStartup =
    (FaultInjector::Global(), true);
}  // namespace

bool FaultInjector::ShouldFail(const char* point) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(point);
  if (it == impl_->points.end()) return false;
  Impl::Point& p = it->second;
  if (p.skip > 0) {
    --p.skip;
    return false;
  }
  if (p.remaining == 0) return false;
  if (p.remaining > 0) --p.remaining;
  ++p.fired;
  return true;
}

void FaultInjector::Arm(const std::string& point, int count, int skip) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->points[point] = Impl::Point{count, skip, 0};
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

int FaultInjector::fire_count(const std::string& point) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(point);
  return it == impl_->points.end() ? 0 : it->second.fired;
}

}  // namespace util
}  // namespace asqp
