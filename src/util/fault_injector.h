// Deterministic fault injection for resilience testing.
//
// Hot paths guard named fault points with ASQP_FAULT_POINT("name"), which
// compiles to a single branch on a process-wide flag; the flag is false
// unless faults were armed via the ASQP_FAULT_POINTS environment variable
// or programmatically from a test, so production runs pay one predictable
// never-taken branch per point.
//
// Environment syntax (comma-separated):
//   ASQP_FAULT_POINTS="io.checkpoint.write,nn.adam.nan_grad:1:3"
// Each entry is "<point>[:<count>[:<skip>]]": the point fires on `count`
// calls (default 1, -1 = always) after the first `skip` calls (default 0).
//
// Every point name used in an ASQP_FAULT_POINT(...) guard must be
// registered in util/fault_points.h (the checked registry; enforced by
// asqp-lint rule asqp-unregistered-fault-point). Arm() warns on stderr
// when handed an unregistered name, since that injection can never fire.
//
// Registered points (see DESIGN.md "Fault model & degradation paths"):
//   exec.deadline        ExecContext::Check reports an expired deadline
//   exec.join.alloc      hash-join build allocation fails (ResourceExhausted)
//   exec.join.partition  a hash-join build morsel's radix-partition buffer
//                        allocation fails (ResourceExhausted)
//   exec.agg.partial     a partial-aggregation morsel's group table
//                        allocation fails (ResourceExhausted)
//   nn.adam.nan_grad     a NaN is written into a gradient before Adam::Step
//   io.checkpoint.write  SaveCheckpoint's stream write fails
//   io.fallback.write    SaveLearnedFallback's stream write fails
//
// Execution-path fault messages name their point —
// "injected fault(<point>): ..." — so the degradation ladder can surface
// a machine-readable "fault:<point>" in AnswerResult::fallback_reason
// (core::FallbackReasonFromStatus).
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace asqp {
namespace util {

class FaultInjector {
 public:
  /// Process-wide injector. First use parses ASQP_FAULT_POINTS.
  static FaultInjector& Global();

  /// Fast-path flag: true iff any fault point is currently armed.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Slow path behind the `enabled()` branch: true when `point` should
  /// fire on this call. Thread-safe.
  bool ShouldFail(const char* point);

  /// Arm `point` to fire on `count` calls (-1 = every call) after `skip`
  /// initial calls. Intended for tests.
  void Arm(const std::string& point, int count = 1, int skip = 0);

  /// Parse an ASQP_FAULT_POINTS-syntax list ("<point>[:<count>[:<skip>]]"
  /// entries, comma-separated) and arm the well-formed entries. Malformed
  /// entries — non-integer or out-of-range count/skip, empty point name,
  /// too many fields — are reported on stderr and skipped, never silently
  /// armed with a garbage count. Returns the number of points armed.
  /// Called by the constructor's env parsing; exposed for tests.
  size_t ArmFromSpec(std::string_view spec_list);

  /// Disarm everything (tests must call this in teardown).
  void Reset();

  /// Times `point` actually fired (for assertions).
  int fire_count(const std::string& point) const;

 private:
  FaultInjector();

  static std::atomic<bool> enabled_;

  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

}  // namespace util
}  // namespace asqp

/// True when the named fault point fires. Zero-cost when no fault is
/// armed: a single relaxed-load branch.
#define ASQP_FAULT_POINT(point)                     \
  (::asqp::util::FaultInjector::enabled() &&        \
   ::asqp::util::FaultInjector::Global().ShouldFail(point))
