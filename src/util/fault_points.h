// Central registry of every ASQP_FAULT_POINT in the tree.
//
// Fault points are addressed by string (ASQP_FAULT_POINTS env spec,
// FaultInjector::Arm), so a typo'd name silently never fires. This file
// closes that hole: tools/asqp_lint's asqp-unregistered-fault-point rule
// fails on any ASQP_FAULT_POINT("...") literal that is not listed here,
// tests/fault_points_test.cc asserts every listed point is exercised by
// at least one test, and FaultInjector::Arm warns at runtime when an
// unregistered point is armed.
//
// To add a fault point: add the literal below (one per line — the lint
// scanner reads the string literals of this file verbatim; do not build
// the names with macros or concatenation), use it at the injection site,
// and arm it from a test so the cross-check stays green.
#pragma once

#include <cstddef>
#include <string_view>

namespace asqp {
namespace util {

inline constexpr const char* kFaultPoints[] = {
    // Execution path.
    "exec.deadline",        // util/exec_context.h: every ExecContext::Check
    "exec.join.alloc",      // exec/executor.cc: hash-join build allocation
    "exec.join.partition",  // exec/executor.cc: parallel radix partitioning
    "exec.agg.partial",     // exec/executor.cc: per-morsel partial aggregation
    // Serving path.
    "serve.batch",          // core/model.cc: batched member execution
    // Storage path.
    "index.build",          // storage/index.cc: ordered secondary index build
    // Training path.
    "nn.adam.nan_grad",     // nn/mlp.cc: gradient poisoned to NaN
    // Persistence path.
    "io.checkpoint.write",  // io/io.cc: checkpoint tmp-file write
    "io.fallback.write",    // io/io.cc: learned-fallback tmp-file write
};

inline constexpr size_t kNumFaultPoints =
    sizeof(kFaultPoints) / sizeof(kFaultPoints[0]);

constexpr bool IsRegisteredFaultPoint(std::string_view point) {
  for (const char* registered : kFaultPoints) {
    if (point == registered) return true;
  }
  return false;
}

}  // namespace util
}  // namespace asqp
