// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the library takes an explicit seed so that
// tests and benchmarks are reproducible; std::mt19937 distributions are not
// bit-stable across standard library implementations, so we implement the
// distributions we need directly.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace asqp {
namespace util {

/// \brief xoshiro256** generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Snapshot / restore of the full generator state (checkpointing). The
  /// cached Box-Muller normal is deliberately part of the state so a
  /// restored generator replays the identical stream.
  struct State {
    std::array<uint64_t, 4> s{};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State GetState() const {
    State st;
    for (size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_cached_normal = has_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }
  void SetState(const State& st) {
    for (size_t i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for our bounds (< 2^32) against a 64-bit stream.
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = 0.0;
    do {
      u1 = UniformDouble();
    } while (u1 <= 1e-300);
    const double u2 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r is selected with probability
  /// proportional to 1 / (r + 1)^theta. Used by the synthetic data
  /// generators to produce realistically skewed categorical columns.
  size_t Zipf(size_t n, double theta) {
    if (n <= 1) return 0;
    // Inverse-CDF on the (cached-free) harmonic weights via rejection-less
    // linear scan is O(n); keep n modest at call sites or use the
    // approximation below for large n.
    // Approximation: X = floor(n * U^(1/(1-theta))) works for theta < 1;
    // for theta >= 1 fall back to a scan over at most 1024 ranks.
    if (theta < 1.0) {
      const double u = UniformDouble();
      const double x = std::pow(u, 1.0 / (1.0 - theta));
      size_t idx = static_cast<size_t>(x * static_cast<double>(n));
      return std::min(idx, n - 1);
    }
    const size_t limit = std::min<size_t>(n, 1024);
    double total = 0.0;
    for (size_t r = 0; r < limit; ++r) total += 1.0 / std::pow(r + 1.0, theta);
    double u = UniformDouble() * total;
    for (size_t r = 0; r < limit; ++r) {
      u -= 1.0 / std::pow(r + 1.0, theta);
      if (u <= 0.0) return r;
    }
    return limit - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[NextBounded(i)]);
    }
  }

  /// Sample `count` distinct indices from [0, n) (reservoir sampling).
  std::vector<size_t> SampleIndices(size_t n, size_t count) {
    if (count >= n) {
      std::vector<size_t> all(n);
      for (size_t i = 0; i < n; ++i) all[i] = i;
      return all;
    }
    std::vector<size_t> reservoir(count);
    for (size_t i = 0; i < count; ++i) reservoir[i] = i;
    for (size_t i = count; i < n; ++i) {
      const size_t j = NextBounded(i + 1);
      if (j < count) reservoir[j] = i;
    }
    std::sort(reservoir.begin(), reservoir.end());
    return reservoir;
  }

  /// Sample an index from an (unnormalized) non-negative weight vector.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return NextBounded(weights.empty() ? 1 : weights.size());
    double u = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace util
}  // namespace asqp
