#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace asqp {
namespace util {
namespace {

/// splitmix64 finalizer: a stateless hash good enough to decorrelate
/// per-attempt jitter without carrying generator state (the policy stays
/// copyable-const and thread-safe for free).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double MonotonicNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool RetryPolicy::IsTransient(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kExecutionError:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSeconds(size_t attempt) const {
  if (attempt == 0) return 0.0;
  double backoff = options_.base_backoff_seconds;
  for (size_t i = 1; i < attempt; ++i) backoff *= 2.0;
  backoff = std::min(backoff, options_.max_backoff_seconds);
  const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    const uint64_t h = Mix64(seed_ ^ (0x517cc1b727220a95ULL * attempt));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
    backoff *= 1.0 - jitter + 2.0 * jitter * u;
  }
  return backoff;
}

CircuitBreaker::CircuitBreaker(Options options, NowFn now)
    : options_(options),
      now_(now ? std::move(now) : NowFn(&MonotonicNowSeconds)) {}

bool CircuitBreaker::Allow() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_() - opened_at_ >= options_.cooldown_seconds) {
        state_ = State::kHalfOpen;
        trial_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      if (!trial_in_flight_) {
        trial_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  failures_ = 0;
  state_ = State::kClosed;
  trial_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = now_();
        ++trips_;
      }
      break;
    case State::kHalfOpen:
      // The half-open trial failed: re-open and restart the cooldown.
      state_ = State::kOpen;
      opened_at_ = now_();
      trial_in_flight_ = false;
      ++failures_;
      ++trips_;
      break;
    case State::kOpen:
      // A failure reported by a request admitted before the trip; the
      // breaker is already open, just count it.
      ++failures_;
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

void CircuitBreaker::SetNowFnForTest(NowFn now) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = std::move(now);
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

}  // namespace util
}  // namespace asqp
