// Overload-control primitives for the degradation ladder: a bounded
// retry policy with deterministic jittered exponential backoff (transient
// failures on the approximation-set tier), and a circuit breaker guarding
// the full-database fallback tier (trips after consecutive deadline
// misses, half-opens after a cooldown).
//
// Both primitives are deliberately clock-injectable: the breaker takes a
// monotonic now-function so tests drive its open -> half-open -> closed
// transitions with a fake clock, and the retry policy never reads a clock
// at all (its backoff schedule is pure data; the caller decides whether
// the remaining deadline affords the sleep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/annotations.h"
#include "util/status.h"

namespace asqp {
namespace util {

/// \brief Bounded retry with deterministic jittered exponential backoff.
///
/// The policy is pure data: BackoffSeconds(attempt) is a deterministic
/// function of (options, seed, attempt), so a retried execution stays
/// reproducible under ASQP_SEED-style harnesses. Jitter decorrelates
/// concurrent sessions retrying the same transient fault (armed
/// ASQP_FAULT_POINTS, allocation failures) without a shared RNG.
class RetryPolicy {
 public:
  struct Options {
    /// Retries after the initial attempt (0 disables retrying).
    size_t max_retries = 2;
    /// First backoff; each further retry doubles it.
    double base_backoff_seconds = 0.001;
    /// Cap on any single backoff.
    double max_backoff_seconds = 0.050;
    /// Jitter fraction in [0, 1]: each backoff is scaled by a
    /// deterministic factor in [1 - jitter, 1 + jitter].
    double jitter = 0.5;
  };

  RetryPolicy(Options options, uint64_t seed)
      : options_(options), seed_(seed) {}

  /// True when `status` is a transient failure worth retrying: resource
  /// exhaustion (allocation failures, injected faults) and internal
  /// execution faults. Deadline expiry and cancellation are never
  /// transient — retrying them only burns more of a budget that is
  /// already gone — and genuine query errors (parse/bind/semantic) are
  /// deterministic, so retrying cannot help.
  static bool IsTransient(const Status& status);

  /// Jittered backoff before retry `attempt` (1-based). Deterministic in
  /// (options, seed, attempt).
  double BackoffSeconds(size_t attempt) const;

  size_t max_retries() const { return options_.max_retries; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  uint64_t seed_;
};

/// \brief Circuit breaker for the full-database fallback tier.
///
/// State machine (classic three-state breaker):
///
///   kClosed    -- failures counted; `failure_threshold` consecutive
///                 failures trip the breaker to kOpen. A success resets
///                 the count.
///   kOpen      -- Allow() refuses until `cooldown_seconds` have elapsed
///                 since the trip, then transitions to kHalfOpen.
///   kHalfOpen  -- Allow() grants exactly one trial; further Allow()
///                 calls refuse until the trial resolves. RecordSuccess()
///                 closes the breaker; RecordFailure() re-opens it (and
///                 restarts the cooldown).
///
/// A `failure_threshold` of 0 disables the breaker entirely: Allow() is
/// always true and nothing is ever counted.
///
/// Thread safety: all methods are internally synchronized; concurrent
/// Answer() sessions share one breaker.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip the breaker (0 = disabled).
    size_t failure_threshold = 5;
    /// Seconds in kOpen before a half-open trial is allowed.
    double cooldown_seconds = 2.0;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  /// Monotonic clock in seconds. The default reads steady_clock; tests
  /// inject a fake for deterministic open -> half-open transitions.
  using NowFn = std::function<double()>;

  explicit CircuitBreaker(Options options, NowFn now = nullptr);

  /// True when the guarded tier may be attempted now. In kOpen, a call
  /// past the cooldown transitions to kHalfOpen and claims the single
  /// trial slot; the caller that received `true` must report the outcome
  /// via RecordSuccess()/RecordFailure().
  bool Allow();

  /// The guarded operation (or the condition it protects against)
  /// succeeded: reset the failure count and close the breaker.
  void RecordSuccess();

  /// One more failure: trips a closed breaker at the threshold and
  /// re-opens a half-open one immediately.
  void RecordFailure();

  State state() const;
  /// Times the breaker transitioned kClosed/kHalfOpen -> kOpen.
  uint64_t trips() const;
  /// Current consecutive-failure count (diagnostics).
  size_t consecutive_failures() const;
  bool enabled() const { return options_.failure_threshold > 0; }

  /// Replace the clock (tests only; not thread-safe against concurrent
  /// Allow/Record calls — install before use).
  void SetNowFnForTest(NowFn now);

  static const char* StateName(State state);

 private:
  Options options_;  // immutable after construction
  mutable std::mutex mu_;
  NowFn now_ ASQP_GUARDED_BY(mu_);
  State state_ ASQP_GUARDED_BY(mu_) = State::kClosed;
  size_t failures_ ASQP_GUARDED_BY(mu_) = 0;
  uint64_t trips_ ASQP_GUARDED_BY(mu_) = 0;
  double opened_at_ ASQP_GUARDED_BY(mu_) = 0.0;
  /// In kHalfOpen: the single trial has been handed out and is pending.
  bool trial_in_flight_ ASQP_GUARDED_BY(mu_) = false;
};

}  // namespace util
}  // namespace asqp
