// Status / Result error model, following the Arrow / RocksDB idiom:
// no exceptions cross public API boundaries; fallible functions return
// Status (or Result<T> when they produce a value).
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace asqp {
namespace util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kParseError,
  kExecutionError,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kDegraded,
  kInternal,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The OK status carries no allocation; error states store a small
/// heap-allocated payload so Status stays pointer-sized.
///
/// The class is [[nodiscard]]: every function returning Status (or
/// Result<T> below) is implicitly must-use, so a silently dropped error is
/// a compile error under -Werror, not a review nit. Intentional discards
/// are written `(void)Foo();` with a comment, or routed through an ASQP_*
/// macro. asqp-lint (tools/asqp_lint) enforces the same invariant
/// token-level across build configs.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Every degradation tier was exhausted: the request was understood and
  /// admitted, but no tier (approximation set, learned model, full DB)
  /// could produce an answer within its budget. Callers can retry later or
  /// relax the deadline; the message carries the last tier's failure.
  static Status Degraded(std::string msg) {
    return Status(StatusCode::kDegraded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(state_->code)) + ": " + state_->msg;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kExecutionError: return "ExecutionError";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDegraded: return "Degraded";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace util
}  // namespace asqp

#define ASQP_CONCAT_IMPL(x, y) x##y
#define ASQP_CONCAT(x, y) ASQP_CONCAT_IMPL(x, y)

/// Propagate a non-OK Status to the caller.
#define ASQP_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::asqp::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assign the value of a Result<T> expression to `lhs`, or propagate its
/// error Status to the caller.
#define ASQP_ASSIGN_OR_RETURN(lhs, expr)                      \
  ASQP_ASSIGN_OR_RETURN_IMPL(ASQP_CONCAT(_res_, __LINE__), lhs, expr)

#define ASQP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
