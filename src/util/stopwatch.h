// Wall-clock measurement helpers. Algorithms never read the clock for
// decisions (determinism); only reporting code and time-budgeted baselines
// (which accept an explicit Deadline) use these.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace asqp {
namespace util {

/// \brief Simple monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A point in time after which time-budgeted algorithms must return
/// their best-so-far answer (used by the BRT and GRE baselines, which the
/// paper caps at 48 hours; our harness caps them at seconds).
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() : unlimited_(true) {}

  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Unlimited() { return Deadline(); }

  bool Expired() const {
    return !unlimited_ && Clock::now() >= end_;
  }

  bool IsUnlimited() const { return unlimited_; }

  /// Seconds until expiry: +infinity when unlimited, <= 0 once expired.
  /// Used by waiters (admission control) to bound a timed wait.
  double RemainingSeconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_ = true;
  Clock::time_point end_{};
};

}  // namespace util
}  // namespace asqp
