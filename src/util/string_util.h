// Small string helpers shared by the SQL lexer, embedders, and reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asqp {
namespace util {

/// Lower-case an ASCII string.
std::string ToLower(std::string_view s);

/// Split on a delimiter character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Join strings with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// FNV-1a 64-bit hash, the stable hash used by the feature-hashing
/// embedders (std::hash is not stable across implementations).
uint64_t Fnv1a(std::string_view s);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace util
}  // namespace asqp
