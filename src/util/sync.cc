#include "util/sync.h"

#include <algorithm>
#include <chrono>

namespace asqp {
namespace util {

namespace {
/// Waiters poll their ExecContext in slices so a cancellation flag raised
/// by another thread is noticed within one slice even though nothing
/// notifies their condition variable.
constexpr double kWaitSliceSeconds = 0.01;
}  // namespace

Status FifoSemaphore::Acquire(const ExecContext& context) {
  std::unique_lock<std::mutex> lock(mu_);
  // Raw deadline / cancellation reads at entry, never Check(): Check()
  // fires the exec.deadline fault point, which must not turn away a
  // healthy caller when permits are free. The wait loop below still
  // polls Check() — expiry while queued is real backpressure.
  if (context.IsCancelled()) {
    return Status::Cancelled("admission: cancellation requested");
  }
  if (context.deadline().Expired()) {
    return Status::DeadlineExceeded("admission: deadline exceeded");
  }
  if (waiters_.empty() && permits_ > 0) {
    --permits_;
    return Status::OK();
  }
  if (waiters_.size() >= max_waiters_) {
    return Status::ResourceExhausted(
        "admission: waiter queue full (" + std::to_string(max_waiters_) +
        " queued); retry later");
  }
  Waiter self;
  waiters_.push_back(&self);
  while (true) {
    const double slice =
        std::clamp(context.deadline().RemainingSeconds(), 0.0,
                   kWaitSliceSeconds);
    self.cv.wait_for(lock, std::chrono::duration<double>(slice));
    if (self.granted) return Status::OK();
    Status st = context.Check("admission");
    if (!st.ok()) {
      // Unlink before reporting the error so Release() never grants a
      // permit to a departed waiter. `granted` was re-checked above under
      // the lock, so the permit cannot have been handed over already.
      for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
        if (*it == &self) {
          waiters_.erase(it);
          break;
        }
      }
      return st;
    }
  }
}

bool FifoSemaphore::TryAcquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!waiters_.empty() || permits_ == 0) return false;
  --permits_;
  return true;
}

void FifoSemaphore::Release() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!waiters_.empty()) {
    // Hand the permit directly to the oldest waiter (FIFO). The waiter's
    // stack frame cannot unwind until it reacquires mu_, so notifying
    // under the lock is safe.
    Waiter* next = waiters_.front();
    waiters_.pop_front();
    next->granted = true;
    next->cv.notify_one();
  } else {
    ++permits_;
  }
}

}  // namespace util
}  // namespace asqp
