// Small synchronization primitives used by the shared execution pool and
// the serving layer's admission control: a count-down Latch (per-call
// completion barrier for ThreadPool::ParallelFor) and a FIFO-fair,
// deadline-aware counting semaphore with a bounded waiter queue
// (serve::ServeEngine's in-flight query limiter).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "util/annotations.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace asqp {
namespace util {

/// \brief One-shot count-down latch. `count` arrivals via CountDown()
/// release every thread blocked in Wait(). Unlike WaitIdle-style joins it
/// is per-instance state, so concurrent users of a shared ThreadPool never
/// observe each other's completions.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown(size_t n = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    count_ = n >= count_ ? 0 : count_ - n;
    if (count_ == 0) cv_.notify_all();
  }

  /// Block until the count reaches zero.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ ASQP_GUARDED_BY(mu_);
};

/// \brief FIFO-fair counting semaphore with a bounded waiter queue and
/// per-waiter deadlines.
///
/// Admission semantics (the serving layer's contract):
///   - a free permit is granted immediately only when no waiter is queued
///     (strict FIFO: late arrivals never overtake queued sessions);
///   - when all permits are taken, Acquire() queues the caller unless the
///     queue already holds `max_waiters` entries, in which case it returns
///     kResourceExhausted immediately (back-pressure instead of unbounded
///     queue growth);
///   - a queued waiter honors its ExecContext: expiry returns
///     kDeadlineExceeded, cooperative cancellation returns kCancelled, and
///     the waiter is unlinked from the queue either way. A permit is
///     handed directly from Release() to the front waiter, so a timed-out
///     waiter never strands one.
class FifoSemaphore {
 public:
  /// `permits` concurrent holders; at most `max_waiters` queued behind them.
  FifoSemaphore(size_t permits, size_t max_waiters)
      : permits_(permits), max_waiters_(max_waiters) {}

  FifoSemaphore(const FifoSemaphore&) = delete;
  FifoSemaphore& operator=(const FifoSemaphore&) = delete;

  /// Block until a permit is granted or `context` trips. Every successful
  /// Acquire must be paired with exactly one Release.
  [[nodiscard]] Status Acquire(const ExecContext& context = ExecContext())
      ASQP_EXCLUDES(mu_);

  /// Non-blocking: grab a permit only if one is free and nobody is queued.
  bool TryAcquire() ASQP_EXCLUDES(mu_);

  void Release() ASQP_EXCLUDES(mu_);

  size_t available() const {
    std::unique_lock<std::mutex> lock(mu_);
    return permits_;
  }
  size_t waiting() const {
    std::unique_lock<std::mutex> lock(mu_);
    return waiters_.size();
  }
  size_t max_waiters() const { return max_waiters_; }

 private:
  struct Waiter {
    std::condition_variable cv;
    bool granted ASQP_GUARDED_BY(mu_) = false;
  };

  mutable std::mutex mu_;
  size_t permits_ ASQP_GUARDED_BY(mu_);
  size_t max_waiters_;  // immutable after construction
  /// Front = next to be granted. Entries point at stack-allocated Waiters
  /// inside Acquire frames; a waiter unlinks itself before returning.
  std::deque<Waiter*> waiters_ ASQP_GUARDED_BY(mu_);
};

/// \brief RAII releaser for a successfully acquired FifoSemaphore permit.
class SemaphoreReleaser {
 public:
  explicit SemaphoreReleaser(FifoSemaphore* sem) : sem_(sem) {}
  ~SemaphoreReleaser() {
    if (sem_ != nullptr) sem_->Release();
  }

  SemaphoreReleaser(const SemaphoreReleaser&) = delete;
  SemaphoreReleaser& operator=(const SemaphoreReleaser&) = delete;

 private:
  FifoSemaphore* sem_;
};

}  // namespace util
}  // namespace asqp
