#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace asqp {
namespace util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::move(first_exception_);
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Work-stealing counter shared by the caller and up to n helper tasks.
  // It lives on the caller's stack; the WaitIdle barrier below guarantees
  // every helper has returned before this frame unwinds, even when fn
  // throws on the calling thread.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto drain = [next, &fn, n] {
    for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  // The caller is one participant, so at most n - 1 helpers are useful.
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t w = 0; w < helpers; ++w) Submit(drain);
  // A worker that throws stops claiming indices (its exception lands in
  // first_exception_ via WorkerLoop); the remaining indices are still
  // claimed by the other participants. A caller-thread exception is
  // recorded into the same slot, so "first exception wins" holds across
  // both kinds of thread.
  try {
    drain();
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (first_exception_ == nullptr) {
      first_exception_ = std::current_exception();
    }
  }
  WaitIdle();
}

Status ThreadPool::ParallelForChunked(
    size_t n, size_t chunk_size,
    const std::function<Status(size_t chunk, size_t begin, size_t end)>& fn) {
  if (n == 0) return Status::OK();
  if (chunk_size == 0) chunk_size = 1;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  // Each chunk writes only its own slot, so the vector needs no lock; the
  // ParallelFor barrier publishes every slot before the scan below.
  std::vector<Status> statuses(num_chunks);
  std::atomic<bool> failed{false};
  ParallelFor(num_chunks, [&](size_t chunk) {
    if (failed.load(std::memory_order_relaxed)) return;
    const size_t begin = chunk * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    Status st = fn(chunk, begin, end);
    if (!st.ok()) {
      statuses[chunk] = std::move(st);
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (Status& st : statuses) {
      if (!st.ok()) return std::move(st);
    }
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_exception_ == nullptr) {
        first_exception_ = std::move(error);
      }
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace asqp
