#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/sync.h"

namespace asqp {
namespace util {

std::atomic<size_t> ThreadPool::live_workers_{0};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  live_workers_.fetch_add(num_threads, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  live_workers_.fetch_sub(workers_.size(), std::memory_order_relaxed);
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::move(first_exception_);
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // All iteration state is per-call so overlapping ParallelFor calls on a
  // shared pool stay independent: each call has its own work-stealing
  // counter, its own completion latch, and its own first-exception slot.
  // The state is heap-shared with the helper tasks (a helper may still be
  // between CountDown and task-return when the caller unwinds).
  struct ForState {
    std::atomic<size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    Latch done;
    explicit ForState(size_t helpers) : done(helpers) {}
  };
  // The caller is one participant, so at most n - 1 helpers are useful.
  const size_t helpers = std::min(n - 1, workers_.size());
  auto state = std::make_shared<ForState>(helpers);
  // A participant that throws stops claiming indices; the remaining
  // indices are still claimed by the other participants, so the latch
  // always releases. First exception wins across caller and helpers.
  auto drain = [state, &fn, n] {
    try {
      for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    } catch (...) {
      std::unique_lock<std::mutex> lock(state->error_mu);
      if (state->first_error == nullptr) {
        state->first_error = std::current_exception();
      }
    }
  };
  for (size_t w = 0; w < helpers; ++w) {
    // Helpers capture `fn` by reference: the latch wait below keeps the
    // caller's frame alive until every helper's drain has returned.
    Submit([state, drain] {
      drain();
      state->done.CountDown();
    });
  }
  drain();
  state->done.Wait();
  if (state->first_error != nullptr) {
    std::rethrow_exception(state->first_error);
  }
}

Status ThreadPool::ParallelForChunked(
    size_t n, size_t chunk_size,
    const std::function<Status(size_t chunk, size_t begin, size_t end)>& fn) {
  if (n == 0) return Status::OK();
  if (chunk_size == 0) chunk_size = 1;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  // Each chunk writes only its own slot, so the vector needs no lock; the
  // ParallelFor barrier publishes every slot before the scan below.
  std::vector<Status> statuses(num_chunks);
  std::atomic<bool> failed{false};
  ParallelFor(num_chunks, [&](size_t chunk) {
    if (failed.load(std::memory_order_relaxed)) return;
    const size_t begin = chunk * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    Status st = fn(chunk, begin, end);
    if (!st.ok()) {
      statuses[chunk] = std::move(st);
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (Status& st : statuses) {
      if (!st.ok()) return std::move(st);
    }
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_exception_ == nullptr) {
        first_exception_ = std::move(error);
      }
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace asqp
