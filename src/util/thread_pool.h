// Fixed-size thread pool used for parallel rollout collection (the paper's
// asynchronous actor-learners), for the multi-process brute-force / greedy
// baselines, and for morsel-parallel query execution (exec::QueryEngine).
//
// One pool instance may be shared by many concurrent callers (the serving
// layer runs every session's morsels through a single process-wide pool):
// ParallelFor and the helpers built on it keep all per-call state — the
// work-stealing counter, the completion latch, and the first-exception
// slot — in a per-invocation block, so overlapping calls never observe
// each other's completions or steal each other's exceptions. Submit /
// WaitIdle remain a pool-global pair for callers that own the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace asqp {
namespace util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (once); later tasks still
  /// ran to completion, so the pool remains usable afterwards.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Total live pool worker threads across every ThreadPool instance in
  /// the process. Instrumentation hook for the serving layer's
  /// oversubscription assertions: a shared-pool deployment keeps this at
  /// the configured cap no matter how many sessions are in flight.
  static size_t LiveWorkerCount() {
    return live_workers_.load(std::memory_order_relaxed);
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// The calling thread participates in the work, so `ParallelFor` makes
  /// progress even on a saturated pool. Edge cases are well-defined:
  ///   - n == 0 returns immediately (no locking, no stale-exception check);
  ///   - n < num_threads() enqueues only n helper tasks;
  ///   - an exception from `fn` on the calling thread or a worker is
  ///     captured first-exception-wins into *per-call* state and rethrown
  ///     (exactly once) after every index has been claimed and every
  ///     running `fn` has returned — the shared iteration state never
  ///     outlives the call, and a pending Submit() exception is never
  ///     consumed (ParallelFor is not a WaitIdle join point).
  /// Safe to call concurrently from many threads on one shared pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Split [0, n) into chunks of `chunk_size` and run
  /// `fn(chunk, begin, end)` across the pool (the calling thread
  /// participates, like ParallelFor). Each chunk returns a Status rather
  /// than throwing — no exception crosses the pool boundary from `fn`.
  /// Statuses are collected per chunk and the first non-OK Status in
  /// *chunk order* is returned, so the propagated error is deterministic
  /// regardless of scheduling. Once any chunk fails, chunks that have not
  /// started yet are skipped (best-effort early exit); chunks already
  /// running finish normally. n == 0 returns OK immediately.
  [[nodiscard]] Status ParallelForChunked(
      size_t n, size_t chunk_size,
      const std::function<Status(size_t chunk, size_t begin, size_t end)>& fn);

  /// Partitioned reduce: split [0, n) into chunks of `chunk_size`, run
  /// `map(chunk, begin, end, &local)` across the pool — each chunk owning a
  /// default-constructed `Local` (its partition buffer) — then run
  /// `reduce(chunk, &local)` on the *calling thread* in ascending chunk
  /// order. Because every merge happens sequentially in chunk order, the
  /// reduced result is deterministic regardless of how chunks were
  /// scheduled: identical to mapping and reducing the chunks one by one on
  /// a single thread. Error handling matches ParallelForChunked (first
  /// non-OK map Status in chunk order wins; a failed map skips every
  /// reduce); a non-OK reduce Status stops the merge and is returned.
  template <typename Local>
  [[nodiscard]] Status ParallelReduceOrdered(
      size_t n, size_t chunk_size,
      const std::function<Status(size_t chunk, size_t begin, size_t end,
                                 Local* local)>& map,
      const std::function<Status(size_t chunk, Local* local)>& reduce) {
    if (n == 0) return Status::OK();
    if (chunk_size == 0) chunk_size = 1;
    const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
    std::vector<Local> locals(num_chunks);
    ASQP_RETURN_NOT_OK(ParallelForChunked(
        n, chunk_size, [&](size_t chunk, size_t begin, size_t end) -> Status {
          return map(chunk, begin, end, &locals[chunk]);
        }));
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      ASQP_RETURN_NOT_OK(reduce(chunk, &locals[chunk]));
    }
    return Status::OK();
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_ ASQP_GUARDED_BY(mu_);
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  size_t in_flight_ ASQP_GUARDED_BY(mu_) = 0;
  bool shutting_down_ ASQP_GUARDED_BY(mu_) = false;
  /// First exception to escape a Submit()ed task since the last WaitIdle.
  /// Without this a throwing task would std::terminate the worker.
  /// ParallelFor exceptions use per-call state instead.
  std::exception_ptr first_exception_ ASQP_GUARDED_BY(mu_);

  /// Process-wide live worker count (see LiveWorkerCount()).
  static std::atomic<size_t> live_workers_;
};

}  // namespace util
}  // namespace asqp
