#include "workloadgen/generator.h"

#include <algorithm>

namespace asqp {
namespace workloadgen {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using storage::Value;

struct QueryGenerator::Scope {
  std::vector<std::string> tables;
  std::vector<ExprPtr> join_conjuncts;

  bool Has(const std::string& t) const {
    return std::find(tables.begin(), tables.end(), t) != tables.end();
  }
};

void QueryGenerator::AddJoins(Scope* scope, size_t max_joins,
                              util::Rng* rng) const {
  for (size_t j = 0; j < max_joins; ++j) {
    // Collect FK edges touching the scope on exactly one side.
    std::vector<const FkEdge*> frontier;
    for (const FkEdge& e : fks_) {
      const bool has_child = scope->Has(e.child_table);
      const bool has_parent = scope->Has(e.parent_table);
      if (has_child != has_parent) frontier.push_back(&e);
    }
    if (frontier.empty()) return;
    const FkEdge& e = *frontier[rng->NextBounded(frontier.size())];
    const std::string& added =
        scope->Has(e.child_table) ? e.parent_table : e.child_table;
    scope->tables.push_back(added);
    scope->join_conjuncts.push_back(Expr::Binary(
        BinOp::kEq, Expr::ColumnRef(e.child_table, e.child_col),
        Expr::ColumnRef(e.parent_table, e.parent_col)));
  }
}

ExprPtr QueryGenerator::MakePredicate(const Scope& scope,
                                      const QueryGenOptions& options,
                                      util::Rng* rng) const {
  // Pick a random table in scope and a random filterable column of it:
  // numeric non-key-looking or categorical with known top values.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& table =
        scope.tables[rng->NextBounded(scope.tables.size())];
    const TableStats* ts = stats_->FindTable(table);
    if (ts == nullptr || ts->columns.empty()) continue;
    const ColumnStats& cs = ts->columns[rng->NextBounded(ts->columns.size())];

    if (cs.is_numeric() && cs.max > cs.min) {
      const double lo = cs.min + options.band_lo * (cs.max - cs.min);
      const double hi = cs.min + options.band_hi * (cs.max - cs.min);
      const double center = rng->UniformDouble(lo, std::max(lo, hi));
      const double width =
          std::max(cs.stddev, (cs.max - cs.min) * 0.02) *
          rng->UniformDouble(0.5, 2.0);
      const bool integral = cs.type == storage::ValueType::kInt64;
      auto mk = [&](double v) {
        return integral ? Value(static_cast<int64_t>(std::llround(v)))
                        : Value(v);
      };
      ExprPtr col = Expr::ColumnRef(table, cs.name);
      if (rng->Bernoulli(options.range_probability)) {
        return Expr::Between(std::move(col), mk(center - width),
                             mk(center + width));
      }
      const BinOp op = rng->Bernoulli(0.5) ? BinOp::kGe : BinOp::kLe;
      return Expr::Binary(op, std::move(col), Expr::Literal(mk(center)));
    }

    if (cs.type == storage::ValueType::kString && !cs.top_values.empty()) {
      ExprPtr col = Expr::ColumnRef(table, cs.name);
      // Popularity-weighted pick (Zipf over the frequency-sorted list).
      const size_t pick = rng->Zipf(cs.top_values.size(), 0.7);
      if (rng->Bernoulli(options.in_probability) && cs.top_values.size() > 2) {
        std::vector<Value> list;
        const size_t count = 2 + rng->NextBounded(3);
        for (size_t i = 0; i < count; ++i) {
          const size_t idx = rng->Zipf(cs.top_values.size(), 0.7);
          list.emplace_back(cs.top_values[idx].first);
        }
        return Expr::In(std::move(col), std::move(list));
      }
      return Expr::Binary(BinOp::kEq, std::move(col),
                          Expr::Literal(Value(cs.top_values[pick].first)));
    }
  }
  return nullptr;
}

sql::SelectStatement QueryGenerator::Generate(const QueryGenOptions& options,
                                              util::Rng* rng) const {
  sql::SelectStatement stmt;
  const std::vector<std::string> names = db_->TableNames();

  Scope scope;
  scope.tables.push_back(names[rng->NextBounded(names.size())]);
  if (options.max_joins > 0) {
    AddJoins(&scope, rng->NextBounded(options.max_joins + 1), rng);
  }
  for (const std::string& t : scope.tables) {
    stmt.from.push_back(sql::TableRef{t, ""});
  }

  // Predicates.
  std::vector<ExprPtr> conjuncts = scope.join_conjuncts;
  const size_t num_preds = 1 + rng->NextBounded(options.max_predicates);
  for (size_t p = 0; p < num_preds; ++p) {
    ExprPtr pred = MakePredicate(scope, options, rng);
    if (pred != nullptr) conjuncts.push_back(std::move(pred));
  }
  stmt.where = sql::AndAll(conjuncts);

  const bool aggregate = rng->Bernoulli(options.agg_fraction);
  if (aggregate) {
    // GROUP BY a categorical column + one aggregate over a numeric column
    // (or COUNT(*)).
    const TableStats* ts = stats_->FindTable(scope.tables[0]);
    std::string group_col;
    std::string num_col;
    if (ts != nullptr) {
      for (const ColumnStats& cs : ts->columns) {
        if (cs.type == storage::ValueType::kString && group_col.empty() &&
            cs.distinct_count > 1) {
          group_col = cs.name;
        }
        if (cs.is_numeric() && cs.stddev > 0 && num_col.empty()) {
          num_col = cs.name;
        }
      }
    }
    if (!group_col.empty()) {
      stmt.group_by.push_back(Expr::ColumnRef(scope.tables[0], group_col));
      sql::SelectItem key;
      key.expr = Expr::ColumnRef(scope.tables[0], group_col);
      stmt.items.push_back(std::move(key));
    }
    sql::SelectItem agg;
    const int which = static_cast<int>(rng->NextBounded(3));
    if (num_col.empty() || which == 0) {
      agg.agg = sql::AggFunc::kCount;
      agg.star = true;
    } else {
      agg.agg = which == 1 ? sql::AggFunc::kSum : sql::AggFunc::kAvg;
      agg.expr = Expr::ColumnRef(scope.tables[0], num_col);
    }
    stmt.items.push_back(std::move(agg));
    return stmt;
  }

  // SPJ projection: 2-4 concrete columns across the scope.
  const size_t num_cols = 2 + rng->NextBounded(3);
  for (size_t c = 0; c < num_cols; ++c) {
    const std::string& table =
        scope.tables[rng->NextBounded(scope.tables.size())];
    const TableStats* ts = stats_->FindTable(table);
    if (ts == nullptr || ts->columns.empty()) continue;
    const ColumnStats& cs = ts->columns[rng->NextBounded(ts->columns.size())];
    sql::SelectItem item;
    item.expr = Expr::ColumnRef(table, cs.name);
    stmt.items.push_back(std::move(item));
  }
  if (stmt.items.empty()) {
    sql::SelectItem star;
    star.star = true;
    stmt.items.push_back(std::move(star));
  }
  stmt.limit = options.limit;
  return stmt;
}

metric::Workload QueryGenerator::GenerateWorkload(
    size_t count, const QueryGenOptions& options, uint64_t seed) const {
  util::Rng rng(seed);
  metric::Workload workload;
  for (size_t i = 0; i < count; ++i) {
    workload.Add(Generate(options, &rng));
  }
  workload.NormalizeWeights();
  return workload;
}

}  // namespace workloadgen
}  // namespace asqp
