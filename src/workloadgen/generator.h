// Statistics-driven query generation (Section 4.5, "Unknown Query
// Workloads"): the system generates SPJ (and optionally aggregate) queries
// from per-column statistics — numeric means/stddevs, sampled categorical
// values weighted by popularity — instantiated into standard templates:
//
//   SELECT cols FROM t [JOIN fk-neighbors] WHERE pred [AND pred ...]
//   [GROUP BY cat-col]  [agg items]
//
// The generator is also what the synthetic dataset bundles use to produce
// their paper-shaped workloads.
#pragma once

#include <string>
#include <vector>

#include "metric/workload.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/status.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace workloadgen {

/// \brief Foreign-key edge in the schema's join graph.
struct FkEdge {
  std::string child_table;
  std::string child_col;
  std::string parent_table;
  std::string parent_col;
};

struct QueryGenOptions {
  /// Maximum number of FK joins added beyond the seed table.
  size_t max_joins = 2;
  /// Predicates drawn per query (at least 1).
  size_t max_predicates = 3;
  /// Fraction of queries generated as aggregates (GROUP BY + agg).
  double agg_fraction = 0.0;
  /// Probability that a categorical predicate is an IN list (vs equality).
  double in_probability = 0.3;
  /// Probability that a numeric predicate is a range (vs one-sided).
  double range_probability = 0.6;
  /// Numeric predicate centers are drawn from this quantile band of the
  /// column's range — narrowing the band themes a workload around a region
  /// of the data (used by the interest-drift experiment).
  double band_lo = 0.0;
  double band_hi = 1.0;
  /// LIMIT attached to generated SPJ queries (-1 = none).
  int64_t limit = -1;
};

/// \brief Generates random but schema- and statistics-consistent queries.
class QueryGenerator {
 public:
  QueryGenerator(const storage::Database* db, const DatabaseStats* stats,
                 std::vector<FkEdge> fks)
      : db_(db), stats_(stats), fks_(std::move(fks)) {}

  /// Generate one query; deterministic given the rng state.
  sql::SelectStatement Generate(const QueryGenOptions& options,
                                util::Rng* rng) const;

  /// Generate a uniform-weight workload of `count` queries.
  metric::Workload GenerateWorkload(size_t count,
                                    const QueryGenOptions& options,
                                    uint64_t seed) const;

  const std::vector<FkEdge>& fks() const { return fks_; }

 private:
  struct Scope;  // tables currently in the query

  void AddJoins(Scope* scope, size_t max_joins, util::Rng* rng) const;
  sql::ExprPtr MakePredicate(const Scope& scope,
                             const QueryGenOptions& options,
                             util::Rng* rng) const;

  const storage::Database* db_;
  const DatabaseStats* stats_;
  std::vector<FkEdge> fks_;
};

}  // namespace workloadgen
}  // namespace asqp
