#include "workloadgen/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace asqp {
namespace workloadgen {

size_t ColumnStats::ValueFrequency(const std::string& v) const {
  for (const auto& [value, count] : top_values) {
    if (value == v) return count;
  }
  return 0;
}

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

DatabaseStats DatabaseStats::Collect(const storage::Database& db,
                                     size_t max_top_values) {
  DatabaseStats stats;
  for (const std::string& table_name : db.TableNames()) {
    auto table_result = db.GetTable(table_name);
    if (!table_result.ok()) continue;
    const storage::Table& table = *table_result.value();

    TableStats ts;
    ts.table = table_name;
    ts.row_count = table.num_rows();

    for (size_t c = 0; c < table.num_columns(); ++c) {
      const storage::Column& col = table.column(c);
      ColumnStats cs;
      cs.name = table.schema().field(c).name;
      cs.type = col.type();
      cs.row_count = col.size();

      if (cs.is_numeric()) {
        double sum = 0.0, sumsq = 0.0;
        size_t n = 0;
        // Exact NDV over the 64-bit value patterns: the planner's equality
        // and join selectivities divide by this, so it must distinguish
        // every representable value (bit_cast keeps -0.0 vs 0.0 apart,
        // which matches the executor's serialized join keys).
        std::unordered_set<uint64_t> distinct;
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.IsNull(r)) {
            ++cs.null_count;
            continue;
          }
          const double v = col.NumericAt(r);
          distinct.insert(std::bit_cast<uint64_t>(v));
          if (n == 0) {
            cs.min = v;
            cs.max = v;
          } else {
            cs.min = std::min(cs.min, v);
            cs.max = std::max(cs.max, v);
          }
          sum += v;
          sumsq += v * v;
          ++n;
        }
        cs.distinct_count = distinct.size();
        if (n > 0) {
          cs.mean = sum / static_cast<double>(n);
          const double var =
              std::max(0.0, sumsq / static_cast<double>(n) - cs.mean * cs.mean);
          cs.stddev = std::sqrt(var);
        }
      } else if (cs.type == storage::ValueType::kString) {
        // Count per dictionary code (cheap: codes are dense).
        std::vector<size_t> counts(col.dict_size(), 0);
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.IsNull(r)) {
            ++cs.null_count;
            continue;
          }
          ++counts[col.StringCodeAt(r)];
        }
        cs.distinct_count = 0;
        std::vector<std::pair<size_t, uint32_t>> freq;  // (count, code)
        for (uint32_t code = 0; code < counts.size(); ++code) {
          if (counts[code] > 0) {
            ++cs.distinct_count;
            freq.emplace_back(counts[code], code);
          }
        }
        std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
        const size_t keep = std::min(max_top_values, freq.size());
        cs.top_values.reserve(keep);
        for (size_t i = 0; i < keep; ++i) {
          cs.top_values.emplace_back(col.dict_entry(freq[i].second),
                                     freq[i].first);
        }
      } else {
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.IsNull(r)) ++cs.null_count;
        }
      }
      ts.columns.push_back(std::move(cs));
    }
    stats.tables_.emplace(table_name, std::move(ts));
  }
  return stats;
}

const TableStats* DatabaseStats::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace workloadgen
}  // namespace asqp
