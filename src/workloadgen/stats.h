// Per-column statistics collected from the database. These drive query
// relaxation (range widening needs column ranges), query generation for
// the unknown-workload mode (means / stddevs / sampled categoricals, per
// Section 4.5), and the SKY baseline's categorical frequency ordering.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace asqp {
namespace workloadgen {

struct ColumnStats {
  std::string name;
  storage::ValueType type = storage::ValueType::kNull;
  size_t row_count = 0;
  size_t null_count = 0;

  // Numeric columns.
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  // String columns: most frequent values with counts, descending.
  std::vector<std::pair<std::string, size_t>> top_values;
  /// Exact number of distinct non-NULL values. Collected for string AND
  /// numeric columns (numeric NDV feeds the query planner's cardinality
  /// estimator; see plan::StatsCatalog).
  size_t distinct_count = 0;

  bool is_numeric() const {
    return type == storage::ValueType::kInt64 ||
           type == storage::ValueType::kDouble;
  }

  /// Frequency (count) of a categorical value; 0 if not among top_values.
  size_t ValueFrequency(const std::string& v) const;
};

struct TableStats {
  std::string table;
  size_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* FindColumn(const std::string& name) const;
};

/// \brief Statistics for a whole database.
class DatabaseStats {
 public:
  /// Scan every table (single pass per column). `max_top_values` bounds
  /// the categorical frequency lists.
  static DatabaseStats Collect(const storage::Database& db,
                               size_t max_top_values = 64);

  const TableStats* FindTable(const std::string& name) const;
  const std::map<std::string, TableStats>& tables() const { return tables_; }

 private:
  std::map<std::string, TableStats> tables_;
};

}  // namespace workloadgen
}  // namespace asqp
