#include <gtest/gtest.h>

#include <cmath>

#include "aqp/spn.h"
#include "aqp/vae.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "metric/relative_error.h"
#include "sql/binder.h"
#include "tests/testing.h"

namespace asqp {
namespace aqp {
namespace {

/// A table with strong structure: category 'a' rows have value ~100,
/// category 'b' rows have value ~10. Models must capture the difference.
std::shared_ptr<storage::Table> MakeStructuredTable(size_t n, uint64_t seed) {
  using storage::Value;
  auto table = std::make_shared<storage::Table>(
      "t", storage::Schema({{"cat", storage::ValueType::kString},
                            {"value", storage::ValueType::kDouble},
                            {"size", storage::ValueType::kInt64}}));
  util::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool is_a = rng.Bernoulli(0.7);
    const double value = is_a ? rng.Normal(100.0, 5.0) : rng.Normal(10.0, 2.0);
    const int64_t size = static_cast<int64_t>(
        is_a ? rng.UniformInt(50, 100) : rng.UniformInt(1, 20));
    EXPECT_TRUE(table
                    ->AppendRow({Value(std::string(is_a ? "a" : "b")),
                                 Value(value), Value(size)})
                    .ok());
  }
  return table;
}

TEST(SpnTest, LearnsAndCountsUnderPredicates) {
  auto table = MakeStructuredTable(4000, 1);
  SpnOptions opts;
  opts.min_instances = 256;
  ASSERT_OK_AND_ASSIGN(Spn spn, Spn::Learn(*table, opts));
  EXPECT_GT(spn.num_nodes(), 1u);
  EXPECT_EQ(spn.table_rows(), 4000u);

  // COUNT with no predicate = table size.
  EXPECT_NEAR(spn.EstimateCount({}), 4000.0, 1.0);

  // COUNT(cat = 'a') ~ 2800.
  ColumnPredicate cat_a;
  cat_a.col = 0;
  cat_a.categories.insert("a");
  const double count_a = spn.EstimateCount({cat_a});
  EXPECT_NEAR(count_a, 2800.0, 250.0);

  // COUNT(value > 50) should be close to COUNT(cat = 'a') (correlated).
  ColumnPredicate high;
  high.col = 1;
  high.lo = 50.0;
  EXPECT_NEAR(spn.EstimateCount({high}), count_a, 400.0);
}

TEST(SpnTest, SumAndAvgTrackGroups) {
  auto table = MakeStructuredTable(4000, 2);
  ASSERT_OK_AND_ASSIGN(Spn spn, Spn::Learn(*table, SpnOptions{}));

  ColumnPredicate cat_b;
  cat_b.col = 0;
  cat_b.categories.insert("b");
  // AVG(value | cat='b') ~ 10.
  EXPECT_NEAR(spn.EstimateAvg(1, {cat_b}), 10.0, 4.0);
  ColumnPredicate cat_a;
  cat_a.col = 0;
  cat_a.categories.insert("a");
  EXPECT_NEAR(spn.EstimateAvg(1, {cat_a}), 100.0, 10.0);
  // SUM is consistent with COUNT * AVG.
  const double count = spn.EstimateCount({cat_a});
  EXPECT_NEAR(spn.EstimateSum(1, {cat_a}), count * spn.EstimateAvg(1, {cat_a}),
              count * 2.0);
}

TEST(SpnTest, AggregateQueryEstimateMatchesTruthShape) {
  auto table = MakeStructuredTable(4000, 3);
  storage::Database db;
  ASSERT_OK(db.AddTable(table));
  ASSERT_OK_AND_ASSIGN(Spn spn, Spn::Learn(*table, SpnOptions{}));

  ASSERT_OK_AND_ASSIGN(
      auto bound,
      sql::ParseAndBind(
          "SELECT cat, COUNT(*), AVG(value) FROM t WHERE size >= 10 GROUP BY "
          "cat",
          db));
  ASSERT_OK_AND_ASSIGN(exec::ResultSet estimate,
                       spn.EstimateAggregateQuery(bound));

  exec::QueryEngine engine;
  storage::DatabaseView view(&db);
  ASSERT_OK_AND_ASSIGN(exec::ResultSet truth, engine.Execute(bound, view));

  ASSERT_OK_AND_ASSIGN(double err,
                       metric::RelativeError(truth, estimate, /*group=*/1));
  EXPECT_LT(err, 0.35);
}

TEST(SpnTest, MinMaxEstimation) {
  auto table = MakeStructuredTable(4000, 8);
  ASSERT_OK_AND_ASSIGN(Spn spn, Spn::Learn(*table, SpnOptions{}));

  // Unconditional extremes of `value`: ~N(100,5) and ~N(10,2) mixture.
  const double lo = spn.EstimateMin(1, {});
  const double hi = spn.EstimateMax(1, {});
  EXPECT_LT(lo, 15.0);
  EXPECT_GT(hi, 90.0);
  EXPECT_LT(lo, hi);

  // Conditioned on cat='b' the max drops toward the b-mode (~10).
  ColumnPredicate cat_b;
  cat_b.col = 0;
  cat_b.categories.insert("b");
  const double hi_b = spn.EstimateMax(1, {cat_b});
  EXPECT_LT(hi_b, hi);

  // Measure-interval predicates clamp the extremes.
  ColumnPredicate band;
  band.col = 1;
  band.lo = 50.0;
  band.hi = 105.0;
  EXPECT_GE(spn.EstimateMin(1, {band}), 50.0 - 1e-6);
  EXPECT_LE(spn.EstimateMax(1, {band}), 105.0 + 1e-6);
}

TEST(SpnTest, UnsupportedFormsAreSignalled) {
  auto table = MakeStructuredTable(500, 4);
  storage::Database db;
  ASSERT_OK(db.AddTable(table));
  ASSERT_OK_AND_ASSIGN(Spn spn, Spn::Learn(*table, SpnOptions{}));
  // LIKE predicates are outside the conjunctive subset.
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      sql::ParseAndBind("SELECT COUNT(*) FROM t WHERE cat LIKE 'a%'", db));
  EXPECT_FALSE(spn.EstimateAggregateQuery(bound).ok());
  EXPECT_FALSE(Spn::Learn(
      storage::Table("e", storage::Schema({{"x", storage::ValueType::kInt64}})),
      SpnOptions{}).ok());
}

TEST(VaeTest, GeneratesSchemaConsistentRows) {
  auto table = MakeStructuredTable(2000, 5);
  VaeOptions opts;
  opts.epochs = 8;
  ASSERT_OK_AND_ASSIGN(TabularVae vae, TabularVae::Fit(*table, opts));
  ASSERT_OK_AND_ASSIGN(auto synthetic, vae.Generate(500, 7));
  ASSERT_EQ(synthetic->num_rows(), 500u);
  ASSERT_EQ(synthetic->num_columns(), 3u);
  EXPECT_EQ(synthetic->name(), "t");
  // Categorical outputs come from the real dictionary.
  for (size_t r = 0; r < synthetic->num_rows(); ++r) {
    const std::string& cat = synthetic->column(0).StringAt(r);
    EXPECT_TRUE(cat == "a" || cat == "b") << cat;
  }
}

TEST(VaeTest, LearnsMarginalShape) {
  auto table = MakeStructuredTable(3000, 6);
  VaeOptions opts;
  opts.epochs = 20;
  opts.seed = 3;
  ASSERT_OK_AND_ASSIGN(TabularVae vae, TabularVae::Fit(*table, opts));
  ASSERT_OK_AND_ASSIGN(auto synthetic, vae.Generate(2000, 9));
  // Category 'a' frequency ~0.7 and overall value mean ~0.7*100+0.3*10=73.
  size_t a_count = 0;
  double value_sum = 0.0;
  for (size_t r = 0; r < synthetic->num_rows(); ++r) {
    if (synthetic->column(0).StringAt(r) == "a") ++a_count;
    value_sum += synthetic->column(1).NumericAt(r);
  }
  const double a_frac = static_cast<double>(a_count) / 2000.0;
  EXPECT_NEAR(a_frac, 0.7, 0.2);
  EXPECT_NEAR(value_sum / 2000.0, 73.0, 30.0);
}

TEST(VaeTest, GeneratedTuplesAreMostlyFalseForSelectiveQueries) {
  // The Figure 2 phenomenon: generated tuples rarely coincide with real
  // result tuples of selective SPJ queries.
  data::DatasetOptions dopts;
  dopts.scale = 0.02;
  data::DatasetBundle imdb = data::MakeImdbJob(dopts);
  auto title = imdb.db->GetTable("title").value();
  VaeOptions opts;
  opts.epochs = 5;
  ASSERT_OK_AND_ASSIGN(TabularVae vae, TabularVae::Fit(*title, opts));
  ASSERT_OK_AND_ASSIGN(auto synthetic, vae.Generate(500, 11));

  // Real result keys of a selective query.
  storage::Database synth_db;
  ASSERT_OK(synth_db.AddTable(synthetic));
  exec::QueryEngine engine;
  const std::string q =
      "SELECT name, production_year FROM title WHERE production_year >= 2005";
  ASSERT_OK_AND_ASSIGN(auto truth, engine.ExecuteSql(
      q, storage::DatabaseView(imdb.db.get())));
  ASSERT_OK_AND_ASSIGN(auto fake, engine.ExecuteSql(
      q, storage::DatabaseView(&synth_db)));
  auto truth_keys = truth.RowKeySet();
  size_t real_hits = 0;
  for (size_t r = 0; r < fake.num_rows(); ++r) {
    if (truth_keys.count(fake.RowKey(r))) ++real_hits;
  }
  // Nearly all generated "result" rows are false tuples.
  EXPECT_LT(real_hits, fake.num_rows() / 4 + 3);
}

TEST(VaeTest, EmptyTableRejected) {
  storage::Table empty("e",
                       storage::Schema({{"x", storage::ValueType::kInt64}}));
  EXPECT_FALSE(TabularVae::Fit(empty, VaeOptions{}).ok());
}

}  // namespace
}  // namespace aqp
}  // namespace asqp
