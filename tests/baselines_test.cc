#include <gtest/gtest.h>

#include "baselines/provenance_pool.h"
#include "baselines/selector.h"
#include "data/dataset.h"
#include "metric/score.h"
#include "tests/testing.h"

namespace asqp {
namespace baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.04;
    opts.workload_size = 12;
    opts.seed = 5;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeImdbJob(opts));  // NOLINT(asqp-naked-new)
  }
  static void TearDownTestSuite() {
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }

  SelectorContext Context(size_t k = 400) const {
    SelectorContext ctx;
    ctx.db = bundle_->db.get();
    ctx.workload = &bundle_->workload;
    ctx.k = k;
    ctx.frame_size = 25;
    ctx.seed = 9;
    ctx.deadline = util::Deadline::AfterSeconds(2.0);
    return ctx;
  }

  static data::DatasetBundle* bundle_;
};

data::DatasetBundle* BaselinesTest::bundle_ = nullptr;

TEST_F(BaselinesTest, ProvenancePoolShape) {
  ASSERT_OK_AND_ASSIGN(
      ProvenancePool pool,
      CollectProvenance(*bundle_->db, bundle_->workload, 25, 1000));
  ASSERT_EQ(pool.combos.size(), bundle_->workload.size());
  ASSERT_EQ(pool.targets.size(), bundle_->workload.size());
  for (size_t q = 0; q < pool.combos.size(); ++q) {
    EXPECT_GE(pool.targets[q], 1.0);
    EXPECT_LE(pool.targets[q], 25.0);
    EXPECT_LE(pool.combos[q].size(), 1000u);
    for (const Combo& c : pool.combos[q]) {
      EXPECT_FALSE(c.rows.empty());
      for (const auto& [t, r] : c.rows) {
        ASSERT_LT(t, pool.table_names.size());
        auto table = bundle_->db->GetTable(pool.table_names[t]);
        ASSERT_TRUE(table.ok());
        EXPECT_LT(r, table.value()->num_rows());
      }
    }
  }
  // Score of choosing everything is 1 (weights normalized).
  std::vector<size_t> all_chosen(pool.combos.size());
  for (size_t q = 0; q < pool.combos.size(); ++q) {
    all_chosen[q] = static_cast<size_t>(pool.targets[q]);
  }
  EXPECT_NEAR(pool.Score(all_chosen), 1.0, 1e-9);
}

TEST_F(BaselinesTest, RegistryKnowsAllCodes) {
  const char* kCodes[] = {"RAN", "BRT", "GRE",  "TOP", "CACH",
                          "QRD", "SKY", "VERD", "QUIK"};
  for (const char* code : kCodes) {
    ASSERT_OK_AND_ASSIGN(auto selector, MakeBaseline(code));
    EXPECT_EQ(selector->name(), code);
  }
  EXPECT_FALSE(MakeBaseline("NOPE").ok());
  EXPECT_EQ(AllBaselines().size(), 9u);
}

TEST_F(BaselinesTest, EverySelectorRespectsBudgetAndValidity) {
  const SelectorContext ctx = Context(300);
  for (const auto& selector : AllBaselines()) {
    ASSERT_OK_AND_ASSIGN(storage::ApproximationSet set, selector->Select(ctx));
    // Budget: selectors may slightly overshoot only via whole-combo adds;
    // allow a 10% margin.
    EXPECT_LE(set.TotalTuples(), ctx.k + ctx.k / 10)
        << selector->name() << " overshot the budget";
    // All row ids valid.
    for (const auto& [table, rows] : set.rows()) {
      auto t = ctx.db->GetTable(table);
      ASSERT_TRUE(t.ok()) << selector->name();
      for (uint32_t r : rows) EXPECT_LT(r, t.value()->num_rows());
    }
  }
}

TEST_F(BaselinesTest, SelectorsAreDeterministic) {
  const SelectorContext ctx = Context(200);
  for (const char* code : {"RAN", "TOP", "VERD", "QUIK"}) {
    ASSERT_OK_AND_ASSIGN(auto selector, MakeBaseline(code));
    ASSERT_OK_AND_ASSIGN(auto a, selector->Select(ctx));
    ASSERT_OK_AND_ASSIGN(auto b, selector->Select(ctx));
    EXPECT_EQ(a.rows(), b.rows()) << code;
  }
}

TEST_F(BaselinesTest, GreedyBeatsRandom) {
  // GRE directly optimizes the metric over the workload; RAN cannot. (TOP
  // is *not* required to beat RAN — in the paper's Figure 2 it does not on
  // IMDB: single frequently-queried tuples do not form complete join
  // combos.)
  const SelectorContext ctx = Context(300);
  metric::ScoreEvaluator evaluator(ctx.db,
                                   metric::ScoreOptions{.frame_size = 25});
  ASSERT_OK_AND_ASSIGN(auto ran, MakeBaseline("RAN"));
  ASSERT_OK_AND_ASSIGN(auto top, MakeBaseline("TOP"));
  ASSERT_OK_AND_ASSIGN(auto gre, MakeBaseline("GRE"));
  ASSERT_OK_AND_ASSIGN(auto ran_set, ran->Select(ctx));
  ASSERT_OK_AND_ASSIGN(auto top_set, top->Select(ctx));
  ASSERT_OK_AND_ASSIGN(auto gre_set, gre->Select(ctx));
  ASSERT_OK_AND_ASSIGN(double ran_score,
                       evaluator.Score(bundle_->workload, ran_set));
  ASSERT_OK_AND_ASSIGN(double top_score,
                       evaluator.Score(bundle_->workload, top_set));
  ASSERT_OK_AND_ASSIGN(double gre_score,
                       evaluator.Score(bundle_->workload, gre_set));
  EXPECT_GT(gre_score, ran_score);
  EXPECT_GT(top_score, 0.0);
}

TEST_F(BaselinesTest, BruteForceImprovesWithMoreTime) {
  SelectorContext quick = Context(200);
  quick.deadline = util::Deadline::AfterSeconds(0.0);  // one trial
  SelectorContext longer = Context(200);
#if defined(ASQP_SANITIZE_THREAD)
  // TSan slows each trial ~10-20x; give the timed run proportionally more
  // wall clock so it completes about as many trials as the plain build.
  longer.deadline = util::Deadline::AfterSeconds(10.0);
#else
  longer.deadline = util::Deadline::AfterSeconds(1.0);
#endif
  ASSERT_OK_AND_ASSIGN(auto brt, MakeBaseline("BRT"));
  metric::ScoreEvaluator evaluator(quick.db,
                                   metric::ScoreOptions{.frame_size = 25});
  ASSERT_OK_AND_ASSIGN(auto quick_set, brt->Select(quick));
  ASSERT_OK_AND_ASSIGN(auto longer_set, brt->Select(longer));
  ASSERT_OK_AND_ASSIGN(double quick_score,
                       evaluator.Score(bundle_->workload, quick_set));
  ASSERT_OK_AND_ASSIGN(double longer_score,
                       evaluator.Score(bundle_->workload, longer_set));
  // More trials improve BRT's *internal* combo-coverage objective, which
  // approximates (but is not identical to) the real execution metric;
  // allow a small regression margin on the real metric.
  EXPECT_GE(longer_score + 0.05, quick_score);
}

TEST_F(BaselinesTest, ExpiredDeadlineStillYieldsValidSelection) {
  // A deadline that expired before Select() even started must not crash or
  // error: the time-capped selectors return a valid best-effort (possibly
  // empty) selection.
  SelectorContext ctx = Context(200);
  ctx.deadline = util::Deadline::AfterSeconds(0.0);
  for (const char* code : {"BRT", "GRE"}) {
    ASSERT_OK_AND_ASSIGN(auto selector, MakeBaseline(code));
    ASSERT_OK_AND_ASSIGN(storage::ApproximationSet set, selector->Select(ctx));
    for (const auto& [table, rows] : set.rows()) {
      auto t = ctx.db->GetTable(table);
      ASSERT_TRUE(t.ok()) << code;
      for (uint32_t r : rows) EXPECT_LT(r, t.value()->num_rows());
    }
  }
}

TEST_F(BaselinesTest, CacheKeepsMostRecentlyUsed) {
  // With a tiny budget the cache holds only tuples from recent queries.
  SelectorContext ctx = Context(50);
  ASSERT_OK_AND_ASSIGN(auto cach, MakeBaseline("CACH"));
  ASSERT_OK_AND_ASSIGN(auto set, cach->Select(ctx));
  EXPECT_LE(set.TotalTuples(), 50u);
  EXPECT_GT(set.TotalTuples(), 0u);
}

TEST_F(BaselinesTest, SkylinePrefersDominantTuples) {
  SelectorContext ctx = Context(100);
  ASSERT_OK_AND_ASSIGN(auto sky, MakeBaseline("SKY"));
  ASSERT_OK_AND_ASSIGN(auto set, sky->Select(ctx));
  EXPECT_GT(set.TotalTuples(), 0u);
  // Skyline of `title` must include a row no other selected row dominates
  // on (rating, votes): verify top-rating title among kept titles is close
  // to the global maximum.
  auto title = bundle_->db->GetTable("title").value();
  double global_best = 0.0;
  for (size_t r = 0; r < title->num_rows(); ++r) {
    global_best = std::max(global_best, title->column(5).NumericAt(r));
  }
  double kept_best = 0.0;
  for (uint32_t r : set.RowsFor("title")) {
    kept_best = std::max(kept_best, title->column(5).NumericAt(r));
  }
  // The first skyline layer may exceed the per-table budget (only a prefix
  // is kept), so require closeness rather than exact max membership.
  EXPECT_GE(kept_best, global_best - 2.5);
}

TEST_F(BaselinesTest, VerdKeepsAllStrataRepresented) {
  SelectorContext ctx = Context(400);
  ASSERT_OK_AND_ASSIGN(auto verd, MakeBaseline("VERD"));
  ASSERT_OK_AND_ASSIGN(auto set, verd->Select(ctx));
  EXPECT_GT(set.TotalTuples(), 0u);
}

}  // namespace
}  // namespace baselines
}  // namespace asqp
