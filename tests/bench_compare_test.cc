// bench_compare (tools/bench_compare): the JSON parser must round-trip
// what bench/common/bench_json.cc emits, and the comparison policy must
// fail exactly on wall-time regressions past the tolerance while
// tolerating new benchmarks, stale baselines, and noise-fast entries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_compare/compare.h"
#include "common/bench_json.h"

namespace asqp {
namespace benchcmp {
namespace {

BenchEntry Entry(const std::string& name, double wall) {
  BenchEntry e;
  e.name = name;
  e.wall_seconds = wall;
  return e;
}

TEST(BenchCompareParse, RoundTripsEmitterOutput) {
  bench::BenchJsonWriter writer("unused-path");
  bench::BenchRecord record;
  record.name = "BM_MorselParallelHashJoin/4";
  record.params.emplace_back("bench_scale", "0");
  record.params.emplace_back("quote\"key", "line1\nline2\ttab");
  record.wall_seconds = 0.00123456789;
  record.rows_per_sec = 1.5e6;
  record.score = 0.64;
  record.error = 0.0375;
  writer.Add(record);
  bench::BenchRecord empty;
  empty.name = "BM_Empty";
  writer.Add(empty);

  std::vector<BenchEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBenchJson(writer.ToJson(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "BM_MorselParallelHashJoin/4");
  ASSERT_EQ(parsed[0].params.size(), 2u);
  EXPECT_EQ(parsed[0].params[0],
            (std::pair<std::string, std::string>("bench_scale", "0")));
  EXPECT_EQ(parsed[0].params[1].first, "quote\"key");
  EXPECT_EQ(parsed[0].params[1].second, "line1\nline2\ttab");
  EXPECT_DOUBLE_EQ(parsed[0].wall_seconds, 0.00123456789);
  EXPECT_DOUBLE_EQ(parsed[0].rows_per_sec, 1.5e6);
  EXPECT_DOUBLE_EQ(parsed[0].score, 0.64);
  EXPECT_DOUBLE_EQ(parsed[0].error, 0.0375);
  EXPECT_EQ(parsed[1].name, "BM_Empty");
  EXPECT_DOUBLE_EQ(parsed[1].wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(parsed[1].error, 0.0);
}

TEST(BenchCompareParse, EmptyArrayAndUnknownKeys) {
  std::vector<BenchEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBenchJson("[]", &parsed, &error)) << error;
  EXPECT_TRUE(parsed.empty());

  // Unknown keys (future schema growth) and non-object params tolerated.
  const std::string forward =
      "[{\"name\": \"a\", \"wall_seconds\": 2.5, \"extra\": [1, {\"x\": "
      "true}, null], \"params\": null}]";
  parsed.clear();
  ASSERT_TRUE(ParseBenchJson(forward, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "a");
  EXPECT_DOUBLE_EQ(parsed[0].wall_seconds, 2.5);
}

TEST(BenchCompareParse, RejectsMalformedInput) {
  std::vector<BenchEntry> parsed;
  std::string error;
  EXPECT_FALSE(ParseBenchJson("", &parsed, &error));
  parsed.clear();
  EXPECT_FALSE(ParseBenchJson("[{\"name\": \"a\"", &parsed, &error));
  parsed.clear();
  EXPECT_FALSE(ParseBenchJson("[{\"wall_seconds\": 1.0}]", &parsed, &error));
  EXPECT_NE(error.find("name"), std::string::npos) << error;
  parsed.clear();
  EXPECT_FALSE(ParseBenchJson(
      "[{\"name\": \"a\"}, {\"name\": \"a\"}]", &parsed, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(BenchCompare, PassesWithinTolerance) {
  const std::vector<BenchEntry> baseline = {Entry("join", 0.010),
                                            Entry("scan", 0.020)};
  // 20% slower than baseline: inside the default 25% tolerance.
  const std::vector<BenchEntry> current = {Entry("join", 0.012),
                                           Entry("scan", 0.019)};
  const CompareOptions options;
  const CompareResult result = Compare(baseline, current, options);
  EXPECT_TRUE(result.ok(options)) << Report(result, options);
  EXPECT_EQ(result.compared, 2u);
  EXPECT_TRUE(result.regressions.empty());
}

TEST(BenchCompare, FailsPastTolerance) {
  const std::vector<BenchEntry> baseline = {Entry("join", 0.010)};
  const std::vector<BenchEntry> current = {Entry("join", 0.013)};
  const CompareOptions options;  // tolerance 0.25 -> limit 0.0125
  const CompareResult result = Compare(baseline, current, options);
  EXPECT_FALSE(result.ok(options));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].name, "join");
  EXPECT_NEAR(result.regressions[0].ratio, 1.3, 1e-9);
  EXPECT_NE(Report(result, options).find("REGRESSION join"),
            std::string::npos);
}

TEST(BenchCompare, TighterToleranceFlipsVerdict) {
  const std::vector<BenchEntry> baseline = {Entry("join", 0.010)};
  const std::vector<BenchEntry> current = {Entry("join", 0.011)};
  CompareOptions options;
  options.tolerance = 0.05;
  const CompareResult result = Compare(baseline, current, options);
  EXPECT_FALSE(result.ok(options));
  ASSERT_EQ(result.regressions.size(), 1u);
}

TEST(BenchCompare, SkipsNoiseFastBaselines) {
  // Baseline under min_wall_seconds: a 100x "regression" is timer noise.
  const std::vector<BenchEntry> baseline = {Entry("tiny", 1e-6)};
  const std::vector<BenchEntry> current = {Entry("tiny", 1e-4)};
  const CompareOptions options;
  const CompareResult result = Compare(baseline, current, options);
  EXPECT_TRUE(result.ok(options));
  EXPECT_EQ(result.compared, 0u);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0], "tiny");
}

TEST(BenchCompareParse, OptionalOverloadFieldsRoundTripAndDefaultToZero) {
  bench::BenchJsonWriter writer("unused-path");
  bench::BenchRecord overload;
  overload.name = "serve_overload";
  overload.wall_seconds = 0.002;
  overload.p99_seconds = 0.015;
  overload.degraded_ratio = 0.25;
  writer.Add(overload);
  bench::BenchRecord plain;
  plain.name = "serve_plain";
  plain.wall_seconds = 0.001;
  writer.Add(plain);

  const std::string json = writer.ToJson();
  // Zero-valued optional fields are omitted entirely: old readers see
  // the original schema for records that never measured overload.
  EXPECT_NE(json.find("\"p99_seconds\": 0.015"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded_ratio\": 0.25"), std::string::npos) << json;
  const size_t plain_at = json.find("serve_plain");
  ASSERT_NE(plain_at, std::string::npos);
  EXPECT_EQ(json.find("p99_seconds", plain_at), std::string::npos) << json;
  EXPECT_EQ(json.find("degraded_ratio", plain_at), std::string::npos) << json;

  std::vector<BenchEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBenchJson(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0].p99_seconds, 0.015);
  EXPECT_DOUBLE_EQ(parsed[0].degraded_ratio, 0.25);
  EXPECT_DOUBLE_EQ(parsed[1].p99_seconds, 0.0);
  EXPECT_DOUBLE_EQ(parsed[1].degraded_ratio, 0.0);
}

TEST(BenchCompare, GatesP99LikeWallTime) {
  BenchEntry base = Entry("overload", 0.002);
  base.p99_seconds = 0.010;
  BenchEntry cur = Entry("overload", 0.002);
  cur.p99_seconds = 0.020;  // 2x the baseline tail: past 25% tolerance
  const CompareOptions options;
  const CompareResult result = Compare({base}, {cur}, options);
  EXPECT_FALSE(result.ok(options));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "p99_seconds");
  EXPECT_NEAR(result.regressions[0].ratio, 2.0, 1e-9);
  EXPECT_NE(Report(result, options).find("[p99_seconds]"),
            std::string::npos);

  cur.p99_seconds = 0.012;  // within tolerance
  EXPECT_TRUE(Compare({base}, {cur}, options).ok(options));
}

TEST(BenchCompare, GatesDegradedRatioWithAbsoluteSlack) {
  BenchEntry base = Entry("overload", 0.002);
  base.degraded_ratio = 0.20;
  BenchEntry cur = Entry("overload", 0.002);
  cur.degraded_ratio = 0.45;  // +0.25 over baseline: past the 0.10 slack
  const CompareOptions options;
  const CompareResult result = Compare({base}, {cur}, options);
  EXPECT_FALSE(result.ok(options));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "degraded_ratio");
  EXPECT_NE(Report(result, options).find("[degraded_ratio]"),
            std::string::npos);

  cur.degraded_ratio = 0.28;  // within slack
  EXPECT_TRUE(Compare({base}, {cur}, options).ok(options));
  cur.degraded_ratio = 0.0;  // improvement is always fine
  EXPECT_TRUE(Compare({base}, {cur}, options).ok(options));
}

TEST(BenchCompare, OldBaselinesNeverGateTheNewFields) {
  // A baseline written before p99/degraded_ratio existed parses them as
  // 0; a current run that now reports them must still pass.
  const std::string old_baseline =
      "[{\"name\": \"overload\", \"params\": {}, \"wall_seconds\": 0.002, "
      "\"rows_per_sec\": 0, \"score\": 0, \"error\": 0}]";
  std::vector<BenchEntry> baseline;
  std::string error;
  ASSERT_TRUE(ParseBenchJson(old_baseline, &baseline, &error)) << error;

  BenchEntry cur = Entry("overload", 0.002);
  cur.p99_seconds = 5.0;      // huge, but there is no baseline to gate on
  cur.degraded_ratio = 0.99;
  const CompareOptions options;
  const CompareResult result = Compare(baseline, {cur}, options);
  EXPECT_TRUE(result.ok(options)) << Report(result, options);
  EXPECT_EQ(result.compared, 1u);
}

TEST(BenchCompare, SubNoiseWallStillGatesRecordedTailLatency) {
  // A cache-hit-style record whose mean is timer noise can still carry a
  // meaningful recorded p99; only the noisy metric is skipped.
  BenchEntry base = Entry("hits", 1e-6);
  base.p99_seconds = 0.010;
  BenchEntry cur = Entry("hits", 1e-4);  // 100x mean: noise, not gated
  cur.p99_seconds = 0.030;               // 3x tail: real, gated
  const CompareOptions options;
  const CompareResult result = Compare({base}, {cur}, options);
  EXPECT_FALSE(result.ok(options));
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "p99_seconds");
  EXPECT_EQ(result.compared, 1u);
  EXPECT_TRUE(result.skipped.empty());
}

TEST(BenchCompare, ToleratesNewAndMissingBenchmarks) {
  const std::vector<BenchEntry> baseline = {Entry("old", 0.010)};
  const std::vector<BenchEntry> current = {Entry("brand_new", 0.500)};
  CompareOptions options;
  const CompareResult result = Compare(baseline, current, options);
  EXPECT_TRUE(result.ok(options));
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "old");
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "brand_new");

  options.fail_on_missing = true;
  EXPECT_FALSE(result.ok(options));
}

}  // namespace
}  // namespace benchcmp
}  // namespace asqp
