// Tests for sql/canonicalize: equivalent spellings of a query must produce
// the same fingerprint (so the serving layer's answer cache collapses
// them), while anything that can change the result bytes must not.
#include "sql/canonicalize.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sql/binder.h"
#include "storage/database.h"
#include "testing.h"

namespace asqp {
namespace sql {
namespace {

class CanonicalizeTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = asqp::testing::MakeTinyMovieDb(); }

  /// Parse+bind `sql` against the tiny db and fingerprint the bound AST.
  QueryFingerprint Fp(const std::string& sql) {
    auto bound = ParseAndBind(sql, *db_);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return FingerprintQuery(bound.value().stmt);
  }

  void ExpectSame(const std::string& a, const std::string& b) {
    QueryFingerprint fa = Fp(a);
    QueryFingerprint fb = Fp(b);
    EXPECT_EQ(fa.canonical, fb.canonical) << a << "  vs  " << b;
    EXPECT_EQ(fa, fb);
  }

  void ExpectDifferent(const std::string& a, const std::string& b) {
    QueryFingerprint fa = Fp(a);
    QueryFingerprint fb = Fp(b);
    EXPECT_NE(fa.canonical, fb.canonical) << a << "  vs  " << b;
  }

  std::shared_ptr<storage::Database> db_;
};

TEST_F(CanonicalizeTest, FingerprintIsDeterministic) {
  const std::string sql = "SELECT m.title FROM movies m WHERE m.year > 2000";
  QueryFingerprint a = Fp(sql);
  QueryFingerprint b = Fp(sql);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.hash, 0u);
  EXPECT_FALSE(a.canonical.empty());
}

TEST_F(CanonicalizeTest, TableAliasesDoNotMatter) {
  ExpectSame("SELECT m.title FROM movies m WHERE m.year > 2000",
             "SELECT x.title FROM movies x WHERE x.year > 2000");
}

TEST_F(CanonicalizeTest, JoinAliasesDoNotMatter) {
  ExpectSame(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND m.rating > 7",
      "SELECT a.title, b.actor FROM movies a, roles b "
      "WHERE b.movie_id = a.id AND a.rating > 7");
}

TEST_F(CanonicalizeTest, ConjunctOrderDoesNotMatter) {
  ExpectSame(
      "SELECT m.title FROM movies m WHERE m.year > 2000 AND m.rating > 6",
      "SELECT m.title FROM movies m WHERE m.rating > 6 AND m.year > 2000");
}

TEST_F(CanonicalizeTest, DisjunctOrderDoesNotMatter) {
  ExpectSame(
      "SELECT m.title FROM movies m WHERE m.year = 2010 OR m.rating > 8",
      "SELECT m.title FROM movies m WHERE m.rating > 8 OR m.year = 2010");
}

TEST_F(CanonicalizeTest, NestedAndChainsFlatten) {
  // ((a AND b) AND c) vs (a AND (b AND c)) vs permuted order.
  ExpectSame(
      "SELECT m.title FROM movies m "
      "WHERE (m.year > 2000 AND m.rating > 5) AND m.id > 1",
      "SELECT m.title FROM movies m "
      "WHERE m.id > 1 AND (m.rating > 5 AND m.year > 2000)");
}

TEST_F(CanonicalizeTest, EqualityOperandOrderDoesNotMatter) {
  ExpectSame("SELECT m.title FROM movies m WHERE m.year = 2010",
             "SELECT m.title FROM movies m WHERE 2010 = m.year");
}

TEST_F(CanonicalizeTest, JoinPredicateOperandOrderDoesNotMatter) {
  ExpectSame(
      "SELECT m.title FROM movies m, roles r WHERE r.movie_id = m.id",
      "SELECT m.title FROM movies m, roles r WHERE m.id = r.movie_id");
}

TEST_F(CanonicalizeTest, GreaterFlipsToLess) {
  ExpectSame("SELECT m.title FROM movies m WHERE m.year > 2000",
             "SELECT m.title FROM movies m WHERE 2000 < m.year");
  ExpectSame("SELECT m.title FROM movies m WHERE m.year >= 2010",
             "SELECT m.title FROM movies m WHERE 2010 <= m.year");
}

TEST_F(CanonicalizeTest, ComparedLiteralSpellingDoesNotMatter) {
  // The executor compares INT64 and DOUBLE numerically, so 2000 and
  // 2000.0 are the same predicate when used as a comparison operand.
  ExpectSame("SELECT m.title FROM movies m WHERE m.year > 2000",
             "SELECT m.title FROM movies m WHERE m.year > 2000.0");
  ExpectSame("SELECT m.title FROM movies m WHERE m.rating = 7.0",
             "SELECT m.title FROM movies m WHERE m.rating = 7");
}

TEST_F(CanonicalizeTest, InListOrderAndDuplicatesDoNotMatter) {
  ExpectSame(
      "SELECT m.title FROM movies m WHERE m.year IN (2010, 2015, 2020)",
      "SELECT m.title FROM movies m WHERE m.year IN (2020, 2010, 2015, 2010)");
}

TEST_F(CanonicalizeTest, BetweenMatchesPairedInequalities) {
  // BETWEEN expands into its conjunct parts inside the canonical form, so
  // all three spellings collapse to one fingerprint (and one answer-cache
  // entry). Sound because WHERE comparisons with NULL are false: both
  // spellings reject NULL operands alike.
  ExpectSame("SELECT m.title FROM movies m WHERE m.year BETWEEN 2000 AND 2010",
             "SELECT m.title FROM movies m WHERE 2000 <= m.year AND m.year <= 2010");
  ExpectSame("SELECT m.title FROM movies m WHERE m.year BETWEEN 2000 AND 2010",
             "SELECT m.title FROM movies m WHERE m.year >= 2000 AND m.year <= 2010");
}

TEST_F(CanonicalizeTest, BetweenFlattensIntoSurroundingConjuncts) {
  // The expansion participates in AND-flattening: the parts interleave
  // and sort with sibling conjuncts.
  ExpectSame(
      "SELECT m.title FROM movies m "
      "WHERE m.rating > 5 AND m.year BETWEEN 2000 AND 2010",
      "SELECT m.title FROM movies m "
      "WHERE m.year <= 2010 AND m.rating > 5 AND 2000 <= m.year");
}

TEST_F(CanonicalizeTest, NotBetweenMatchesDisjunction) {
  ExpectSame(
      "SELECT m.title FROM movies m WHERE m.year NOT BETWEEN 2000 AND 2010",
      "SELECT m.title FROM movies m WHERE m.year < 2000 OR m.year > 2010");
}

TEST_F(CanonicalizeTest, NotBetweenWithNullBoundDoesNotCollapse) {
  // x NOT BETWEEN NULL AND 2010 is TRUE for every row (the inner range
  // check is false with a NULL bound, then negated), while
  // x < NULL OR x > 2010 degenerates to x > 2010 — so the negated
  // expansion must be gated on both bounds being non-NULL.
  ExpectDifferent(
      "SELECT m.title FROM movies m WHERE m.year NOT BETWEEN NULL AND 2010",
      "SELECT m.title FROM movies m WHERE m.year < NULL OR m.year > 2010");
}

TEST_F(CanonicalizeTest, NotOfBetweenDoesNotCollapseWithNotBetween) {
  // NOT (x BETWEEN ...) and x NOT BETWEEN ... differ on NULL operands
  // (true vs false), so they keep distinct fingerprints.
  ExpectDifferent(
      "SELECT m.title FROM movies m WHERE NOT (m.year BETWEEN 2000 AND 2010)",
      "SELECT m.title FROM movies m WHERE m.year NOT BETWEEN 2000 AND 2010");
}

TEST_F(CanonicalizeTest, ArithmeticCommutesForPlusAndTimes) {
  ExpectSame("SELECT m.title FROM movies m WHERE m.rating + 1 > 7",
             "SELECT m.title FROM movies m WHERE 1 + m.rating > 7");
  ExpectSame("SELECT m.title FROM movies m WHERE m.rating * 2 > 14",
             "SELECT m.title FROM movies m WHERE 2 * m.rating > 14");
}

// ---- Things that MUST stay distinct -----------------------------------

TEST_F(CanonicalizeTest, DifferentConstantsDiffer) {
  ExpectDifferent("SELECT m.title FROM movies m WHERE m.year > 2000",
                  "SELECT m.title FROM movies m WHERE m.year > 2001");
}

TEST_F(CanonicalizeTest, DifferentOperatorsDiffer) {
  ExpectDifferent("SELECT m.title FROM movies m WHERE m.year > 2000",
                  "SELECT m.title FROM movies m WHERE m.year >= 2000");
  ExpectDifferent("SELECT m.title FROM movies m WHERE m.year = 2010",
                  "SELECT m.title FROM movies m WHERE m.year <> 2010");
}

TEST_F(CanonicalizeTest, DifferentColumnsDiffer) {
  ExpectDifferent("SELECT m.title FROM movies m WHERE m.year > 7",
                  "SELECT m.title FROM movies m WHERE m.rating > 7");
}

TEST_F(CanonicalizeTest, SelectItemOrderMatters) {
  // Output column order is part of the result bytes.
  ExpectDifferent("SELECT m.title, m.year FROM movies m",
                  "SELECT m.year, m.title FROM movies m");
}

TEST_F(CanonicalizeTest, ScalarLiteralTypeMatters) {
  // SELECT 5 and SELECT 5.0 produce differently-typed result columns.
  ExpectDifferent("SELECT 5 FROM movies m", "SELECT 5.0 FROM movies m");
}

TEST_F(CanonicalizeTest, FromOrderMatters) {
  // FROM order seeds the join order and the provenance layout.
  ExpectDifferent(
      "SELECT m.title FROM movies m, roles r WHERE r.movie_id = m.id",
      "SELECT m.title FROM roles r, movies m WHERE r.movie_id = m.id");
}

TEST_F(CanonicalizeTest, DistinctAndLimitAndOrderByMatter) {
  ExpectDifferent("SELECT m.year FROM movies m",
                  "SELECT DISTINCT m.year FROM movies m");
  ExpectDifferent("SELECT m.year FROM movies m",
                  "SELECT m.year FROM movies m LIMIT 3");
  ExpectDifferent("SELECT m.year FROM movies m",
                  "SELECT m.year FROM movies m ORDER BY m.year");
  ExpectDifferent("SELECT m.year FROM movies m ORDER BY m.year",
                  "SELECT m.year FROM movies m ORDER BY m.year DESC");
}

TEST_F(CanonicalizeTest, AggregatesAndGroupByAreSignificant) {
  ExpectDifferent("SELECT m.year, COUNT(*) FROM movies m GROUP BY m.year",
                  "SELECT m.year, AVG(m.rating) FROM movies m GROUP BY m.year");
  // Same text, different alias spelling, still equal.
  ExpectSame("SELECT m.year, COUNT(*) FROM movies m GROUP BY m.year",
             "SELECT z.year, COUNT(*) FROM movies z GROUP BY z.year");
}

TEST_F(CanonicalizeTest, HashMatchesCanonicalEquality) {
  // Guard the QueryFingerprint contract: equal canonical text implies
  // equal hash (same input bytes through FNV-1a).
  QueryFingerprint a =
      Fp("SELECT m.title FROM movies m WHERE m.year > 2000 AND m.rating > 6");
  QueryFingerprint b =
      Fp("SELECT q.title FROM movies q WHERE q.rating > 6.0 AND q.year > 2000");
  ASSERT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.hash, b.hash);
}

}  // namespace
}  // namespace sql
}  // namespace asqp
