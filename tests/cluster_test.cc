#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "tests/testing.h"
#include "util/random.h"

namespace asqp {
namespace cluster {
namespace {

/// Three well-separated Gaussian blobs in 2D.
std::vector<embed::Vector> MakeBlobs(size_t per_blob, uint64_t seed) {
  util::Rng rng(seed);
  const float centers[3][2] = {{0.0f, 0.0f}, {10.0f, 0.0f}, {0.0f, 10.0f}};
  std::vector<embed::Vector> points;
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + static_cast<float>(rng.Normal(0, 0.5)),
                        centers[b][1] + static_cast<float>(rng.Normal(0, 0.5))});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const auto points = MakeBlobs(30, 7);
  ASSERT_OK_AND_ASSIGN(auto result, KMeans(points, 3));
  // Each blob's 30 points must share one label, and the three labels differ.
  std::set<size_t> labels;
  for (int b = 0; b < 3; ++b) {
    const size_t label = result.assignment[b * 30];
    labels.insert(label);
    for (size_t i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignment[b * 30 + i], label) << "blob " << b;
    }
  }
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_LT(result.inertia / points.size(), 1.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  const auto points = MakeBlobs(20, 9);
  KMeansOptions opts;
  opts.seed = 123;
  ASSERT_OK_AND_ASSIGN(auto a, KMeans(points, 3, opts));
  ASSERT_OK_AND_ASSIGN(auto b, KMeans(points, 3, opts));
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansTest, KClampedToPointCount) {
  std::vector<embed::Vector> points = {{0.0f}, {1.0f}};
  ASSERT_OK_AND_ASSIGN(auto result, KMeans(points, 10));
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, ErrorsOnBadInput) {
  EXPECT_FALSE(KMeans({}, 3).ok());
  EXPECT_FALSE(KMeans({{1.0f}}, 0).ok());
}

TEST(KMeansTest, MedoidsAreRealPoints) {
  const auto points = MakeBlobs(15, 11);
  ASSERT_OK_AND_ASSIGN(auto result, KMeans(points, 3));
  ASSERT_EQ(result.medoids.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    const size_t m = result.medoids[c];
    ASSERT_LT(m, points.size());
    EXPECT_EQ(result.assignment[m], c);
  }
}

TEST(KMedoidsTest, RecoversSeparatedBlobs) {
  const auto points = MakeBlobs(25, 13);
  ASSERT_OK_AND_ASSIGN(auto result, KMedoids(points, 3));
  std::set<size_t> labels;
  for (int b = 0; b < 3; ++b) {
    labels.insert(result.assignment[b * 25]);
    for (size_t i = 1; i < 25; ++i) {
      EXPECT_EQ(result.assignment[b * 25 + i], result.assignment[b * 25]);
    }
  }
  EXPECT_EQ(labels.size(), 3u);
  // Medoids are members of their own clusters.
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.assignment[result.medoids[c]], c);
  }
}

TEST(KMedoidsTest, CentroidsEqualMedoidPoints) {
  const auto points = MakeBlobs(10, 15);
  ASSERT_OK_AND_ASSIGN(auto result, KMedoids(points, 3));
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.centroids[c], points[result.medoids[c]]);
  }
}

class KSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KSweepTest, InertiaDecreasesWithMoreClusters) {
  const auto points = MakeBlobs(20, 21);
  const size_t k = GetParam();
  ASSERT_OK_AND_ASSIGN(auto small, KMeans(points, k));
  ASSERT_OK_AND_ASSIGN(auto large, KMeans(points, k + 4));
  // More clusters should never substantially increase inertia.
  EXPECT_LE(large.inertia, small.inertia * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweepTest, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace cluster
}  // namespace asqp
