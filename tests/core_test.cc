#include <gtest/gtest.h>

#include "core/config.h"
#include "core/preprocess.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "metric/score.h"
#include "sql/parser.h"
#include "tests/testing.h"

namespace asqp {
namespace core {
namespace {

/// Small IMDB bundle shared across the core tests (built once: the full
/// pipeline is the expensive part we are testing).
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.05;  // ~1000 titles, ~3000 cast rows
    opts.workload_size = 24;
    opts.seed = 7;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeImdbJob(opts));  // NOLINT(asqp-naked-new)
  }
  static void TearDownTestSuite() {
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }

  static AsqpConfig SmallConfig() {
    AsqpConfig config;
    config.k = 300;
    config.frame_size = 25;
    config.num_representatives = 10;
    config.pool_target = 400;
    config.max_tuples_per_rep = 1500;
    config.trainer.iterations = 12;
    config.trainer.episodes_per_iteration = 4;
    config.trainer.num_workers = 1;
    config.trainer.learning_rate = 2e-3;
    config.trainer.hidden_dim = 64;
    config.seed = 3;
    return config;
  }

  static data::DatasetBundle* bundle_;
};

data::DatasetBundle* CoreTest::bundle_ = nullptr;

TEST_F(CoreTest, PreprocessBuildsConsistentActionSpace) {
  ASSERT_OK_AND_ASSIGN(
      PreprocessResult pre,
      Preprocess(*bundle_->db, bundle_->workload, SmallConfig()));
  const rl::ActionSpace& space = pre.space;
  ASSERT_GT(space.num_actions(), 0u);
  ASSERT_GT(space.num_queries, 0u);
  // Pool = target + per-query coverage reservations (up to 3F each).
  EXPECT_LE(space.pool.size(),
            SmallConfig().pool_target +
                space.num_queries * 3 * SmallConfig().frame_size);
  EXPECT_EQ(space.budget, SmallConfig().k);
  EXPECT_EQ(space.contribution.size(),
            space.num_actions() * space.num_queries);
  EXPECT_EQ(pre.representatives.size(), pre.representative_embeddings.size());
  EXPECT_GE(pre.representatives_executed, 1u);

  // Costs are positive and match the distinct base tuples of each action.
  for (size_t a = 0; a < space.num_actions(); ++a) {
    EXPECT_GT(space.action_cost[a], 0u);
    EXPECT_LE(space.action_tuples[a].size(), SmallConfig().action_group_size);
  }
  // Targets within [1, F]; weights normalized.
  double weight_sum = 0.0;
  for (size_t q = 0; q < space.num_queries; ++q) {
    EXPECT_GE(space.query_target[q], 1.0f);
    EXPECT_LE(space.query_target[q], 25.0f);
    weight_sum += space.query_weight[q];
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-5);
  // Some action must contribute to some query (the pool came from the
  // representatives' own results).
  float total_contribution = 0.0f;
  for (float c : space.contribution) total_contribution += c;
  EXPECT_GT(total_contribution, 0.0f);
}

TEST_F(CoreTest, TrainedModelBeatsRandomSubset) {
  AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*bundle_->db, bundle_->workload));
  ASSERT_NE(report.model, nullptr);
  const storage::ApproximationSet& set = report.model->approximation_set();
  EXPECT_GT(set.TotalTuples(), 0u);
  EXPECT_LE(set.TotalTuples(), SmallConfig().k);

  metric::ScoreEvaluator evaluator(
      bundle_->db.get(), metric::ScoreOptions{.frame_size = 25});
  ASSERT_OK_AND_ASSIGN(const double asqp_score,
                       evaluator.Score(bundle_->workload, set));

  // Random subset of the same size.
  util::Rng rng(11);
  storage::ApproximationSet random_set;
  {
    std::vector<std::pair<std::string, size_t>> all;
    for (const auto& name : bundle_->db->TableNames()) {
      auto t = bundle_->db->GetTable(name).value();
      for (size_t r = 0; r < t->num_rows(); ++r) all.emplace_back(name, r);
    }
    for (size_t i : rng.SampleIndices(all.size(), set.TotalTuples())) {
      random_set.Add(all[i].first, static_cast<uint32_t>(all[i].second));
    }
    random_set.Seal();
  }
  ASSERT_OK_AND_ASSIGN(const double random_score,
                       evaluator.Score(bundle_->workload, random_set));

  EXPECT_GT(asqp_score, random_score);
  EXPECT_GT(asqp_score, 0.2);
}

TEST_F(CoreTest, GenerateApproximationSetHonorsRequestedSize) {
  AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*bundle_->db, bundle_->workload));
  const storage::ApproximationSet small =
      report.model->GenerateApproximationSet(50);
  EXPECT_GT(small.TotalTuples(), 0u);
  // One action group may overshoot by at most one group's base tuples.
  EXPECT_LE(small.TotalTuples(), 50u + 4u * 5u);
}

TEST_F(CoreTest, EstimatorSeparatesSeenFromUnseen) {
  AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*bundle_->db, bundle_->workload));
  AsqpModel& model = *report.model;

  // Training-like queries: the representatives themselves. Individual
  // coverage varies, so compare the best-estimated representative.
  double seen = 0.0;
  for (size_t i = 0; i < model.representatives().size(); ++i) {
    seen = std::max(
        seen, model.EstimateAnswerability(model.representatives().query(i).stmt));
  }

  // A query structurally foreign to the workload: the generator only joins
  // along FK edges, and company-person has none.
  ASSERT_OK_AND_ASSIGN(
      auto unseen_stmt,
      sql::Parse("SELECT c.name, p.name FROM company c, person p WHERE "
                 "c.country = 'nowhere' AND p.name LIKE 'zzz%'"));
  const double unseen = model.EstimateAnswerability(unseen_stmt);
  EXPECT_GT(seen, unseen);
}

TEST_F(CoreTest, AnswerRoutesThroughMediator) {
  AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*bundle_->db, bundle_->workload));
  AsqpModel& model = *report.model;

  // Answer every workload query; used_approximation must agree with the
  // threshold rule, and approximate answers must be subsets of the truth.
  exec::QueryEngine engine;
  storage::DatabaseView full(bundle_->db.get());
  size_t approximated = 0;
  for (const auto& q : bundle_->workload.queries()) {
    ASSERT_OK_AND_ASSIGN(AnswerResult answer, model.Answer(q.stmt));
    EXPECT_EQ(answer.used_approximation,
              answer.answerability >= model.config().answerable_threshold);
    if (answer.used_approximation) {
      ++approximated;
      auto bound = sql::Bind(q.stmt, *bundle_->db);
      ASSERT_TRUE(bound.ok());
      auto truth = engine.Execute(bound.value(), full);
      ASSERT_TRUE(truth.ok());
      auto truth_keys = truth.value().RowKeySet();
      // LIMIT-less SPJ: approximate rows are a subset of the exact rows.
      if (q.stmt.limit < 0) {
        for (size_t r = 0; r < answer.result.num_rows(); ++r) {
          EXPECT_TRUE(truth_keys.count(answer.result.RowKey(r)));
        }
      }
    }
  }
  EXPECT_GT(approximated, 0u);
}

TEST_F(CoreTest, DriftDetectionAndFineTuning) {
  AsqpConfig config = SmallConfig();
  config.trainer.iterations = 6;
  AsqpTrainer trainer(config);
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*bundle_->db, bundle_->workload));
  AsqpModel& model = *report.model;
  EXPECT_FALSE(model.NeedsFineTuning());

  // Drifted interest: person-table queries, absent from the training
  // workload.
  std::vector<std::string> drifted = {
      "SELECT p.name FROM person p WHERE p.birth_year BETWEEN 1950 AND 1960",
      "SELECT p.name, p.birth_year FROM person p WHERE p.birth_year > 1990",
      "SELECT p.name FROM person p WHERE p.birth_year < 1920",
      "SELECT p.birth_year FROM person p WHERE p.name LIKE 'person_1%'",
  };
  for (const std::string& sql : drifted) {
    ASSERT_OK_AND_ASSIGN(AnswerResult answer, model.AnswerSql(sql));
    (void)answer;
  }
  EXPECT_TRUE(model.NeedsFineTuning());

  // Fine-tune on the drifted workload and measure improvement on it.
  ASSERT_OK_AND_ASSIGN(metric::Workload drift_workload,
                       metric::Workload::FromSql(drifted));
  metric::ScoreEvaluator evaluator(
      bundle_->db.get(), metric::ScoreOptions{.frame_size = 25});
  ASSERT_OK_AND_ASSIGN(
      const double before,
      evaluator.Score(drift_workload, model.approximation_set()));
  ASSERT_OK(model.FineTune(drift_workload));
  EXPECT_FALSE(model.NeedsFineTuning());  // counter reset
  ASSERT_OK_AND_ASSIGN(
      const double after,
      evaluator.Score(drift_workload, model.approximation_set()));
  EXPECT_GT(after, before);
}

TEST_F(CoreTest, UnknownWorkloadModeTrains) {
  AsqpConfig config = SmallConfig();
  config.trainer.iterations = 6;
  AsqpTrainer trainer(config);
  ASSERT_OK_AND_ASSIGN(
      TrainReport report,
      trainer.TrainWithoutWorkload(*bundle_->db, bundle_->fks,
                                   /*generated_queries=*/16));
  EXPECT_GT(report.model->approximation_set().TotalTuples(), 0u);
}

class EnvKindTest : public ::testing::TestWithParam<EnvKind> {};

TEST_P(EnvKindTest, TrainsEndToEnd) {
  data::DatasetOptions opts;
  opts.scale = 0.03;
  opts.workload_size = 10;
  opts.seed = 5;
  const data::DatasetBundle imdb = data::MakeImdbJob(opts);

  AsqpConfig config;
  config.k = 150;
  config.frame_size = 20;
  config.num_representatives = 8;
  config.pool_target = 250;
  config.env = GetParam();
  config.drp_horizon = 24;
  config.hybrid_refine_horizon = 12;
  config.trainer.iterations = 4;
  config.trainer.num_workers = 1;
  config.trainer.hidden_dim = 32;
  AsqpTrainer trainer(config);
  ASSERT_OK_AND_ASSIGN(TrainReport report,
                       trainer.Train(*imdb.db, imdb.workload));
  EXPECT_GT(report.model->approximation_set().TotalTuples(), 0u);
  EXPECT_LE(report.model->approximation_set().TotalTuples(), config.k);
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvKindTest,
                         ::testing::Values(EnvKind::kGsl, EnvKind::kDrp,
                                           EnvKind::kHybrid));

TEST(ConfigTest, LightAndTimeBudgetPresets) {
  const AsqpConfig full;
  const AsqpConfig light = AsqpConfig::Light();
  EXPECT_LT(light.representative_fraction, full.representative_fraction);
  EXPECT_GT(light.trainer.learning_rate, full.trainer.learning_rate);
  EXPECT_GT(light.trainer.early_stop_patience, 0u);

  const AsqpConfig mid = AsqpConfig::FromTimeBudget(0.5);
  EXPECT_GT(mid.representative_fraction, light.representative_fraction);
  EXPECT_LT(mid.representative_fraction, full.representative_fraction);
  const AsqpConfig max = AsqpConfig::FromTimeBudget(1.0);
  EXPECT_DOUBLE_EQ(max.representative_fraction, full.representative_fraction);
}

TEST(ConfigTest, EnvKindNames) {
  EXPECT_STREQ(EnvKindName(EnvKind::kGsl), "GSL");
  EXPECT_STREQ(EnvKindName(EnvKind::kDrp), "DRP");
  EXPECT_STREQ(EnvKindName(EnvKind::kHybrid), "DRP+GSL");
}

TEST(PreprocessTest, EmptyWorkloadRejected) {
  auto db = testing::MakeTinyMovieDb();
  EXPECT_FALSE(Preprocess(*db, metric::Workload{}, AsqpConfig{}).ok());
}

}  // namespace
}  // namespace core
}  // namespace asqp
