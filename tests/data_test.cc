// Distributional sanity of the synthetic dataset bundles: the skew and
// correlation properties that differentiate the selection strategies
// (see DESIGN.md substitutions) must actually be present.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/dataset.h"
#include "tests/testing.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace data {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions options;
  options.scale = 0.1;
  options.workload_size = 5;
  options.seed = 17;
  return options;
}

TEST(ImdbDataTest, ReferentialIntegrity) {
  const DatasetBundle imdb = MakeImdbJob(SmallOptions());
  auto title = imdb.db->GetTable("title").value();
  auto cast = imdb.db->GetTable("cast_info").value();
  auto person = imdb.db->GetTable("person").value();
  const int64_t num_titles = static_cast<int64_t>(title->num_rows());
  const int64_t num_people = static_cast<int64_t>(person->num_rows());
  for (size_t r = 0; r < cast->num_rows(); ++r) {
    EXPECT_LT(cast->column(1).Int64At(r), num_titles);  // movie_id
    EXPECT_GE(cast->column(1).Int64At(r), 0);
    EXPECT_LT(cast->column(0).Int64At(r), num_people);  // person_id
  }
}

TEST(ImdbDataTest, CastFanOutIsSkewed) {
  // Zipf-popular titles must attract far more cast rows than the median
  // title (the join-skew property the paper's IMDB workload exercises).
  const DatasetBundle imdb = MakeImdbJob(SmallOptions());
  auto cast = imdb.db->GetTable("cast_info").value();
  std::map<int64_t, size_t> fan;
  for (size_t r = 0; r < cast->num_rows(); ++r) {
    ++fan[cast->column(1).Int64At(r)];
  }
  std::vector<size_t> counts;
  for (const auto& [_, c] : fan) counts.push_back(c);
  std::sort(counts.begin(), counts.end());
  const size_t median = counts[counts.size() / 2];
  const size_t max = counts.back();
  EXPECT_GE(max, median * 5) << "join fan-out should be heavily skewed";
}

TEST(ImdbDataTest, GenresZipfSkewed) {
  const DatasetBundle imdb = MakeImdbJob(SmallOptions());
  const workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*imdb.db);
  const workloadgen::ColumnStats* genre =
      stats.FindTable("title")->FindColumn("genre");
  ASSERT_NE(genre, nullptr);
  ASSERT_GE(genre->top_values.size(), 3u);
  // Top genre at least 3x the third.
  EXPECT_GE(genre->top_values[0].second, genre->top_values[2].second * 2);
}

TEST(MasDataTest, CitationsHeavyTailedAndPrestigeCorrelated) {
  const DatasetBundle mas = MakeMas(SmallOptions());
  auto pub = mas.db->GetTable("publication").value();
  auto venue = mas.db->GetTable("venue").value();

  // Heavy tail: max citations far above the mean.
  double sum = 0.0;
  int64_t max_cites = 0;
  for (size_t r = 0; r < pub->num_rows(); ++r) {
    const int64_t c = pub->column(3).Int64At(r);
    sum += static_cast<double>(c);
    max_cites = std::max(max_cites, c);
  }
  const double mean = sum / static_cast<double>(pub->num_rows());
  EXPECT_GT(static_cast<double>(max_cites), mean * 10);

  // Prestige correlation: mean citations in top-prestige venues exceeds
  // mean citations in bottom-prestige venues.
  std::vector<double> prestige(venue->num_rows());
  for (size_t r = 0; r < venue->num_rows(); ++r) {
    prestige[r] = venue->column(4).DoubleAt(r);
  }
  double hi_sum = 0, lo_sum = 0;
  size_t hi_n = 0, lo_n = 0;
  for (size_t r = 0; r < pub->num_rows(); ++r) {
    const auto vid = static_cast<size_t>(pub->column(4).Int64At(r));
    if (prestige[vid] > 0.7) {
      hi_sum += pub->column(3).NumericAt(r);
      ++hi_n;
    } else if (prestige[vid] < 0.3) {
      lo_sum += pub->column(3).NumericAt(r);
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 10u);
  ASSERT_GT(lo_n, 10u);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n);
}

TEST(FlightsDataTest, DelaysBimodalAndSeasonal) {
  const DatasetBundle flights = MakeFlights(SmallOptions());
  auto f = flights.db->GetTable("flights").value();
  const auto dep_col_idx = f->schema().FieldIndex("dep_delay");
  const auto month_idx = f->schema().FieldIndex("month");
  ASSERT_TRUE(dep_col_idx && month_idx);

  size_t on_time = 0, very_late = 0;
  double summer_sum = 0, winter_free_sum = 0;
  size_t summer_n = 0, other_n = 0;
  for (size_t r = 0; r < f->num_rows(); ++r) {
    const double delay = f->column(*dep_col_idx).NumericAt(r);
    if (delay < 10) ++on_time;
    if (delay > 60) ++very_late;
    const int64_t month = f->column(*month_idx).Int64At(r);
    if (month == 7 || month == 8) {
      summer_sum += delay;
      ++summer_n;
    } else if (month >= 3 && month <= 5) {
      winter_free_sum += delay;
      ++other_n;
    }
  }
  // Bimodal: most flights near on-time, yet a real late tail exists.
  EXPECT_GT(on_time, f->num_rows() / 2);
  EXPECT_GT(very_late, f->num_rows() / 100);
  // Seasonality: summer months are worse on average.
  EXPECT_GT(summer_sum / summer_n, winter_free_sum / other_n);
}

TEST(FlightsDataTest, DimensionsConsistent) {
  const DatasetBundle flights = MakeFlights(SmallOptions());
  auto f = flights.db->GetTable("flights").value();
  auto airports = flights.db->GetTable("airports").value();
  auto carriers = flights.db->GetTable("carriers").value();
  // All origins / carriers in the fact table exist in the dimensions.
  std::set<std::string> airport_codes, carrier_codes;
  for (size_t r = 0; r < airports->num_rows(); ++r) {
    airport_codes.insert(airports->column(0).StringAt(r));
  }
  for (size_t r = 0; r < carriers->num_rows(); ++r) {
    carrier_codes.insert(carriers->column(0).StringAt(r));
  }
  for (size_t r = 0; r < std::min<size_t>(f->num_rows(), 500); ++r) {
    EXPECT_TRUE(carrier_codes.count(f->column(1).StringAt(r)));
    EXPECT_TRUE(airport_codes.count(f->column(2).StringAt(r)));
    EXPECT_TRUE(airport_codes.count(f->column(3).StringAt(r)));
    EXPECT_NE(f->column(2).StringAt(r), f->column(3).StringAt(r));
  }
}

TEST(ScaleTest, SizesTrackScaleFactor) {
  DatasetOptions small = SmallOptions();
  DatasetOptions larger = SmallOptions();
  larger.scale = 0.2;
  const size_t small_rows = MakeImdbJob(small).db->TotalRows();
  const size_t larger_rows = MakeImdbJob(larger).db->TotalRows();
  EXPECT_GT(larger_rows, small_rows * 3 / 2);
  EXPECT_LT(larger_rows, small_rows * 3);
}

}  // namespace
}  // namespace data
}  // namespace asqp
