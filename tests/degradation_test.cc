// Degradation-ladder tests: the overload-control primitives (RetryPolicy
// backoff schedule and transience classification, CircuitBreaker state
// machine under a fake clock), the fallback-reason vocabulary, the
// learned fallback tier (fit / answer / calibrated error estimates /
// persistence), and the full ladder on a trained model — approximation
// retries, full-database degradation, breaker trips, cost-gated and
// breaker-blocked routing to the learned tier, and the terminal
// kDegraded when every tier is exhausted.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aqp/learned_fallback.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "io/io.h"
#include "metric/relative_error.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "tests/testing.h"
#include "util/exec_context.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace asqp {
namespace {

using util::CircuitBreaker;
using util::RetryPolicy;
using util::Status;

// ---- RetryPolicy -------------------------------------------------------

TEST(RetryPolicyTest, ClassifiesTransience) {
  // Transient: pressure that a retry can outlive.
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::ResourceExhausted("alloc")));
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::ExecutionError("fault")));
  EXPECT_TRUE(RetryPolicy::IsTransient(Status::Internal("oops")));
  // Never transient: the budget is gone or the query itself is wrong.
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::Cancelled("stop")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::NotFound("missing")));
  EXPECT_FALSE(RetryPolicy::IsTransient(Status::OK()));
}

TEST(RetryPolicyTest, BackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy::Options options;
  options.max_retries = 4;
  options.base_backoff_seconds = 0.010;
  options.max_backoff_seconds = 0.040;
  options.jitter = 0.5;
  const RetryPolicy a(options, /*seed=*/42);
  const RetryPolicy b(options, /*seed=*/42);
  EXPECT_EQ(a.BackoffSeconds(0), 0.0);
  for (size_t attempt = 1; attempt <= 5; ++attempt) {
    const double backoff = a.BackoffSeconds(attempt);
    // Deterministic in (options, seed, attempt).
    EXPECT_EQ(backoff, b.BackoffSeconds(attempt));
    // Jitter scales the capped exponential schedule by [0.5, 1.5].
    const double raw = std::min(
        options.base_backoff_seconds * std::pow(2.0, double(attempt - 1)),
        options.max_backoff_seconds);
    EXPECT_GE(backoff, raw * 0.5);
    EXPECT_LE(backoff, raw * 1.5);
  }
  // A different seed decorrelates concurrent sessions.
  const RetryPolicy c(options, /*seed=*/43);
  bool any_differs = false;
  for (size_t attempt = 1; attempt <= 5; ++attempt) {
    any_differs |= c.BackoffSeconds(attempt) != a.BackoffSeconds(attempt);
  }
  EXPECT_TRUE(any_differs);
}

TEST(RetryPolicyTest, ZeroJitterGivesExactExponentialSchedule) {
  RetryPolicy::Options options;
  options.base_backoff_seconds = 0.004;
  options.max_backoff_seconds = 0.010;
  options.jitter = 0.0;
  const RetryPolicy policy(options, /*seed=*/1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.004);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.008);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.010);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(9), 0.010);
}

// ---- CircuitBreaker (fake clock) --------------------------------------

TEST(CircuitBreakerTest, TripsAtThresholdAndRecoversThroughHalfOpen) {
  double now = 0.0;
  CircuitBreaker breaker({.failure_threshold = 2, .cooldown_seconds = 5.0},
                         [&now] { return now; });
  EXPECT_TRUE(breaker.enabled());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 1u);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  // Open: refused until the cooldown elapses.
  EXPECT_FALSE(breaker.Allow());
  now = 4.9;
  EXPECT_FALSE(breaker.Allow());

  // Past the cooldown: exactly one half-open trial.
  now = 5.1;
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // trial already in flight

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRestartsCooldown) {
  double now = 0.0;
  CircuitBreaker breaker({.failure_threshold = 1, .cooldown_seconds = 2.0},
                         [&now] { return now; });
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  now = 2.5;
  EXPECT_TRUE(breaker.Allow());  // half-open trial
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // The cooldown restarted at the re-open, not the original trip.
  now = 4.0;
  EXPECT_FALSE(breaker.Allow());
  now = 4.6;
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesEverything) {
  CircuitBreaker breaker({.failure_threshold = 0, .cooldown_seconds = 1.0});
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    breaker.RecordFailure();
    EXPECT_TRUE(breaker.Allow());
  }
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---- Fallback-reason vocabulary ---------------------------------------

TEST(FallbackReasonTest, NormalizesStatusesToMachineReadableReasons) {
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::DeadlineExceeded("late")),
            "deadline");
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::Cancelled("stop")),
            "cancelled");
  EXPECT_EQ(core::FallbackReasonFromStatus(
                Status::ResourceExhausted("row budget exceeded: 10 > 5")),
            "row_budget");
  EXPECT_EQ(core::FallbackReasonFromStatus(
                Status::ResourceExhausted("allocation failed")),
            "resource_exhausted");
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::ExecutionError("boom")),
            "exec_error");
  // Injected faults surface their point name regardless of the code.
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::ResourceExhausted(
                "injected fault(exec.join.alloc): build failed")),
            "fault:exec.join.alloc");
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::DeadlineExceeded(
                "injected fault(exec.deadline): deadline expired")),
            "fault:exec.deadline");
  // Anything else: the lowercase code name.
  EXPECT_EQ(core::FallbackReasonFromStatus(Status::NotFound("missing")),
            "notfound");
}

TEST(FallbackReasonTest, TierNames) {
  EXPECT_STREQ(core::AnswerTierName(core::AnswerTier::kApproximation),
               "approximation");
  EXPECT_STREQ(core::AnswerTierName(core::AnswerTier::kFullDatabase),
               "full_database");
  EXPECT_STREQ(core::AnswerTierName(core::AnswerTier::kLearned), "learned");
}

// ---- LearnedFallback over FLIGHTS -------------------------------------

/// RAII temp file (mirrors resilience_test's helper).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

class LearnedFallbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.1;
    opts.workload_size = 4;
    opts.seed = 17;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeFlights(opts));  // NOLINT(asqp-naked-new)
    aqp::LearnedFallbackOptions fopts;
    fopts.seed = 5;
    // An empty approximation set: every table is stride-sampled, the
    // mode an offline-fitted synopsis ships in.
    auto fitted =
        aqp::LearnedFallback::Fit(*bundle_->db, storage::ApproximationSet{},
                                  fopts);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    fallback_ = new aqp::LearnedFallback(std::move(fitted).value());  // NOLINT(asqp-naked-new)
  }
  static void TearDownTestSuite() {
    delete fallback_;  // NOLINT(asqp-naked-new)
    fallback_ = nullptr;
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  static util::Result<sql::BoundQuery> Bind(const std::string& sql) {
    return sql::ParseAndBind(sql, *bundle_->db);
  }

  static data::DatasetBundle* bundle_;
  static aqp::LearnedFallback* fallback_;
};

data::DatasetBundle* LearnedFallbackTest::bundle_ = nullptr;
aqp::LearnedFallback* LearnedFallbackTest::fallback_ = nullptr;

TEST_F(LearnedFallbackTest, FitCoversTablesAndCalibratesErrors) {
  EXPECT_TRUE(fallback_->has_table("flights"));
  EXPECT_TRUE(fallback_->has_table("carriers"));
  EXPECT_GE(fallback_->num_tables(), 3u);
  ASSERT_FALSE(fallback_->calibrated_errors().empty());
  for (const auto& [category, error] : fallback_->calibrated_errors()) {
    EXPECT_GE(error, 0.02) << category;
    EXPECT_LE(error, 1.0) << category;
  }
}

TEST_F(LearnedFallbackTest, CountEstimateTracksTruth) {
  ASSERT_OK_AND_ASSIGN(sql::BoundQuery bound,
                       Bind("SELECT COUNT(*) FROM flights WHERE month = 3"));
  ASSERT_TRUE(fallback_->CanAnswer(bound));
  ASSERT_OK_AND_ASSIGN(aqp::LearnedAnswer answer, fallback_->Answer(bound));
  EXPECT_GT(answer.error_estimate, 0.0);
  EXPECT_EQ(answer.category, "CNT");

  exec::QueryEngine engine;
  storage::DatabaseView view(bundle_->db.get());
  ASSERT_OK_AND_ASSIGN(exec::ResultSet truth, engine.Execute(bound, view));
  ASSERT_OK_AND_ASSIGN(double err,
                       metric::RelativeError(truth, answer.result,
                                             /*num_group_cols=*/0));
  EXPECT_LT(err, 0.25);
}

// The PR's acceptance criterion: on the Figure-12 aggregate workload the
// calibrated error estimates must be within 2x of the observed mean
// relative error (both directions — neither wildly optimistic nor
// uselessly pessimistic).
TEST_F(LearnedFallbackTest, ErrorEstimateWithinTwoXOfObservedMeanError) {
  const metric::Workload workload =
      data::MakeFlightsAggregateWorkload(*bundle_, /*count=*/12, /*seed=*/21);
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle_->db.get());
  double sum_estimate = 0.0;
  double sum_observed = 0.0;
  size_t answered = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const sql::SelectStatement& stmt = workload.query(i).stmt;
    ASSERT_OK_AND_ASSIGN(sql::BoundQuery bound,
                         sql::Bind(stmt, *bundle_->db));
    ASSERT_TRUE(fallback_->CanAnswer(bound)) << stmt.ToSql();
    ASSERT_OK_AND_ASSIGN(aqp::LearnedAnswer answer, fallback_->Answer(bound));
    ASSERT_OK_AND_ASSIGN(exec::ResultSet truth, engine.Execute(bound, view));
    const size_t group_cols = stmt.group_by.size();
    ASSERT_OK_AND_ASSIGN(
        double observed,
        metric::RelativeError(truth, answer.result, group_cols));
    sum_estimate += answer.error_estimate;
    sum_observed += observed;
    ++answered;
  }
  ASSERT_EQ(answered, workload.size());
  const double mean_estimate = sum_estimate / double(answered);
  const double mean_observed = sum_observed / double(answered);
  // Two-sided 2x band, with a small absolute floor so a near-zero
  // observed error on this easy scale does not demand an impossibly
  // tight estimate.
  EXPECT_LE(mean_estimate, 2.0 * mean_observed + 0.05)
      << "estimates too pessimistic: est=" << mean_estimate
      << " obs=" << mean_observed;
  EXPECT_LE(mean_observed, 2.0 * mean_estimate + 0.05)
      << "estimates too optimistic: est=" << mean_estimate
      << " obs=" << mean_observed;
}

TEST_F(LearnedFallbackTest, RejectsQueriesOutsideItsClass) {
  // Non-aggregate SPJ.
  ASSERT_OK_AND_ASSIGN(sql::BoundQuery spj,
                       Bind("SELECT carrier FROM flights WHERE month = 1"));
  EXPECT_FALSE(fallback_->CanAnswer(spj));
  // Joins.
  ASSERT_OK_AND_ASSIGN(
      sql::BoundQuery join,
      Bind("SELECT COUNT(*) FROM flights f, carriers c "
           "WHERE f.carrier = c.code"));
  EXPECT_FALSE(fallback_->CanAnswer(join));
  // Numeric GROUP BY columns (the synopsis groups by category only).
  ASSERT_OK_AND_ASSIGN(
      sql::BoundQuery numeric_group,
      Bind("SELECT month, COUNT(*) FROM flights GROUP BY month"));
  EXPECT_FALSE(fallback_->CanAnswer(numeric_group));
  // LIMIT changes the result in ways a synopsis cannot model.
  ASSERT_OK_AND_ASSIGN(sql::BoundQuery limited,
                       Bind("SELECT COUNT(*) FROM flights LIMIT 1"));
  EXPECT_FALSE(fallback_->CanAnswer(limited));
}

TEST_F(LearnedFallbackTest, SaveLoadRoundTripPreservesAnswers) {
  std::stringstream buffer;
  ASSERT_OK(fallback_->SaveTo(buffer));
  ASSERT_OK_AND_ASSIGN(aqp::LearnedFallback loaded,
                       aqp::LearnedFallback::LoadFrom(buffer));
  EXPECT_EQ(loaded.num_tables(), fallback_->num_tables());
  EXPECT_EQ(loaded.calibrated_errors(), fallback_->calibrated_errors());

  ASSERT_OK_AND_ASSIGN(
      sql::BoundQuery bound,
      Bind("SELECT carrier, SUM(distance) FROM flights "
           "WHERE month = 6 GROUP BY carrier"));
  ASSERT_TRUE(loaded.CanAnswer(bound));
  ASSERT_OK_AND_ASSIGN(aqp::LearnedAnswer original, fallback_->Answer(bound));
  ASSERT_OK_AND_ASSIGN(aqp::LearnedAnswer restored, loaded.Answer(bound));
  EXPECT_EQ(restored.error_estimate, original.error_estimate);
  ASSERT_EQ(restored.result.num_rows(), original.result.num_rows());
  for (size_t i = 0; i < original.result.num_rows(); ++i) {
    EXPECT_EQ(restored.result.RowKey(i), original.result.RowKey(i));
  }
}

TEST_F(LearnedFallbackTest, IoPersistenceIsCrashSafeUnderInjectedFault) {
  TempPath path("learned_fallback.txt");
  ASSERT_OK(io::SaveLearnedFallback(*fallback_, path.str()));
  ASSERT_OK_AND_ASSIGN(aqp::LearnedFallback loaded,
                       io::LoadLearnedFallback(path.str()));
  EXPECT_EQ(loaded.calibrated_errors(), fallback_->calibrated_errors());

  // A failed re-save must not corrupt the existing file.
  util::FaultInjector::Global().Arm("io.fallback.write", /*count=*/1);
  util::Status failed = io::SaveLearnedFallback(*fallback_, path.str());
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("injected fault(io.fallback.write)"),
            std::string::npos);
  EXPECT_EQ(core::FallbackReasonFromStatus(failed),
            "fault:io.fallback.write");
  ASSERT_OK_AND_ASSIGN(aqp::LearnedFallback survivor,
                       io::LoadLearnedFallback(path.str()));
  EXPECT_EQ(survivor.num_tables(), fallback_->num_tables());
}

// ---- The ladder end-to-end on a trained model -------------------------

class DegradationLadderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.1;
    opts.workload_size = 8;
    opts.seed = 17;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeFlights(opts));  // NOLINT(asqp-naked-new)

    core::AsqpConfig config;
    config.k = 200;
    config.frame_size = 20;
    config.num_representatives = 8;
    config.pool_target = 300;
    config.trainer.iterations = 4;
    config.trainer.episodes_per_iteration = 4;
    config.trainer.num_workers = 1;
    config.trainer.learning_rate = 2e-3;
    config.trainer.hidden_dim = 32;
    config.seed = 11;
    // Route everything through the approximation tier so every test
    // exercises the ladder, and make the breaker trip on the first late
    // full-database answer (threshold is baked at construction).
    config.answerable_threshold = 0.0;
    config.fallback_breaker_threshold = 1;
    core::AsqpTrainer trainer(config);
    auto report = trainer.Train(*bundle_->db, bundle_->workload);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    model_ = std::move(report.value().model);
    ASSERT_NE(model_->learned_fallback(), nullptr);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }
  void SetUp() override {
    // Tests share one model: normalize the breaker and the degradation
    // knobs they mutate.
    model_->circuit_breaker().RecordSuccess();
    model_->mutable_config().fallback_retry_attempts = 2;
    model_->mutable_config().fallback_full_db_rows_per_second = 0.0;
  }
  void TearDown() override { util::FaultInjector::Global().Reset(); }

  static sql::SelectStatement Parse(const std::string& sql) {
    auto stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return std::move(stmt).value();
  }

  static data::DatasetBundle* bundle_;
  static std::unique_ptr<core::AsqpModel> model_;
};

data::DatasetBundle* DegradationLadderTest::bundle_ = nullptr;
std::unique_ptr<core::AsqpModel> DegradationLadderTest::model_ = nullptr;

/// In the learned class: single-table aggregate over flights.
const char kAggregateSql[] = "SELECT COUNT(*) FROM flights WHERE month = 2";
/// Outside it: a join, so the ladder below tier 2 has nowhere to go.
const char kJoinSql[] =
    "SELECT c.name, f.distance FROM flights f, carriers c "
    "WHERE f.carrier = c.code AND f.month = 4";

TEST_F(DegradationLadderTest, HealthyQueryServesFromApproximationTier) {
  ASSERT_OK_AND_ASSIGN(core::AnswerResult result,
                       model_->Answer(Parse(kAggregateSql)));
  EXPECT_EQ(result.tier, core::AnswerTier::kApproximation);
  EXPECT_TRUE(result.used_approximation);
  EXPECT_FALSE(result.fell_back);
  EXPECT_TRUE(result.fallback_reason.empty());
  EXPECT_EQ(result.error_estimate, 0.0);
}

TEST_F(DegradationLadderTest, RetryRecoversFromTransientFault) {
  const core::AsqpModel::AnswerStats before = model_->answer_stats();
  // The first join-build allocation fails; the retry succeeds.
  util::FaultInjector::Global().Arm("exec.join.alloc", /*count=*/1);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult result,
                       model_->Answer(Parse(kJoinSql)));
  EXPECT_EQ(result.tier, core::AnswerTier::kApproximation);
  EXPECT_FALSE(result.fell_back);
  const core::AsqpModel::AnswerStats after = model_->answer_stats();
  EXPECT_GE(after.retries, before.retries + 1);
  EXPECT_EQ(after.approx_served, before.approx_served + 1);
}

TEST_F(DegradationLadderTest, ExhaustedRetriesDegradeToFullDatabase) {
  // No retries: the single transient failure degrades straight down the
  // ladder, and the full database (fault already spent) answers.
  model_->mutable_config().fallback_retry_attempts = 0;
  util::FaultInjector::Global().Arm("exec.join.alloc", /*count=*/1);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult result,
                       model_->Answer(Parse(kJoinSql)));
  EXPECT_EQ(result.tier, core::AnswerTier::kFullDatabase);
  EXPECT_FALSE(result.used_approximation);
  EXPECT_TRUE(result.fell_back);
  EXPECT_EQ(result.fallback_reason, "fault:exec.join.alloc");
  EXPECT_EQ(result.error_estimate, 0.0);
  // An on-time degraded answer is a breaker success, not a failure.
  EXPECT_EQ(model_->circuit_breaker().state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(DegradationLadderTest, EveryTierExhaustedReturnsTypedDegraded) {
  // The fault fires on every join build: the approximation tier burns its
  // retries, the full database fails the same way, and a join is outside
  // the learned tier's class — the ladder ends in kDegraded, never a raw
  // allocation error.
  util::FaultInjector::Global().Arm("exec.join.alloc", /*count=*/-1);
  util::Result<core::AnswerResult> result = model_->Answer(Parse(kJoinSql));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDegraded);
  EXPECT_NE(result.status().message().find("fault:exec.join.alloc"),
            std::string::npos);
}

TEST_F(DegradationLadderTest, LateFullDatabaseTripsBreakerThenLearnedServes) {
  // An already-expired deadline: the approximation attempt dies on
  // arrival, the full database answers but *late*, and with threshold 1
  // that single late answer trips the breaker.
  const util::Deadline expired = util::Deadline::AfterSeconds(0.0);
  util::ExecContext context;
  context.set_deadline(expired);
  const uint64_t trips_before = model_->circuit_breaker().trips();

  ASSERT_OK_AND_ASSIGN(core::AnswerResult first,
                       model_->Answer(Parse(kAggregateSql), context));
  EXPECT_EQ(first.tier, core::AnswerTier::kFullDatabase);
  EXPECT_TRUE(first.fell_back);
  EXPECT_EQ(first.fallback_reason, "deadline");
  EXPECT_EQ(model_->circuit_breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(model_->circuit_breaker().trips(), trips_before + 1);

  // Breaker open: the next degraded query skips the full database and is
  // served by the learned tier with a calibrated error estimate.
  const core::AsqpModel::AnswerStats before = model_->answer_stats();
  ASSERT_OK_AND_ASSIGN(core::AnswerResult second,
                       model_->Answer(Parse(kAggregateSql), context));
  EXPECT_EQ(second.tier, core::AnswerTier::kLearned);
  EXPECT_TRUE(second.fell_back);
  EXPECT_EQ(second.fallback_reason, "deadline");
  EXPECT_GT(second.error_estimate, 0.0);
  EXPECT_EQ(model_->answer_stats().learned_served, before.learned_served + 1);
}

TEST_F(DegradationLadderTest, CostGateRoutesStraightToLearnedTier) {
  // At 1 row/s the full scan can never fit in an expired budget, so the
  // ladder skips tier 2 without consulting (or tripping) the breaker.
  model_->mutable_config().fallback_full_db_rows_per_second = 1.0;
  util::ExecContext context;
  context.set_deadline(util::Deadline::AfterSeconds(0.0));
  const uint64_t trips_before = model_->circuit_breaker().trips();

  ASSERT_OK_AND_ASSIGN(core::AnswerResult result,
                       model_->Answer(Parse(kAggregateSql), context));
  EXPECT_EQ(result.tier, core::AnswerTier::kLearned);
  EXPECT_TRUE(result.fell_back);
  EXPECT_EQ(result.fallback_reason, "deadline");
  EXPECT_GT(result.error_estimate, 0.0);
  EXPECT_EQ(model_->circuit_breaker().trips(), trips_before);
  EXPECT_EQ(model_->circuit_breaker().state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(DegradationLadderTest, TryLearnedAnswerHonorsTheSupportedClass) {
  ASSERT_OK_AND_ASSIGN(core::AnswerResult shed,
                       model_->TryLearnedAnswer(Parse(kAggregateSql)));
  EXPECT_EQ(shed.tier, core::AnswerTier::kLearned);
  EXPECT_TRUE(shed.fell_back);
  EXPECT_GT(shed.error_estimate, 0.0);
  // The caller (the serving layer's shed path) stamps the reason.
  EXPECT_TRUE(shed.fallback_reason.empty());

  util::Result<core::AnswerResult> join =
      model_->TryLearnedAnswer(Parse(kJoinSql));
  ASSERT_FALSE(join.ok());
  EXPECT_EQ(join.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace asqp
